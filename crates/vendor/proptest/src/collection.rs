//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};

/// A range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi.max(self.lo + 1))
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size in `size`.
///
/// Duplicate draws are retried a bounded number of times; the set may
/// come out smaller than requested if the element domain is tiny.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < n && attempts < n * 20 + 50 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with a size in `size`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < n && attempts < n * 20 + 50 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::from_seed(6);
        let s = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn set_and_map_respect_size() {
        let mut rng = TestRng::from_seed(7);
        let s = btree_set(0u32..1000, 3..6);
        let m = btree_map(0u32..1000, crate::any::<bool>(), 3..6);
        for _ in 0..50 {
            assert!((3..6).contains(&s.generate(&mut rng).len()));
            assert!((3..6).contains(&m.generate(&mut rng).len()));
        }
    }
}
