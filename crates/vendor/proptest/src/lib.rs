//! Local stand-in for the `proptest` crate (offline build).
//!
//! Implements the generation-side subset of the proptest API used by
//! this workspace: the [`Strategy`] trait with `prop_map`,
//! `prop_filter` and `prop_recursive`; `any::<T>()`; range, tuple and
//! string-pattern strategies; `collection::{vec, btree_set,
//! btree_map}`; `option::of`; `sample::{subsequence, Index}`; and the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed, there is **no shrinking**, and string
//! strategies support only the character-class pattern subset
//! (`[a-z0-9 _-]{m,n}` style) that the workspace uses.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Namespace alias mirroring `proptest::prop` from the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Combines several strategies for the same value type, choosing one
/// uniformly at random per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `name(pat in strategy, ...)` becomes a
/// `#[test]` that runs the body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strategy:expr ),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}
