//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Combinator methods carry `where Self: Sized` so the trait stays
/// object-safe for [`BoxedStrategy`].
pub trait Strategy {
    /// The generated value type.
    type Value: 'static;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: 'static, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (retrying a bounded
    /// number of times).
    fn prop_filter<R, F>(self, whence: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: starting from `self` as the leaf
    /// case, applies `recurse` up to `depth` times, choosing leaf or
    /// recursive case uniformly at each level. The `_desired_size` and
    /// `_expected_branch` hints are accepted for API compatibility.
    fn prop_recursive<R2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        R2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R2,
    {
        let mut current: BoxedStrategy<Self::Value> = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        current
    }

    /// Erases the strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of one value type.
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            branches: self.branches.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Creates a union over `branches` (must be non-empty).
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.branches.len() as u64) as usize;
        self.branches[pick].generate(rng)
    }
}

/// Adapter for [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: 'static,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Adapter for [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64())
                    | (u128::from(rng.next_u64()) << 64)) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64())
                    | (u128::from(rng.next_u64()) << 64)) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10, -5i64..=5, Just("x"));
        for _ in 0..100 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((-5..=5).contains(&b));
            assert_eq!(c, "x");
        }
    }

    #[test]
    fn union_covers_all_branches() {
        let mut rng = TestRng::from_seed(2);
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_and_filter() {
        let mut rng = TestRng::from_seed(3);
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("even > 50", |v| *v > 50);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v > 50);
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let mut rng = TestRng::from_seed(4);
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        for _ in 0..100 {
            let _ = s.generate(&mut rng);
        }
    }
}
