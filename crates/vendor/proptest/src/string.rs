//! String-pattern strategies: the character-class subset of regex that
//! `&str` strategies in this workspace use, e.g. `"[a-zA-Z0-9 _.-]{0,40}"`.

use crate::test_runner::TestRng;

#[derive(Debug)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = it.next() else {
                        panic!("unterminated character class in pattern {pattern:?}")
                    };
                    match c {
                        ']' => break,
                        '-' => {
                            // Range if between two chars, literal at the edges.
                            match (prev, it.peek().copied()) {
                                (Some(lo), Some(hi)) if hi != ']' => {
                                    it.next();
                                    assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
                                    set.extend(
                                        ((lo as u32 + 1)..=(hi as u32)).filter_map(char::from_u32),
                                    );
                                    prev = None;
                                }
                                _ => {
                                    set.push('-');
                                    prev = Some('-');
                                }
                            }
                        }
                        '\\' => {
                            let esc = it.next().expect("dangling escape");
                            set.push(esc);
                            prev = Some(esc);
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                set
            }
            '\\' => vec![it.next().expect("dangling escape")],
            '.' => (0x20u32..=0x7E).filter_map(char::from_u32).collect(),
            other => vec![other],
        };
        // Optional quantifier.
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let mut spec = String::new();
                for c in it.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

/// Generates one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let n = rng.usize_in(atom.min, atom.max + 1);
        for _ in 0..n {
            out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let s = generate_pattern("[a-z0-9-]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn printable_ascii_range() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..100 {
            let s = generate_pattern("[ -~]{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::from_seed(13);
        let s = generate_pattern("ab[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
