//! End-to-end tests of the QoS extension (§6): budgets on interaction
//! delay, measured through the real runtime and schedulers.

use estelle::qos::QosSpec;
use estelle::sched::{run_sequential, SeqOptions};
use estelle::{
    impl_interaction, ip, Ctx, IpIndex, ModuleKind, ModuleLabels, Runtime, StateId, StateMachine,
    Transition,
};
use netsim::SimDuration;

#[derive(Debug)]
struct Ping(#[allow(dead_code)] u32);
impl_interaction!(Ping);

const S0: StateId = StateId(0);
const IO: IpIndex = IpIndex(0);

/// Emits `count` pings immediately at start.
#[derive(Debug)]
struct Producer {
    count: u32,
}

impl StateMachine for Producer {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.count {
            ctx.output(IO, Ping(i));
        }
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![]
    }
}

/// Consumes pings, but only after sitting in its state for the
/// configured delay — so queued messages age before consumption.
#[derive(Debug, Default)]
struct SlowConsumer {
    got: u32,
}

impl StateMachine for SlowConsumer {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on("consume", S0, IO, |m: &mut Self, ctx, _msg| {
                m.got += 1;
                // Re-arm the delay clause by re-entering the state.
                ctx.goto(S0);
            })
            .delay(SimDuration::from_millis(5)),
        ]
    }
}

fn build() -> (Runtime, estelle::ModuleId, estelle::ModuleId) {
    let (rt, _clock) = Runtime::sim();
    let p = rt
        .add_module(
            None,
            "producer",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Producer { count: 3 },
        )
        .unwrap();
    let c = rt
        .add_module(
            None,
            "consumer",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            SlowConsumer::default(),
        )
        .unwrap();
    rt.connect(ip(p, IO), ip(c, IO)).unwrap();
    (rt, p, c)
}

#[test]
fn delayed_consumption_violates_tight_budget() {
    let (rt, _p, c) = build();
    let monitor = rt.attach_qos(QosSpec::new().max_delay(c, IO, SimDuration::from_millis(1)));
    rt.start().unwrap();
    run_sequential(&rt, &SeqOptions::default());
    let got = rt.with_machine::<SlowConsumer, _>(c, |m| m.got).unwrap();
    assert_eq!(got, 3, "all pings consumed");
    let report = monitor.report();
    assert!(!report.all_within_budget());
    // Every ping waited at least the 5ms delay clause; all three
    // violate the 1ms budget.
    assert_eq!(report.violations.len(), 3);
    assert!(report.worst_delay() >= SimDuration::from_millis(5));
    let entry = &report.entries[0];
    assert_eq!(entry.module, c);
    assert_eq!(entry.consumed, 3);
    assert_eq!(entry.violations, 3);
    assert_eq!(entry.budget, Some(SimDuration::from_millis(1)));
    // Violations carry the interaction type name.
    assert!(report.violations.iter().all(|v| v.interaction == "Ping"));
}

#[test]
fn generous_budget_passes() {
    let (rt, _p, c) = build();
    let monitor = rt.attach_qos(QosSpec::new().max_delay(c, IO, SimDuration::from_secs(60)));
    rt.start().unwrap();
    run_sequential(&rt, &SeqOptions::default());
    let report = monitor.report();
    assert!(
        report.all_within_budget(),
        "violations: {:?}",
        report.violations
    );
    assert_eq!(report.entries[0].consumed, 3);
    assert!(report.entries[0].mean_delay >= SimDuration::from_millis(5));
}

#[test]
fn detach_stops_observation() {
    let (rt, _p, c) = build();
    let monitor = rt.attach_qos(QosSpec::new());
    assert!(rt.qos_monitor().is_some());
    let detached = rt.detach_qos().expect("was attached");
    assert!(rt.qos_monitor().is_none());
    rt.start().unwrap();
    run_sequential(&rt, &SeqOptions::default());
    assert_eq!(
        detached.report().entries.len(),
        0,
        "no observations after detach"
    );
    assert_eq!(monitor.report().entries.len(), 0);
    let got = rt.with_machine::<SlowConsumer, _>(c, |m| m.got).unwrap();
    assert_eq!(got, 3, "execution itself unaffected");
}

#[test]
fn unbudgeted_run_measures_only() {
    let (rt, _p, c) = build();
    let monitor = rt.attach_qos(QosSpec::new());
    rt.start().unwrap();
    run_sequential(&rt, &SeqOptions::default());
    let report = monitor.report();
    assert!(report.all_within_budget());
    assert_eq!(report.entries.len(), 1);
    assert_eq!(report.entries[0].budget, None);
    assert_eq!(report.entries[0].module, c);
}
