//! Tests of the ref [2] extension: dynamic creation of system modules
//! after start (base Estelle fixes the system population — paper
//! §4.1, footnote 1).

use estelle::sched::{run_sequential, SeqOptions};
use estelle::{
    impl_interaction, ip, Ctx, EstelleError, IpIndex, ModuleKind, ModuleLabels, Runtime, StateId,
    StateMachine, Transition,
};

#[derive(Debug)]
struct Hello(u32);
impl_interaction!(Hello);

const S0: StateId = StateId(0);
const IO: IpIndex = IpIndex(0);

/// Greets the server once, on its first scheduled transition (not in
/// `initialize`, so dynamically created clients can be wired up
/// before the greeting leaves).
#[derive(Debug)]
struct Client {
    id: u32,
    inited: bool,
    greeted: bool,
}

impl Client {
    fn new(id: u32) -> Self {
        Client {
            id,
            inited: false,
            greeted: false,
        }
    }
}

impl StateMachine for Client {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {
        self.inited = true;
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::spontaneous("greet", S0, |m: &mut Self, ctx, _| {
                m.greeted = true;
                ctx.output(IO, Hello(m.id));
            })
            .provided(|m, _| !m.greeted),
        ]
    }
}

/// Counts greetings from any number of clients.
#[derive(Debug, Default)]
struct Server {
    greetings: Vec<u32>,
}

impl StateMachine for Server {
    fn num_ips(&self) -> usize {
        4
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn transitions() -> Vec<Transition<Self>> {
        (0..4u16)
            .map(|i| {
                // One transition per interaction point; all call the
                // same handler via a small trampoline per ip.
                Transition::on(
                    match i {
                        0 => "greet0",
                        1 => "greet1",
                        2 => "greet2",
                        _ => "greet3",
                    },
                    S0,
                    IpIndex(i),
                    |m: &mut Server, _ctx, msg| {
                        let hello = estelle::downcast::<Hello>(msg.unwrap()).unwrap();
                        m.greetings.push(hello.0);
                    },
                )
            })
            .collect()
    }
}

#[test]
fn base_estelle_rejects_post_start_system_modules() {
    let (rt, _clock) = Runtime::sim();
    rt.add_module(
        None,
        "server",
        ModuleKind::SystemProcess,
        ModuleLabels::default(),
        Server::default(),
    )
    .unwrap();
    rt.start().unwrap();
    let err = rt
        .add_module(
            None,
            "late-client",
            ModuleKind::SystemProcess,
            ModuleLabels::conn(1),
            Client::new(1),
        )
        .unwrap_err();
    assert!(
        matches!(err, EstelleError::SystemPopulationFrozen(_)),
        "{err:?}"
    );
}

#[test]
fn extension_allows_dynamic_clients() {
    let (rt, _clock) = Runtime::sim();
    let server = rt
        .add_module(
            None,
            "server",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Server::default(),
        )
        .unwrap();
    let c0 = rt
        .add_module(
            None,
            "client-0",
            ModuleKind::SystemProcess,
            ModuleLabels::conn(0),
            Client::new(0),
        )
        .unwrap();
    rt.connect(ip(c0, IO), ip(server, IpIndex(0))).unwrap();
    rt.enable_dynamic_systems();
    assert!(rt.dynamic_systems_enabled());
    rt.start().unwrap();
    run_sequential(&rt, &SeqOptions::default());
    assert_eq!(
        rt.with_machine::<Server, _>(server, |s| s.greetings.clone())
            .unwrap(),
        vec![0]
    );

    // The number of clients is NOT fixed any more: create two more at
    // "runtime" and wire them up.
    for i in 1..3u32 {
        let c = rt
            .add_module(
                None,
                format!("client-{i}"),
                ModuleKind::SystemProcess,
                ModuleLabels::conn(i as u16),
                Client::new(i),
            )
            .expect("dynamic extension active");
        // Initialize ran immediately (and queued its greeting).
        assert!(rt.with_machine::<Client, _>(c, |m| m.inited).unwrap());
        rt.connect(ip(c, IO), ip(server, IpIndex(i as u16)))
            .unwrap();
    }
    run_sequential(&rt, &SeqOptions::default());
    let mut greetings = rt
        .with_machine::<Server, _>(server, |s| s.greetings.clone())
        .unwrap();
    greetings.sort_unstable();
    assert_eq!(greetings, vec![0, 1, 2]);
}

#[test]
fn structural_rules_still_enforced_dynamically() {
    let (rt, _clock) = Runtime::sim();
    rt.add_module(
        None,
        "server",
        ModuleKind::SystemProcess,
        ModuleLabels::default(),
        Server::default(),
    )
    .unwrap();
    rt.enable_dynamic_systems();
    rt.start().unwrap();
    // A bare process module at the root violates ISO 9074 regardless
    // of the extension (a process must live inside a system module).
    let err = rt
        .add_module(
            None,
            "loose-process",
            ModuleKind::Process,
            ModuleLabels::default(),
            Client::new(9),
        )
        .unwrap_err();
    assert!(matches!(err, EstelleError::StructuralRule(_)), "{err:?}");
}
