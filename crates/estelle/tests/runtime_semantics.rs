//! Integration tests for the Estelle runtime semantics: structural
//! rules, dynamic creation, precedence, exclusion, schedulers, traces.

use estelle::sched::{
    run_centralized, run_sequential, run_threads, FirePolicy, ParOptions, SeqOptions, StopReason,
};
use estelle::{
    downcast, impl_interaction, ip, Ctx, Dispatch, EstelleError, GroupingPolicy, IpIndex,
    ModuleKind, ModuleLabels, Runtime, StateId, StateMachine, Transition,
};
use netsim::{Clock, SimDuration};
use std::sync::Arc;

const S0: StateId = StateId(0);
const S1: StateId = StateId(1);
const IO: IpIndex = IpIndex(0);

#[derive(Debug)]
struct Token(u64);
impl_interaction!(Token);

/// A module that echoes tokens back, decrementing, until zero.
#[derive(Debug, Default)]
struct Echo {
    seen: u64,
    serve: Option<u64>,
}

impl StateMachine for Echo {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(n) = self.serve {
            ctx.output(IO, Token(n));
        }
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![Transition::on("echo", S0, IO, |m: &mut Self, ctx, msg| {
            let t = downcast::<Token>(msg.unwrap()).unwrap();
            m.seen += 1;
            if t.0 > 0 {
                ctx.output(IO, Token(t.0 - 1));
            }
        })]
    }
}

fn echo_pair(n: u64) -> (Runtime, estelle::ModuleId, estelle::ModuleId) {
    let (rt, _clock) = Runtime::sim();
    let a = rt
        .add_module(
            None,
            "a",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo {
                serve: Some(n),
                ..Default::default()
            },
        )
        .unwrap();
    let b = rt
        .add_module(
            None,
            "b",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap();
    rt.connect(ip(a, IO), ip(b, IO)).unwrap();
    rt.start().unwrap();
    (rt, a, b)
}

#[test]
fn echo_terminates_with_expected_counts() {
    let (rt, a, b) = echo_pair(9);
    let report = run_sequential(&rt, &SeqOptions::default());
    assert_eq!(report.stopped, StopReason::Quiescent);
    assert_eq!(report.firings, 10);
    assert_eq!(rt.with_machine::<Echo, _>(b, |m| m.seen).unwrap(), 5);
    assert_eq!(rt.with_machine::<Echo, _>(a, |m| m.seen).unwrap(), 5);
    assert_eq!(rt.counters().lost_outputs, 0);
}

#[test]
fn one_per_scan_policy_reaches_same_outcome() {
    let (rt, _a, b) = echo_pair(9);
    let opts = SeqOptions {
        fire_policy: FirePolicy::OnePerScan,
        ..Default::default()
    };
    let report = run_sequential(&rt, &opts);
    assert_eq!(report.firings, 10);
    assert_eq!(rt.with_machine::<Echo, _>(b, |m| m.seen).unwrap(), 5);
}

#[test]
fn hardcoded_dispatch_reaches_same_outcome() {
    let (rt, _a, b) = echo_pair(9);
    let opts = SeqOptions {
        dispatch: Dispatch::HardCoded,
        ..Default::default()
    };
    run_sequential(&rt, &opts);
    assert_eq!(rt.with_machine::<Echo, _>(b, |m| m.seen).unwrap(), 5);
}

#[test]
fn thread_scheduler_matches_sequential_outcome() {
    let (rt, a, b) = echo_pair(99);
    let rt = Arc::new(rt);
    let report = run_threads(
        &rt,
        &ParOptions {
            units: 2,
            grouping: GroupingPolicy::RoundRobin { units: 2 },
            ..Default::default()
        },
    );
    assert_eq!(report.firings, 100, "stopped: {:?}", report.stopped);
    let total = rt.with_machine::<Echo, _>(a, |m| m.seen).unwrap()
        + rt.with_machine::<Echo, _>(b, |m| m.seen).unwrap();
    assert_eq!(total, 100);
}

#[test]
fn centralized_scheduler_matches_sequential_outcome() {
    let (rt, a, b) = echo_pair(49);
    let rt = Arc::new(rt);
    let report = run_centralized(&rt, &ParOptions::default());
    assert_eq!(report.firings, 50);
    let total = rt.with_machine::<Echo, _>(a, |m| m.seen).unwrap()
        + rt.with_machine::<Echo, _>(b, |m| m.seen).unwrap();
    assert_eq!(total, 50);
}

// ---------------------------------------------------------------------
// Structural rules.
// ---------------------------------------------------------------------

#[test]
fn process_requires_system_ancestor() {
    let (rt, _c) = Runtime::sim();
    let err = rt
        .add_module(
            None,
            "p",
            ModuleKind::Process,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap_err();
    assert!(matches!(err, EstelleError::StructuralRule(_)));
}

#[test]
fn system_cannot_nest_in_attributed() {
    let (rt, _c) = Runtime::sim();
    let sys = rt
        .add_module(
            None,
            "s",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap();
    let err = rt
        .add_module(
            Some(sys),
            "s2",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap_err();
    assert!(matches!(err, EstelleError::StructuralRule(_)));
}

#[test]
fn inactive_root_may_contain_systems() {
    let (rt, _c) = Runtime::sim();
    let root = rt
        .add_module(
            None,
            "spec",
            ModuleKind::Inactive,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap();
    assert!(rt
        .add_module(
            Some(root),
            "srv",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo::default()
        )
        .is_ok());
    assert!(rt
        .add_module(
            Some(root),
            "cli",
            ModuleKind::SystemActivity,
            ModuleLabels::default(),
            Echo::default()
        )
        .is_ok());
}

#[test]
fn activity_parent_only_contains_activities() {
    let (rt, _c) = Runtime::sim();
    let sa = rt
        .add_module(
            None,
            "sa",
            ModuleKind::SystemActivity,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap();
    let err = rt
        .add_module(
            Some(sa),
            "p",
            ModuleKind::Process,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap_err();
    assert!(matches!(err, EstelleError::StructuralRule(_)));
    assert!(rt
        .add_module(
            Some(sa),
            "a",
            ModuleKind::Activity,
            ModuleLabels::default(),
            Echo::default()
        )
        .is_ok());
}

#[test]
fn population_frozen_after_start() {
    let (rt, _c) = Runtime::sim();
    rt.add_module(
        None,
        "s",
        ModuleKind::SystemProcess,
        ModuleLabels::default(),
        Echo::default(),
    )
    .unwrap();
    rt.start().unwrap();
    let err = rt
        .add_module(
            None,
            "late",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap_err();
    assert!(matches!(err, EstelleError::SystemPopulationFrozen(_)));
}

#[test]
fn double_connect_rejected() {
    let (rt, _c) = Runtime::sim();
    let a = rt
        .add_module(
            None,
            "a",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap();
    let b = rt
        .add_module(
            None,
            "b",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap();
    rt.connect(ip(a, IO), ip(b, IO)).unwrap();
    let err = rt.connect(ip(a, IO), ip(b, IO)).unwrap_err();
    assert!(matches!(err, EstelleError::AlreadyConnected(_)));
}

// ---------------------------------------------------------------------
// Dynamic creation: a server that spawns one handler child per request
// (the paper's "accept a CONNECT request and create a new child module
// to handle the new connection").
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ConnectReq(u16);
#[derive(Debug)]
struct Work(u64);
impl_interaction!(ConnectReq, Work);

#[derive(Debug, Default)]
struct Handler {
    done: u64,
}
impl StateMachine for Handler {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![Transition::on("work", S0, IO, |m: &mut Self, _ctx, msg| {
            let w = downcast::<Work>(msg.unwrap()).unwrap();
            m.done += w.0;
        })]
    }
}

#[derive(Debug, Default)]
struct Server {
    handlers: Vec<estelle::ModuleId>,
}
impl StateMachine for Server {
    fn num_ips(&self) -> usize {
        2 // 0: listen, 1: to current handler (demo wiring)
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![Transition::on(
            "accept",
            S0,
            IO,
            |m: &mut Self, ctx, msg| {
                let req = downcast::<ConnectReq>(msg.unwrap()).unwrap();
                let child = ctx.create_child(
                    format!("handler-{}", req.0),
                    ModuleKind::Process,
                    ModuleLabels::conn(req.0),
                    Handler::default(),
                );
                m.handlers.push(child);
                ctx.connect(ctx.self_ip(IpIndex(1)), ip(child, IO));
                ctx.output(IpIndex(1), Work(u64::from(req.0) + 1));
            },
        )]
    }
}

#[test]
fn server_spawns_handler_per_connection() {
    let (rt, _c) = Runtime::sim();
    let srv = rt
        .add_module(
            None,
            "server",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Server::default(),
        )
        .unwrap();
    rt.start().unwrap();
    rt.inject(ip(srv, IO), Box::new(ConnectReq(4))).unwrap();
    run_sequential(&rt, &SeqOptions::default());
    let handlers = rt
        .with_machine::<Server, _>(srv, |s| s.handlers.clone())
        .unwrap();
    assert_eq!(handlers.len(), 1);
    let meta = rt.module_meta(handlers[0]).unwrap();
    assert_eq!(meta.kind, ModuleKind::Process);
    assert_eq!(meta.labels.conn, Some(4));
    assert_eq!(meta.parent, Some(srv));
    assert_eq!(
        rt.with_machine::<Handler, _>(handlers[0], |h| h.done)
            .unwrap(),
        5
    );
    // The connect effect happened before the output effect, so nothing
    // was lost.
    assert_eq!(rt.counters().lost_outputs, 0);
}

// ---------------------------------------------------------------------
// Parent precedence: a child cannot run while the parent has work.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct BusyParent {
    budget: u32,
    child: Option<estelle::ModuleId>,
    fired: Vec<&'static str>,
}
impl StateMachine for BusyParent {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        let child = ctx.create_child(
            "spinner",
            ModuleKind::Process,
            ModuleLabels::default(),
            Spinner::default(),
        );
        self.child = Some(child);
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::spontaneous("parent-work", S0, |m: &mut Self, _ctx, _| {
                m.budget -= 1;
                m.fired.push("parent");
            })
            .provided(|m, _| m.budget > 0),
        ]
    }
}

#[derive(Debug, Default)]
struct Spinner {
    spins: u32,
}
impl StateMachine for Spinner {
    fn num_ips(&self) -> usize {
        0
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::spontaneous("spin", S0, |m: &mut Self, _ctx, _| {
                m.spins += 1;
            })
            .provided(|m, _| m.spins < 3),
        ]
    }
}

#[test]
fn parent_precedence_blocks_children() {
    let (rt, _c) = Runtime::sim();
    let p = rt
        .add_module(
            None,
            "parent",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            BusyParent {
                budget: 5,
                ..Default::default()
            },
        )
        .unwrap();
    rt.start().unwrap();
    let child = rt
        .with_machine::<BusyParent, _>(p, |m| m.child.unwrap())
        .unwrap();
    // While the parent has budget, the child may not fire.
    use estelle::FireOutcome;
    assert!(matches!(
        rt.try_fire(child, Dispatch::TableDriven),
        FireOutcome::Blocked
    ));
    run_sequential(&rt, &SeqOptions::default());
    assert_eq!(
        rt.with_machine::<BusyParent, _>(p, |m| m.budget).unwrap(),
        0
    );
    assert_eq!(
        rt.with_machine::<Spinner, _>(child, |m| m.spins).unwrap(),
        3
    );
    assert!(rt.counters().blocked > 0);
}

// ---------------------------------------------------------------------
// Delay clause + virtual time.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Periodic {
    ticks: u32,
}
impl StateMachine for Periodic {
    fn num_ips(&self) -> usize {
        0
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::spontaneous("tick", S0, |m: &mut Self, _ctx, _| {
                m.ticks += 1;
            })
            .delay(SimDuration::from_millis(10))
            .to(S1),
            Transition::spontaneous("rearm", S1, |_m: &mut Self, _ctx, _| {})
                .delay(SimDuration::from_millis(10))
                .to(S0),
        ]
    }
}

#[test]
fn delay_transitions_advance_virtual_time() {
    let (rt, clock) = Runtime::sim();
    let m = rt
        .add_module(
            None,
            "periodic",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Periodic::default(),
        )
        .unwrap();
    rt.start().unwrap();
    let opts = SeqOptions {
        max_firings: Some(10),
        ..Default::default()
    };
    let report = run_sequential(&rt, &opts);
    assert_eq!(report.stopped, StopReason::MaxFirings);
    assert_eq!(rt.with_machine::<Periodic, _>(m, |p| p.ticks).unwrap(), 5);
    // 10 firings x 10ms delay each.
    assert_eq!(clock.now().as_micros(), 100_000);
}

// ---------------------------------------------------------------------
// Trace recording.
// ---------------------------------------------------------------------

#[test]
fn trace_records_causal_dependencies() {
    let (rt, _clock) = Runtime::sim();
    let a = rt
        .add_module(
            None,
            "a",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo {
                serve: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
    let b = rt
        .add_module(
            None,
            "b",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Echo::default(),
        )
        .unwrap();
    rt.connect(ip(a, IO), ip(b, IO)).unwrap();
    rt.enable_trace();
    rt.start().unwrap();
    run_sequential(&rt, &SeqOptions::default());
    let trace = rt.take_trace();
    trace.validate().expect("consistent trace");
    // 2 inits + 4 echo firings.
    assert_eq!(trace.records.len(), 6);
    let echo_firings: Vec<_> = trace
        .records
        .iter()
        .filter(|r| r.transition == "echo")
        .collect();
    assert_eq!(echo_firings.len(), 4);
    // Every echo firing consumed a message, so it must depend on the
    // producing firing.
    for r in &echo_firings {
        assert!(!r.deps.is_empty(), "echo firing without deps: {r:?}");
    }
    // Alternating modules a/b.
    assert_eq!(echo_firings[0].module, b);
    assert_eq!(echo_firings[1].module, a);
    assert!(trace.meta(a).is_some());
}

// ---------------------------------------------------------------------
// Release semantics.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Reaper {
    child: Option<estelle::ModuleId>,
    released: bool,
}
impl StateMachine for Reaper {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        self.child = Some(ctx.create_child(
            "victim",
            ModuleKind::Process,
            ModuleLabels::default(),
            Handler::default(),
        ));
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![Transition::spontaneous("reap", S0, |m: &mut Self, ctx, _| {
            ctx.release_child(m.child.unwrap());
            m.released = true;
        })
        .provided(|m, _| !m.released)
        .to(S1)]
    }
}

#[test]
fn release_kills_subtree() {
    let (rt, _c) = Runtime::sim();
    let p = rt
        .add_module(
            None,
            "reaper",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Reaper::default(),
        )
        .unwrap();
    rt.start().unwrap();
    let child = rt
        .with_machine::<Reaper, _>(p, |m| m.child.unwrap())
        .unwrap();
    assert!(rt.module_meta(child).unwrap().alive);
    run_sequential(&rt, &SeqOptions::default());
    assert!(!rt.module_meta(child).unwrap().alive);
    assert!(!rt.alive_modules().contains(&child));
}
