//! Property tests: structural attribute rules and scheduler
//! equivalence.

use estelle::sched::{run_sequential, run_threads, ParOptions, SeqOptions};
use estelle::{
    downcast, impl_interaction, ip, Ctx, GroupingPolicy, IpIndex, ModuleKind, ModuleLabels,
    Runtime, StateId, StateMachine, Transition,
};
use proptest::prelude::*;
use std::sync::Arc;

fn kind_strategy() -> impl Strategy<Value = ModuleKind> {
    prop_oneof![
        Just(ModuleKind::SystemProcess),
        Just(ModuleKind::SystemActivity),
        Just(ModuleKind::Process),
        Just(ModuleKind::Activity),
        Just(ModuleKind::Inactive),
    ]
}

/// Reference predicate, written independently of the implementation,
/// straight from the rule list in the paper's §4.
fn reference_rule(parent: Option<ModuleKind>, child: ModuleKind) -> bool {
    use ModuleKind::*;
    match child {
        // A system module cannot be contained in another attributed
        // module; inactive containers (or top level) are fine.
        SystemProcess | SystemActivity => matches!(parent, None | Some(Inactive)),
        // Each process/activity module must be contained in a system
        // module, i.e. its parent must be attributed; activity-kind
        // parents may only contain activities.
        Process => matches!(parent, Some(SystemProcess | Process)),
        Activity => matches!(
            parent,
            Some(SystemProcess | Process | SystemActivity | Activity)
        ),
        // Inactive structuring modules only above system modules.
        Inactive => matches!(parent, None | Some(Inactive)),
    }
}

proptest! {
    #[test]
    fn validate_child_kind_matches_reference(
        parent in proptest::option::of(kind_strategy()),
        child in kind_strategy(),
    ) {
        let got = estelle::validate_child_kind(parent, child).is_ok();
        prop_assert_eq!(got, reference_rule(parent, child),
            "parent={:?} child={:?}", parent, child);
    }
}

// ---------------------------------------------------------------------
// Scheduler equivalence: for a token-ring specification, the protocol
// outcome (total hops per node) is identical under the sequential and
// the thread-parallel scheduler, for any ring size / token count.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Hop(u32);
impl_interaction!(Hop);

const IN: IpIndex = IpIndex(0);
const OUT: IpIndex = IpIndex(1);

#[derive(Debug, Default)]
struct RingNode {
    hops_seen: u32,
    inject: Option<u32>,
}

impl StateMachine for RingNode {
    fn num_ips(&self) -> usize {
        2
    }
    fn initial_state(&self) -> StateId {
        StateId(0)
    }
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(ttl) = self.inject {
            ctx.output(OUT, Hop(ttl));
        }
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![Transition::on(
            "forward",
            StateId(0),
            IN,
            |m: &mut Self, ctx, msg| {
                let h = downcast::<Hop>(msg.unwrap()).unwrap();
                m.hops_seen += 1;
                if h.0 > 0 {
                    ctx.output(OUT, Hop(h.0 - 1));
                }
            },
        )]
    }
}

fn build_ring(n: usize, ttl: u32) -> (Runtime, Vec<estelle::ModuleId>) {
    let (rt, _clock) = Runtime::sim();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            rt.add_module(
                None,
                format!("node{i}"),
                ModuleKind::SystemProcess,
                ModuleLabels::conn(i as u16),
                RingNode {
                    inject: (i == 0).then_some(ttl),
                    ..Default::default()
                },
            )
            .unwrap()
        })
        .collect();
    for i in 0..n {
        rt.connect(ip(ids[i], OUT), ip(ids[(i + 1) % n], IN))
            .unwrap();
    }
    rt.start().unwrap();
    (rt, ids)
}

fn hops(rt: &Runtime, ids: &[estelle::ModuleId]) -> Vec<u32> {
    ids.iter()
        .map(|&id| rt.with_machine::<RingNode, _>(id, |m| m.hops_seen).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn parallel_equals_sequential_on_token_ring(
        n in 2usize..6,
        ttl in 0u32..40,
        units in 1usize..4,
    ) {
        let (rt_seq, ids_seq) = build_ring(n, ttl);
        run_sequential(&rt_seq, &SeqOptions::default());
        let expected = hops(&rt_seq, &ids_seq);

        let (rt_par, ids_par) = build_ring(n, ttl);
        let rt_par = Arc::new(rt_par);
        run_threads(
            &rt_par,
            &ParOptions {
                units,
                grouping: GroupingPolicy::RoundRobin { units: units as u32 },
                ..Default::default()
            },
        );
        let got = hops(&rt_par, &ids_par);
        prop_assert_eq!(got, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn ring_conservation(n in 2usize..8, ttl in 0u32..100) {
        let (rt, ids) = build_ring(n, ttl);
        run_sequential(&rt, &SeqOptions::default());
        let total: u32 = hops(&rt, &ids).iter().sum();
        // Token travels exactly ttl+1 hops before dying.
        prop_assert_eq!(total, ttl + 1);
        prop_assert_eq!(rt.counters().lost_outputs, 0);
    }
}
