//! Specification export: renders a built [`Runtime`] back into
//! Estelle-flavoured source text.
//!
//! The paper goes *from a formal description to a working system*;
//! this module closes the loop by going from the working system back
//! to a readable formal description — the module tree with attributes,
//! interaction points, channels and transition clauses. Useful for
//! documentation, debugging, and verifying that a dynamically grown
//! configuration matches the intended architecture (Fig. 3).

use crate::ids::{ModuleId, ModuleKind};
use crate::machine::FromState;
use crate::runtime::Runtime;
use std::fmt::Write as _;

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_module(rt: &Runtime, id: ModuleId, level: usize, out: &mut String) {
    let Some(meta) = rt.module_meta(id) else {
        return;
    };
    if !meta.alive {
        return;
    }
    indent(out, level);
    let attr = match meta.kind {
        ModuleKind::Inactive => String::new(),
        k => format!(" {k}"),
    };
    let _ = writeln!(
        out,
        "module {}{attr}; (* {} *)",
        meta.name,
        rt.module_type(id).unwrap_or("?")
    );
    // Interaction points and their channels.
    let peers = rt.ip_peers(id);
    if !peers.is_empty() {
        indent(out, level + 1);
        let _ = writeln!(out, "ip");
        for (i, peer) in peers.iter().enumerate() {
            indent(out, level + 2);
            match peer {
                Some(p) => {
                    let peer_name = rt
                        .module_meta(p.module)
                        .map(|m| m.name)
                        .unwrap_or_else(|| p.module.to_string());
                    let _ = writeln!(out, "ip{i} : channel to {peer_name}.ip{};", p.ip.0);
                }
                None => {
                    let _ = writeln!(out, "ip{i} : (* unconnected *);");
                }
            }
        }
    }
    // Transition clauses.
    let trans = rt.transition_info(id);
    if !trans.is_empty() {
        indent(out, level + 1);
        let _ = writeln!(out, "trans");
        for t in &trans {
            indent(out, level + 2);
            let from = match t.from {
                FromState::Any => "any".to_string(),
                FromState::In(s) => format!("s{}", s.0),
            };
            let mut line = format!("from {from}");
            if let Some(to) = t.to {
                let _ = write!(line, " to s{}", to.0);
            }
            if let Some(ip) = t.when {
                let _ = write!(line, " when ip{}", ip.0);
            }
            if t.guarded {
                line.push_str(" provided <guard>");
            }
            if let Some(d) = t.delay {
                let _ = write!(line, " delay({d})");
            }
            if t.priority != u8::MAX / 2 {
                let _ = write!(line, " priority {}", t.priority);
            }
            let _ = writeln!(out, "{line} (* {} *);", t.name);
        }
    }
    // Children.
    for child in rt.children_of(id) {
        render_module(rt, child, level + 1, out);
    }
    indent(out, level);
    let _ = writeln!(out, "end; (* {} *)", meta.name);
}

/// Renders the whole specification (all top-level modules and their
/// subtrees) as Estelle-flavoured text.
pub fn export_spec(rt: &Runtime, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "specification {name};");
    let tops: Vec<ModuleId> = rt
        .alive_modules()
        .into_iter()
        .filter(|&m| rt.module_meta(m).is_some_and(|meta| meta.parent.is_none()))
        .collect();
    for id in tops {
        render_module(rt, id, 1, &mut out);
    }
    let _ = writeln!(out, "end. (* {name} *)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ip;
    use crate::ids::{IpIndex, ModuleLabels, StateId};
    use crate::machine::{StateMachine, Transition};
    use netsim::SimDuration;

    #[derive(Debug, Default)]
    struct Proto;
    impl StateMachine for Proto {
        fn num_ips(&self) -> usize {
            2
        }
        fn initial_state(&self) -> StateId {
            StateId(0)
        }
        fn transitions() -> Vec<Transition<Self>> {
            vec![
                Transition::on(
                    "connect",
                    StateId(0),
                    IpIndex(0),
                    |_m: &mut Self, _c, _i| {},
                )
                .to(StateId(1))
                .priority(1),
                Transition::spontaneous("timeout", StateId(1), |_m: &mut Self, _c, _i| {})
                    .delay(SimDuration::from_millis(5))
                    .to(StateId(0)),
                Transition::spontaneous("poll", StateId(1), |_m: &mut Self, _c, _i| {})
                    .provided(|_, _| false),
            ]
        }
    }

    #[test]
    fn exports_modules_channels_and_clauses() {
        let (rt, _c) = crate::runtime::Runtime::sim();
        let a = rt
            .add_module(
                None,
                "alpha",
                ModuleKind::SystemProcess,
                ModuleLabels::default(),
                Proto,
            )
            .unwrap();
        let b = rt
            .add_module(
                None,
                "beta",
                ModuleKind::SystemProcess,
                ModuleLabels::default(),
                Proto,
            )
            .unwrap();
        rt.connect(ip(a, IpIndex(0)), ip(b, IpIndex(0))).unwrap();
        rt.start().unwrap();
        let text = export_spec(&rt, "demo");
        assert!(text.starts_with("specification demo;"), "{text}");
        assert!(text.contains("module alpha systemprocess;"), "{text}");
        assert!(text.contains("ip0 : channel to beta.ip0;"), "{text}");
        assert!(text.contains("ip1 : (* unconnected *);"), "{text}");
        assert!(
            text.contains("from s0 to s1 when ip0 priority 1 (* connect *);"),
            "{text}"
        );
        assert!(text.contains("delay(5.000ms)"), "{text}");
        assert!(text.contains("provided <guard>"), "{text}");
        assert!(text.trim_end().ends_with("end. (* demo *)"), "{text}");
    }

    #[test]
    fn released_modules_disappear_from_export() {
        let (rt, _c) = crate::runtime::Runtime::sim();
        rt.add_module(
            None,
            "root",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Proto,
        )
        .unwrap();
        rt.start().unwrap();
        let text = export_spec(&rt, "x");
        assert!(text.contains("module root"));
    }
}
