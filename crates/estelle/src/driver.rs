//! Co-simulation driver: interleaves the Estelle scheduler with the
//! discrete-event network.
//!
//! Protocol stacks talk to each other through `netsim` pipes/datagrams.
//! The driver alternates: run the specification until quiescent, then
//! advance simulated time to the next event (a network delivery or a
//! module `delay` deadline), and repeat — a classic two-domain DES
//! co-simulation.

use crate::runtime::Runtime;
use crate::sched::{run_sequential, RunReport, SeqOptions, StopReason};
use netsim::{Network, SimTime};
use std::time::{Duration, Instant};

/// Report of a co-simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total transition firings.
    pub firings: u64,
    /// Simulated completion time.
    pub sim_time: SimTime,
    /// Wall time spent driving.
    pub wall: Duration,
    /// True if the run ended because nothing remained to do (rather
    /// than hitting `limit`).
    pub completed: bool,
}

/// Runs `rt` against `net` until both are idle or simulated time
/// exceeds `limit`.
///
/// The runtime must share the network's virtual clock (construct it
/// with `Runtime::with_virtual_clock(net.clock())`).
///
/// # Panics
///
/// Panics if the runtime has no virtual clock.
pub fn run_sim(rt: &Runtime, net: &Network, opts: &SeqOptions, limit: SimTime) -> SimReport {
    assert!(
        rt.virtual_clock().is_some(),
        "run_sim requires a virtual-clock runtime sharing the network clock"
    );
    let t0 = Instant::now();
    let mut firings = 0u64;
    let mut inner_opts = opts.clone();
    // Time advancement is the driver's job here: the scheduler must
    // return Quiescent instead of skipping over pending network events.
    inner_opts.advance_time = false;
    let completed = loop {
        let report: RunReport = run_sequential(rt, &inner_opts);
        firings += report.firings;
        if report.stopped == StopReason::MaxFirings {
            break false;
        }
        let next_net = net.next_event_at();
        let next_delay = rt.next_deadline();
        let next = match (next_net, next_delay) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match next {
            Some(t) if t <= limit => {
                if next_net.is_some_and(|a| a <= t) {
                    net.step();
                } else {
                    rt.advance_clock_to(t);
                }
            }
            Some(_) => break false, // next event beyond horizon
            None => break true,     // fully quiescent
        }
    };
    SimReport {
        firings,
        sim_time: rt.now(),
        wall: t0.elapsed(),
        completed,
    }
}
