//! Error type for the Estelle runtime.

use crate::ids::{IpRef, ModuleId, ModuleKind};
use std::fmt;

/// Errors raised while building or executing a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstelleError {
    /// A structural rule of Estelle (ISO 9074 §module attributes) was
    /// violated; the message names the rule.
    StructuralRule(String),
    /// The referenced module does not exist or has been released.
    UnknownModule(ModuleId),
    /// The interaction point index is out of range for the module.
    IpOutOfRange(IpRef),
    /// The interaction point is already connected to a channel.
    AlreadyConnected(IpRef),
    /// Attempted to create a system module after the runtime was
    /// started — the population of system modules is static (paper §4).
    SystemPopulationFrozen(ModuleKind),
    /// A dynamic operation was attempted by a module that is not the
    /// parent of the target (only parents may create/release children).
    NotParent {
        /// Module attempting the operation.
        actor: ModuleId,
        /// Target child module.
        target: ModuleId,
    },
    /// An interaction was output on an unconnected interaction point.
    UnconnectedOutput(IpRef),
}

impl fmt::Display for EstelleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstelleError::StructuralRule(msg) => write!(f, "structural rule violated: {msg}"),
            EstelleError::UnknownModule(m) => write!(f, "unknown module {m}"),
            EstelleError::IpOutOfRange(ip) => write!(f, "interaction point out of range: {ip}"),
            EstelleError::AlreadyConnected(ip) => {
                write!(f, "interaction point already connected: {ip}")
            }
            EstelleError::SystemPopulationFrozen(k) => {
                write!(
                    f,
                    "cannot create {k} module at runtime: system population is static"
                )
            }
            EstelleError::NotParent { actor, target } => {
                write!(f, "module {actor} is not the parent of {target}")
            }
            EstelleError::UnconnectedOutput(ip) => {
                write!(f, "output on unconnected interaction point {ip}")
            }
        }
    }
}

impl std::error::Error for EstelleError {}

/// Convenience result alias for runtime operations.
pub type Result<T> = std::result::Result<T, EstelleError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IpIndex;

    #[test]
    fn display_is_informative() {
        let e = EstelleError::StructuralRule("activity may contain only activities".into());
        assert!(e.to_string().contains("activity"));
        let e = EstelleError::AlreadyConnected(IpRef {
            module: ModuleId(1),
            ip: IpIndex(0),
        });
        assert!(e.to_string().contains("m1.ip0"));
        let e = EstelleError::SystemPopulationFrozen(ModuleKind::SystemProcess);
        assert!(e.to_string().contains("static"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EstelleError>();
    }
}
