//! Execution context handed to transition actions and `initialize`
//! blocks.
//!
//! Actions do not mutate the runtime directly; they record *effects*
//! (outputs, child creation, channel connection, release) which the
//! runtime applies atomically after the action returns. This keeps
//! actions free of aliasing with the module tree and makes the same
//! action code safe under the sequential and the parallel schedulers.

use crate::ids::{IpIndex, IpRef, ModuleId, ModuleKind, ModuleLabels, StateId};
use crate::interaction::Interaction;
use crate::machine::{Fsm, ModuleExec, StateMachine};
use netsim::SimTime;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A deferred runtime mutation recorded by an action.
#[derive(Debug)]
pub(crate) enum Effect {
    /// Send `msg` out of the firing module's interaction point.
    Output {
        from_ip: IpIndex,
        msg: Box<dyn Interaction>,
    },
    /// Create a child module of the firing module.
    Create(CreateEffect),
    /// Connect two interaction points with a channel.
    Connect { a: IpRef, b: IpRef },
    /// Release (terminate) a child module and its subtree.
    Release { child: ModuleId },
}

pub(crate) struct CreateEffect {
    pub reserved: ModuleId,
    pub name: String,
    pub kind: ModuleKind,
    pub labels: ModuleLabels,
    pub exec: Box<dyn ModuleExec>,
}

impl fmt::Debug for CreateEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CreateEffect")
            .field("reserved", &self.reserved)
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("labels", &self.labels)
            .finish_non_exhaustive()
    }
}

/// The context available to a transition action.
#[derive(Debug)]
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ModuleId,
    pub(crate) self_kind: ModuleKind,
    pub(crate) firing_seq: u64,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) next_state: Option<StateId>,
    pub(crate) id_alloc: &'a AtomicU32,
}

#[allow(dead_code)]
static TEST_ID_ALLOC: AtomicU32 = AtomicU32::new(1_000_000);

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        now: SimTime,
        self_id: ModuleId,
        self_kind: ModuleKind,
        firing_seq: u64,
        effects: &'a mut Vec<Effect>,
        id_alloc: &'a AtomicU32,
    ) -> Self {
        Ctx {
            now,
            self_id,
            self_kind,
            firing_seq,
            effects,
            next_state: None,
            id_alloc,
        }
    }

    /// A free-standing context for unit-testing machine actions; child
    /// ids are drawn from a process-wide test counter.
    #[allow(dead_code)]
    pub(crate) fn for_test(effects: &'a mut Vec<Effect>) -> Self {
        Ctx::new(
            SimTime::ZERO,
            ModuleId(0),
            ModuleKind::SystemProcess,
            0,
            effects,
            &TEST_ID_ALLOC,
        )
    }

    /// Current (virtual or real) time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the module whose transition is firing.
    pub fn self_id(&self) -> ModuleId {
        self.self_id
    }

    /// Outputs `msg` on the firing module's interaction point `ip`.
    ///
    /// The message is enqueued at the connected peer after the action
    /// returns; outputs on unconnected points are counted as lost by
    /// the runtime.
    pub fn output(&mut self, ip: IpIndex, msg: impl Interaction) {
        self.effects.push(Effect::Output {
            from_ip: ip,
            msg: Box::new(msg),
        });
    }

    /// Outputs an already-boxed interaction (for forwarding).
    pub fn output_boxed(&mut self, ip: IpIndex, msg: Box<dyn Interaction>) {
        self.effects.push(Effect::Output { from_ip: ip, msg });
    }

    /// Overrides the `to` clause of the firing transition: the module
    /// enters `state` when the action returns.
    pub fn goto(&mut self, state: StateId) {
        self.next_state = Some(state);
    }

    pub(crate) fn take_next_state(&mut self) -> Option<StateId> {
        self.next_state.take()
    }

    /// Creates a child module of the firing module (Estelle `init`).
    /// Returns the child's id immediately so the same action can
    /// [`Ctx::connect`] it; the child is inserted and initialized after
    /// the action returns.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a system kind (the population of system
    /// modules is static at runtime) or if the attribute rules are
    /// violated (an `activity`/`systemactivity` parent may only contain
    /// `activity` children). These are specification bugs, mirroring an
    /// Estelle compiler rejecting the source text.
    pub fn create_child<M: StateMachine>(
        &mut self,
        name: impl Into<String>,
        kind: ModuleKind,
        labels: ModuleLabels,
        machine: M,
    ) -> ModuleId {
        self.create_child_exec(name, kind, labels, Box::new(Fsm::new(machine)))
    }

    /// Type-erased variant of [`Ctx::create_child`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Ctx::create_child`].
    pub fn create_child_exec(
        &mut self,
        name: impl Into<String>,
        kind: ModuleKind,
        labels: ModuleLabels,
        exec: Box<dyn ModuleExec>,
    ) -> ModuleId {
        assert!(
            matches!(kind, ModuleKind::Process | ModuleKind::Activity),
            "dynamic creation is limited to process/activity modules, got {kind}"
        );
        assert!(
            self.self_kind.is_attributed(),
            "inactive modules cannot create children"
        );
        if self.self_kind.children_exclusive() {
            assert!(
                kind == ModuleKind::Activity,
                "an {} module may only contain activity children",
                self.self_kind
            );
        }
        let reserved = ModuleId(self.id_alloc.fetch_add(1, Ordering::SeqCst));
        self.effects.push(Effect::Create(CreateEffect {
            reserved,
            name: name.into(),
            kind,
            labels,
            exec,
        }));
        reserved
    }

    /// Connects two interaction points with a channel (Estelle
    /// `connect`). Both points must be unconnected when the effect is
    /// applied.
    pub fn connect(&mut self, a: IpRef, b: IpRef) {
        self.effects.push(Effect::Connect { a, b });
    }

    /// Convenience: an [`IpRef`] to one of the firing module's own
    /// interaction points.
    pub fn self_ip(&self, ip: IpIndex) -> IpRef {
        IpRef {
            module: self.self_id,
            ip,
        }
    }

    /// Releases a child module and its whole subtree (Estelle
    /// `release`). Only the parent may release a child; the runtime
    /// verifies this when applying the effect.
    pub fn release_child(&mut self, child: ModuleId) {
        self.effects.push(Effect::Release { child });
    }

    /// The global firing sequence number of this action, usable as a
    /// causally-ordered identifier.
    pub fn firing_seq(&self) -> u64 {
        self.firing_seq
    }
}

/// Builds an [`IpRef`] from a module and interaction point index.
pub fn ip(module: ModuleId, ip: IpIndex) -> IpRef {
    IpRef { module, ip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impl_interaction;
    use crate::machine::{StateMachine, Transition};

    #[derive(Debug)]
    struct Nop;
    impl_interaction!(Nop);

    #[derive(Debug, Default)]
    struct Leaf;
    impl StateMachine for Leaf {
        fn num_ips(&self) -> usize {
            0
        }
        fn initial_state(&self) -> StateId {
            StateId(0)
        }
        fn transitions() -> Vec<Transition<Self>> {
            Vec::new()
        }
    }

    #[test]
    fn effects_are_recorded_in_order() {
        let mut sink = Vec::new();
        let mut ctx = Ctx::for_test(&mut sink);
        ctx.output(IpIndex(0), Nop);
        let child = ctx.create_child("leaf", ModuleKind::Process, ModuleLabels::default(), Leaf);
        ctx.connect(ctx.self_ip(IpIndex(1)), ip(child, IpIndex(0)));
        ctx.release_child(child);
        assert_eq!(sink.len(), 4);
        assert!(matches!(sink[0], Effect::Output { .. }));
        assert!(matches!(sink[1], Effect::Create(_)));
        assert!(matches!(sink[2], Effect::Connect { .. }));
        assert!(matches!(sink[3], Effect::Release { .. }));
    }

    #[test]
    fn reserved_child_ids_are_unique() {
        let mut sink = Vec::new();
        let mut ctx = Ctx::for_test(&mut sink);
        let a = ctx.create_child("a", ModuleKind::Process, ModuleLabels::default(), Leaf);
        let b = ctx.create_child("b", ModuleKind::Process, ModuleLabels::default(), Leaf);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "system")]
    fn creating_system_child_panics() {
        let mut sink = Vec::new();
        let mut ctx = Ctx::for_test(&mut sink);
        let _ = ctx.create_child(
            "bad",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            Leaf,
        );
    }

    #[test]
    fn activity_parent_rejects_process_child() {
        let mut sink = Vec::new();
        let mut ctx = Ctx::for_test(&mut sink);
        ctx.self_kind = ModuleKind::Activity;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.create_child("bad", ModuleKind::Process, ModuleLabels::default(), Leaf)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn goto_overrides_to_clause() {
        let mut sink = Vec::new();
        let mut ctx = Ctx::for_test(&mut sink);
        ctx.goto(StateId(5));
        assert_eq!(ctx.take_next_state(), Some(StateId(5)));
        assert_eq!(ctx.take_next_state(), None);
    }
}
