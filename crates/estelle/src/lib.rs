//! `estelle` — an embedded Estelle (ISO 9074) semantic framework.
//!
//! The MCAM paper specifies its whole protocol system in Estelle —
//! hierarchically ordered communicating finite state machines — and
//! derives a parallel C++ implementation with a code generator. This
//! crate reproduces the *runtime* that generated code executes on:
//!
//! - modules with the four Estelle attributes (`systemprocess`,
//!   `systemactivity`, `process`, `activity`) plus inactive structuring
//!   modules, with the ISO structural rules enforced
//!   ([`validate_child_kind`]);
//! - transitions with `when`, `provided`, `priority`, `delay`, and
//!   `to` clauses ([`Transition`]);
//! - per-interaction-point FIFO queues and `connect`-ed channels;
//! - parent-over-child precedence and activity mutual exclusion;
//! - dynamic creation/release of child modules by their parent
//!   ([`Ctx::create_child`], [`Ctx::release_child`]);
//! - the two transition-dispatch mappings studied in §5.2
//!   ([`Dispatch::HardCoded`] vs [`Dispatch::TableDriven`]);
//! - sequential, decentralized-parallel, and centralized-parallel
//!   schedulers ([`sched`]) with scheduler-overhead instrumentation;
//! - module grouping policies ([`GroupingPolicy`]) including the
//!   paper's connection-per-processor and layer-per-processor mappings;
//! - execution tracing ([`ExecTrace`]) consumed by the `ksim`
//!   multiprocessor simulator.
//!
//! # Examples
//!
//! A two-module ping/pong specification:
//!
//! ```
//! use estelle::{
//!     impl_interaction, ip, Ctx, IpIndex, ModuleKind, ModuleLabels, Runtime,
//!     StateId, StateMachine, Transition,
//! };
//! use estelle::sched::{run_sequential, SeqOptions};
//!
//! #[derive(Debug)]
//! struct Ball(u32);
//! impl_interaction!(Ball);
//!
//! #[derive(Debug, Default)]
//! struct Player { hits: u32, serve: bool }
//!
//! const PLAY: StateId = StateId(0);
//! const IO: IpIndex = IpIndex(0);
//!
//! impl StateMachine for Player {
//!     fn num_ips(&self) -> usize { 1 }
//!     fn initial_state(&self) -> StateId { PLAY }
//!     fn on_init(&mut self, ctx: &mut Ctx<'_>) {
//!         if self.serve { ctx.output(IO, Ball(0)); }
//!     }
//!     fn transitions() -> Vec<Transition<Self>> {
//!         vec![Transition::on("return", PLAY, IO, |m, ctx, msg| {
//!             let ball = estelle::downcast::<Ball>(msg.unwrap()).unwrap();
//!             m.hits += 1;
//!             if ball.0 < 10 { ctx.output(IO, Ball(ball.0 + 1)); }
//!         })]
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (rt, _clock) = Runtime::sim();
//! let a = rt.add_module(None, "a", ModuleKind::SystemProcess,
//!                       ModuleLabels::default(), Player { serve: true, ..Default::default() })?;
//! let b = rt.add_module(None, "b", ModuleKind::SystemProcess,
//!                       ModuleLabels::default(), Player::default())?;
//! rt.connect(ip(a, IO), ip(b, IO))?;
//! rt.start()?;
//! let report = run_sequential(&rt, &SeqOptions::default());
//! assert_eq!(report.firings, 11);
//! let hits = rt.with_machine::<Player, _>(b, |p| p.hits).unwrap();
//! assert_eq!(hits, 6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod ctx;
mod error;
pub mod external;
mod grouping;
mod ids;
mod interaction;
mod machine;
mod runtime;
mod trace;

pub mod deploy;
pub mod driver;
pub mod export;
pub mod qos;
pub mod sched;

pub use ctx::{ip, Ctx};
pub use error::{EstelleError, Result};
pub use grouping::GroupingPolicy;
pub use ids::{IpIndex, IpRef, ModuleId, ModuleKind, ModuleLabels, StateId, UnitId};
pub use interaction::{downcast, Interaction};
pub use machine::{
    Dispatch, FiredInfo, FromState, Fsm, IpState, ModuleExec, Selected, StateMachine, Transition,
    TransitionInfo, DEFAULT_TRANSITION_COST,
};
pub use runtime::{validate_child_kind, Counters, FireOutcome, FiredMeta, ModuleMeta, Runtime};
pub use trace::{ExecTrace, FiringRecord, TraceModuleMeta};
