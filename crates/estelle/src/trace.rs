//! Execution traces.
//!
//! A trace records every transition firing with its virtual cost and
//! its causal dependencies (program order within a module, plus the
//! producing firing of every consumed message). The `ksim` crate
//! replays such traces on a simulated multiprocessor to predict
//! speedup under different module-to-processor mappings — the KSR1
//! substitute of this reproduction.

use crate::ids::{ModuleId, ModuleKind, ModuleLabels};
use netsim::SimDuration;

/// One recorded transition (or `initialize` block) firing.
#[derive(Debug, Clone)]
pub struct FiringRecord {
    /// Global firing sequence number (total order of the recorded run).
    pub seq: u64,
    /// The module that fired.
    pub module: ModuleId,
    /// The module's grouping labels at firing time.
    pub labels: ModuleLabels,
    /// Module type name.
    pub module_type: &'static str,
    /// Transition name (`"initialize"` for init blocks).
    pub transition: &'static str,
    /// Virtual execution cost.
    pub cost: SimDuration,
    /// Sequence numbers this firing causally depends on.
    pub deps: Vec<u64>,
}

/// Metadata for one module that participated in a traced run.
#[derive(Debug, Clone)]
pub struct TraceModuleMeta {
    /// Module id.
    pub id: ModuleId,
    /// Instance name.
    pub name: String,
    /// Estelle attribute.
    pub kind: ModuleKind,
    /// Grouping labels.
    pub labels: ModuleLabels,
    /// Parent module, if any.
    pub parent: Option<ModuleId>,
}

/// A complete recorded execution.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// Firings in global sequence order.
    pub records: Vec<FiringRecord>,
    /// All modules that existed during the run (including released
    /// ones).
    pub modules: Vec<TraceModuleMeta>,
}

impl ExecTrace {
    /// Total virtual work contained in the trace (the sequential
    /// makespan lower bound).
    pub fn total_cost(&self) -> SimDuration {
        self.records
            .iter()
            .fold(SimDuration::ZERO, |acc, r| acc + r.cost)
    }

    /// Number of distinct modules that fired at least once.
    pub fn active_modules(&self) -> usize {
        let mut ids: Vec<ModuleId> = self.records.iter().map(|r| r.module).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// Looks up the metadata of `id`.
    pub fn meta(&self, id: ModuleId) -> Option<&TraceModuleMeta> {
        self.modules.iter().find(|m| m.id == id)
    }

    /// Verifies internal consistency: seqs strictly increasing and all
    /// dependencies pointing backwards. Returns a description of the
    /// first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut last = None;
        for r in &self.records {
            if let Some(l) = last {
                if r.seq <= l {
                    return Err(format!("seq {} not increasing after {}", r.seq, l));
                }
            }
            for &d in &r.deps {
                if d >= r.seq {
                    return Err(format!("firing {} depends on future/self {}", r.seq, d));
                }
            }
            last = Some(r.seq);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, module: u32, cost_us: u64, deps: Vec<u64>) -> FiringRecord {
        FiringRecord {
            seq,
            module: ModuleId(module),
            labels: ModuleLabels::default(),
            module_type: "T",
            transition: "t",
            cost: SimDuration::from_micros(cost_us),
            deps,
        }
    }

    #[test]
    fn totals_and_counts() {
        let t = ExecTrace {
            records: vec![
                rec(1, 0, 10, vec![]),
                rec(2, 1, 20, vec![1]),
                rec(3, 0, 5, vec![1]),
            ],
            modules: vec![],
        };
        assert_eq!(t.total_cost().as_micros(), 35);
        assert_eq!(t.active_modules(), 2);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_catches_future_dep() {
        let t = ExecTrace {
            records: vec![rec(1, 0, 10, vec![2]), rec(2, 1, 20, vec![])],
            modules: vec![],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_nonmonotonic_seq() {
        let t = ExecTrace {
            records: vec![rec(2, 0, 10, vec![]), rec(1, 1, 20, vec![])],
            modules: vec![],
        };
        assert!(t.validate().is_err());
    }
}
