//! Identifier newtypes for the Estelle runtime.

use std::fmt;

/// Identifies a module instance within a [`crate::Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub(crate) u32);

impl ModuleId {
    /// Constructs a module id from a raw index. Intended for trace
    /// consumers (e.g. the `ksim` replay simulator) building synthetic
    /// traces; ids handed to a live [`crate::Runtime`] must come from
    /// that runtime.
    pub fn from_raw(raw: u32) -> Self {
        ModuleId(raw)
    }

    /// The raw index of this module id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A state of a finite state machine. Modules define their states as
/// constants: `const IDLE: StateId = StateId(0);`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StateId(pub u16);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Index of an interaction point local to a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IpIndex(pub u16);

impl fmt::Display for IpIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ip{}", self.0)
    }
}

/// A global reference to one interaction point of one module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpRef {
    /// The owning module.
    pub module: ModuleId,
    /// The interaction point within that module.
    pub ip: IpIndex,
}

impl fmt::Display for IpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.module, self.ip)
    }
}

/// Identifies an execution unit (a group of modules run by one worker,
/// paper §5.2 "grouping scheme").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UnitId(pub u32);

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The Estelle module attribute controlling hierarchy and parallelism
/// (ISO 9074; paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// Top-level parallel module; static population, runs asynchronously
    /// and in parallel with other system modules.
    SystemProcess,
    /// Top-level module whose active descendants are mutually exclusive.
    SystemActivity,
    /// Nested module whose children of kind `process` may run in
    /// parallel with each other.
    Process,
    /// Nested module whose children are mutually exclusive.
    Activity,
    /// An unattributed structuring module (e.g. the specification root).
    /// Inactive: it has no transitions of its own and may contain system
    /// modules.
    Inactive,
}

impl ModuleKind {
    /// True for `systemprocess` and `systemactivity`.
    pub fn is_system(self) -> bool {
        matches!(self, ModuleKind::SystemProcess | ModuleKind::SystemActivity)
    }

    /// True for any of the four Estelle attributes (i.e. the module is
    /// active and participates in scheduling).
    pub fn is_attributed(self) -> bool {
        !matches!(self, ModuleKind::Inactive)
    }

    /// True if children of a module of this kind are mutually exclusive
    /// (`activity` semantics).
    pub fn children_exclusive(self) -> bool {
        matches!(self, ModuleKind::SystemActivity | ModuleKind::Activity)
    }
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModuleKind::SystemProcess => "systemprocess",
            ModuleKind::SystemActivity => "systemactivity",
            ModuleKind::Process => "process",
            ModuleKind::Activity => "activity",
            ModuleKind::Inactive => "inactive",
        };
        f.write_str(s)
    }
}

/// Optional classification labels used by grouping policies
/// (connection-per-processor vs layer-per-processor, paper §3/§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ModuleLabels {
    /// Protocol-layer index (e.g. 0 = application, 1 = presentation,
    /// 2 = session).
    pub layer: Option<u16>,
    /// Connection index this module serves.
    pub conn: Option<u16>,
}

impl ModuleLabels {
    /// Labels with only the layer set.
    pub fn layer(layer: u16) -> Self {
        ModuleLabels {
            layer: Some(layer),
            conn: None,
        }
    }

    /// Labels with only the connection set.
    pub fn conn(conn: u16) -> Self {
        ModuleLabels {
            layer: None,
            conn: Some(conn),
        }
    }

    /// Labels with both layer and connection set.
    pub fn layer_conn(layer: u16, conn: u16) -> Self {
        ModuleLabels {
            layer: Some(layer),
            conn: Some(conn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(ModuleKind::SystemProcess.is_system());
        assert!(ModuleKind::SystemActivity.is_system());
        assert!(!ModuleKind::Process.is_system());
        assert!(ModuleKind::Process.is_attributed());
        assert!(!ModuleKind::Inactive.is_attributed());
        assert!(ModuleKind::Activity.children_exclusive());
        assert!(ModuleKind::SystemActivity.children_exclusive());
        assert!(!ModuleKind::Process.children_exclusive());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ModuleId(3).to_string(), "m3");
        assert_eq!(StateId(1).to_string(), "s1");
        assert_eq!(IpIndex(2).to_string(), "ip2");
        assert_eq!(
            IpRef {
                module: ModuleId(3),
                ip: IpIndex(2)
            }
            .to_string(),
            "m3.ip2"
        );
        assert_eq!(ModuleKind::SystemActivity.to_string(), "systemactivity");
    }

    #[test]
    fn labels_builders() {
        assert_eq!(ModuleLabels::layer(1).layer, Some(1));
        assert_eq!(ModuleLabels::conn(2).conn, Some(2));
        let lc = ModuleLabels::layer_conn(1, 2);
        assert_eq!((lc.layer, lc.conn), (Some(1), Some(2)));
    }
}
