//! Interactions — the typed messages exchanged over Estelle channels.

use std::any::Any;
use std::fmt;

/// A message that can travel over an Estelle channel.
///
/// Implement via [`crate::impl_interaction!`] for any `Send + Debug +
/// 'static` type:
///
/// ```
/// use estelle::impl_interaction;
///
/// #[derive(Debug)]
/// struct ConnectReq { addr: u32 }
/// impl_interaction!(ConnectReq);
///
/// let boxed: Box<dyn estelle::Interaction> = Box::new(ConnectReq { addr: 7 });
/// assert!(boxed.is::<ConnectReq>());
/// let back = estelle::downcast::<ConnectReq>(boxed).unwrap();
/// assert_eq!(back.addr, 7);
/// ```
pub trait Interaction: Send + fmt::Debug + 'static {
    /// A stable name for tracing (usually the type name).
    fn interaction_name(&self) -> &'static str;
    /// Upcast for inspection.
    fn as_any(&self) -> &dyn Any;
    /// Upcast for consumption.
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;
}

impl dyn Interaction {
    /// Returns true if the boxed interaction is of concrete type `T`.
    pub fn is<T: Interaction>(&self) -> bool {
        self.as_any().is::<T>()
    }

    /// Borrows the interaction as `T` if it has that type.
    pub fn downcast_ref<T: Interaction>(&self) -> Option<&T> {
        self.as_any().downcast_ref::<T>()
    }
}

/// Consumes a boxed interaction, returning the concrete value if it has
/// type `T`, or the original box otherwise.
pub fn downcast<T: Interaction>(
    msg: Box<dyn Interaction>,
) -> std::result::Result<T, Box<dyn Interaction>> {
    if msg.is::<T>() {
        Ok(*msg.into_any().downcast::<T>().expect("type checked above"))
    } else {
        Err(msg)
    }
}

/// Implements [`Interaction`] for one or more concrete types.
#[macro_export]
macro_rules! impl_interaction {
    ($($t:ty),+ $(,)?) => {
        $(
            impl $crate::Interaction for $t {
                fn interaction_name(&self) -> &'static str {
                    // Strip the module path for readable traces.
                    let full = ::std::any::type_name::<$t>();
                    match full.rsplit("::").next() {
                        Some(short) => short,
                        None => full,
                    }
                }
                fn as_any(&self) -> &dyn ::std::any::Any {
                    self
                }
                fn into_any(self: ::std::boxed::Box<Self>) -> ::std::boxed::Box<dyn ::std::any::Any + Send> {
                    self
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);
    #[derive(Debug, PartialEq)]
    struct Pong;
    impl_interaction!(Ping, Pong);

    #[test]
    fn downcast_roundtrip() {
        let b: Box<dyn Interaction> = Box::new(Ping(9));
        assert!(b.is::<Ping>());
        assert!(!b.is::<Pong>());
        assert_eq!(b.downcast_ref::<Ping>(), Some(&Ping(9)));
        let got = downcast::<Ping>(b).unwrap();
        assert_eq!(got, Ping(9));
    }

    #[test]
    fn failed_downcast_returns_original() {
        let b: Box<dyn Interaction> = Box::new(Pong);
        let back = downcast::<Ping>(b).unwrap_err();
        assert!(back.is::<Pong>());
    }

    #[test]
    fn names_are_short() {
        assert_eq!(Ping(1).interaction_name(), "Ping");
        assert_eq!(Pong.interaction_name(), "Pong");
    }

    #[test]
    fn macro_works_in_function_scope() {
        #[derive(Debug)]
        struct Local;
        impl_interaction!(Local);
        assert_eq!(Local.interaction_name(), "Local");
    }
}
