//! Deployment planning — the paper's §4.4 compilation/start model.
//!
//! §4.1/§4.4: *"In comments, we declare the location (i.e. a machine
//! name) where the module will be placed in the implementation. …
//! For each `systemprocess` module and for the specification root
//! module, we create an executable file. It is necessary to build
//! these files on each target machine … The specification module is
//! started by hand on the server machine. It will then start the
//! server itself and the specified number of clients on the different
//! client machines. The information on where to start a client is
//! taken from the comments in the Estelle source."*
//!
//! A [`DeploymentPlan`] carries those "location comments": each
//! *system* module is placed on a machine; child modules implicitly
//! follow their enclosing system module. [`DeploymentPlan::resolve`]
//! validates the plan against a built [`Runtime`] and produces a
//! [`Deployment`] with, per machine, the executables to build (one per
//! system-module *type*, plus the specification executable on the
//! launch machine) and the modules to start.

use crate::ids::{ModuleId, ModuleKind};
use crate::runtime::Runtime;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Errors detected when resolving a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// A placed module does not exist (or is no longer alive).
    UnknownModule(ModuleId),
    /// Only system modules (and inactive structuring modules) may
    /// carry a location comment; children follow their system module.
    NotASystemModule(ModuleId),
    /// A system module has no location comment.
    Unplaced(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::UnknownModule(id) => write!(f, "unknown module {id}"),
            DeployError::NotASystemModule(id) => {
                write!(
                    f,
                    "module {id} is not a system module; place its system ancestor"
                )
            }
            DeployError::Unplaced(name) => {
                write!(f, "system module {name:?} has no location comment")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// The per-module "location comments" of §4.1.
#[derive(Debug, Clone, Default)]
pub struct DeploymentPlan {
    locations: HashMap<ModuleId, String>,
    launch_machine: Option<String>,
}

impl DeploymentPlan {
    /// An empty plan.
    pub fn new() -> Self {
        DeploymentPlan::default()
    }

    /// Places a system module on `machine` (the location comment).
    pub fn place(mut self, module: ModuleId, machine: impl Into<String>) -> Self {
        self.locations.insert(module, machine.into());
        self
    }

    /// Declares the machine where the specification executable is
    /// "started by hand" (the paper: the server machine). Defaults to
    /// the machine of the first placed module.
    pub fn launch_from(mut self, machine: impl Into<String>) -> Self {
        self.launch_machine = Some(machine.into());
        self
    }

    /// Validates the plan against `rt` and computes the per-machine
    /// build/start sets.
    ///
    /// # Errors
    ///
    /// Fails if a placement names an unknown or non-system module, or
    /// if any alive system module is left without a location.
    pub fn resolve(&self, rt: &Runtime) -> Result<Deployment, DeployError> {
        for &id in self.locations.keys() {
            let meta = rt.module_meta(id).ok_or(DeployError::UnknownModule(id))?;
            if !meta.alive {
                return Err(DeployError::UnknownModule(id));
            }
            if !matches!(
                meta.kind,
                ModuleKind::SystemProcess | ModuleKind::SystemActivity
            ) {
                return Err(DeployError::NotASystemModule(id));
            }
        }
        let mut machines: BTreeMap<String, MachineAssignment> = BTreeMap::new();
        for id in rt.alive_modules() {
            let Some(meta) = rt.module_meta(id) else {
                continue;
            };
            if !matches!(
                meta.kind,
                ModuleKind::SystemProcess | ModuleKind::SystemActivity
            ) {
                continue;
            }
            let machine = self
                .locations
                .get(&id)
                .ok_or_else(|| DeployError::Unplaced(meta.name.clone()))?;
            let entry = machines.entry(machine.clone()).or_default();
            entry.modules.push(id);
            if let Some(t) = rt.module_type(id) {
                entry.executables.insert(t.to_string());
            }
        }
        let launch = self
            .launch_machine
            .clone()
            .or_else(|| machines.keys().next().cloned())
            .unwrap_or_else(|| "localhost".to_string());
        // "For … the specification root module, we create an
        // executable file" — built on the launch machine.
        machines
            .entry(launch.clone())
            .or_default()
            .executables
            .insert("specification".to_string());
        Ok(Deployment { machines, launch })
    }
}

/// What one machine builds and starts.
#[derive(Debug, Clone, Default)]
pub struct MachineAssignment {
    /// System modules started on this machine, in id order.
    pub modules: Vec<ModuleId>,
    /// Executables to build on this machine (one per system-module
    /// type; the launch machine additionally builds `specification`).
    pub executables: BTreeSet<String>,
}

/// A validated deployment: per-machine assignments plus the launch
/// machine where the specification executable is started by hand.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Machine name → assignment, sorted by machine name.
    pub machines: BTreeMap<String, MachineAssignment>,
    /// Machine where the specification module is started by hand.
    pub launch: String,
}

impl Deployment {
    /// Machines participating, sorted.
    pub fn machine_names(&self) -> Vec<&str> {
        self.machines.keys().map(String::as_str).collect()
    }

    /// The modules started on `machine` (empty if unknown).
    pub fn modules_on(&self, machine: &str) -> &[ModuleId] {
        self.machines.get(machine).map_or(&[], |m| &m.modules)
    }

    /// Renders the §4.4 build-and-start report.
    pub fn render(&self, rt: &Runtime) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "deployment (specification started by hand on {}):\n",
            self.launch
        ));
        for (machine, a) in &self.machines {
            out.push_str(&format!("  machine {machine}:\n"));
            let builds: Vec<&str> = a.executables.iter().map(String::as_str).collect();
            out.push_str(&format!("    build: {}\n", builds.join(", ")));
            for &m in &a.modules {
                let name = rt
                    .module_meta(m)
                    .map(|meta| meta.name)
                    .unwrap_or_else(|| m.to_string());
                out.push_str(&format!("    start: {name}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;
    use crate::ids::{ModuleLabels, StateId};
    use crate::machine::{StateMachine, Transition};

    #[derive(Debug, Default)]
    struct Noop;
    impl StateMachine for Noop {
        fn num_ips(&self) -> usize {
            0
        }
        fn initial_state(&self) -> StateId {
            StateId(0)
        }
        fn transitions() -> Vec<Transition<Self>> {
            vec![]
        }
        fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}
    }

    #[derive(Debug, Default)]
    struct Server;
    impl StateMachine for Server {
        fn num_ips(&self) -> usize {
            0
        }
        fn initial_state(&self) -> StateId {
            StateId(0)
        }
        fn transitions() -> Vec<Transition<Self>> {
            vec![]
        }
    }

    fn world() -> (Runtime, ModuleId, ModuleId, ModuleId) {
        let (rt, _c) = Runtime::sim();
        let server = rt
            .add_module(
                None,
                "server",
                ModuleKind::SystemProcess,
                ModuleLabels::default(),
                Server,
            )
            .unwrap();
        let c1 = rt
            .add_module(
                None,
                "client-1",
                ModuleKind::SystemProcess,
                ModuleLabels::conn(1),
                Noop,
            )
            .unwrap();
        let c2 = rt
            .add_module(
                None,
                "client-2",
                ModuleKind::SystemProcess,
                ModuleLabels::conn(2),
                Noop,
            )
            .unwrap();
        (rt, server, c1, c2)
    }

    #[test]
    fn full_plan_resolves_and_renders() {
        let (rt, server, c1, c2) = world();
        let plan = DeploymentPlan::new()
            .place(server, "ksr1")
            .place(c1, "sun-ws")
            .place(c2, "dec-ws")
            .launch_from("ksr1");
        let d = plan.resolve(&rt).unwrap();
        assert_eq!(d.machine_names(), vec!["dec-ws", "ksr1", "sun-ws"]);
        assert_eq!(d.modules_on("ksr1"), &[server]);
        assert_eq!(d.modules_on("sun-ws"), &[c1]);
        // The launch machine builds the specification executable too.
        let ksr1 = &d.machines["ksr1"];
        assert!(ksr1.executables.contains("specification"));
        assert!(ksr1.executables.contains("Server"));
        // Client machines build only the client executable.
        let sun = &d.machines["sun-ws"];
        assert_eq!(
            sun.executables.iter().collect::<Vec<_>>(),
            vec![&"Noop".to_string()]
        );
        let report = d.render(&rt);
        assert!(report.contains("started by hand on ksr1"));
        assert!(report.contains("machine sun-ws"));
        assert!(report.contains("start: client-1"));
    }

    #[test]
    fn unplaced_system_module_rejected() {
        let (rt, server, c1, _c2) = world();
        let plan = DeploymentPlan::new()
            .place(server, "ksr1")
            .place(c1, "sun-ws");
        assert_eq!(
            plan.resolve(&rt).unwrap_err(),
            DeployError::Unplaced("client-2".into())
        );
    }

    #[test]
    fn placing_a_child_module_rejected() {
        let (rt, server, c1, c2) = world();
        let child = rt
            .add_module(
                Some(server),
                "entity",
                ModuleKind::Process,
                ModuleLabels::default(),
                Noop,
            )
            .unwrap();
        let plan = DeploymentPlan::new()
            .place(server, "ksr1")
            .place(c1, "a")
            .place(c2, "b")
            .place(child, "elsewhere");
        assert_eq!(
            plan.resolve(&rt).unwrap_err(),
            DeployError::NotASystemModule(child)
        );
    }

    #[test]
    fn same_type_clients_share_one_executable() {
        let (rt, server, c1, c2) = world();
        let plan = DeploymentPlan::new()
            .place(server, "ksr1")
            .place(c1, "lab")
            .place(c2, "lab");
        let d = plan.resolve(&rt).unwrap();
        let lab = &d.machines["lab"];
        assert_eq!(lab.modules.len(), 2);
        assert_eq!(lab.executables.len(), 1, "one binary per module type");
    }

    #[test]
    fn unknown_module_rejected() {
        let (rt, server, c1, c2) = world();
        let plan = DeploymentPlan::new()
            .place(server, "ksr1")
            .place(c1, "a")
            .place(c2, "b")
            .place(ModuleId::from_raw(999), "ghost");
        assert_eq!(
            plan.resolve(&rt).unwrap_err(),
            DeployError::UnknownModule(ModuleId::from_raw(999))
        );
    }
}
