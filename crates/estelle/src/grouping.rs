//! Module grouping — mapping Estelle modules to execution units.
//!
//! The paper (§5.2) shows that mapping every module to its own thread
//! loses to *grouping* modules into as many units as there are
//! processors, and (§3) that *connection-per-processor* outperforms
//! *layer-per-processor*. These policies are encoded here and consumed
//! by both the thread scheduler and the `ksim` multiprocessor
//! simulator.

use crate::ids::{ModuleId, ModuleLabels, UnitId};
use crate::runtime::Runtime;

/// A policy assigning each module to an execution unit.
///
/// Policies are pure functions of module identity/metadata so that
/// modules created dynamically (e.g. per-connection protocol entities)
/// receive a stable unit without global coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupingPolicy {
    /// One unit per module — the generator's default "maximum degree of
    /// parallelism" mapping.
    PerModule,
    /// Modules are spread over `units` round-robin by id.
    RoundRobin {
        /// Number of units.
        units: u32,
    },
    /// Connection-per-processor: modules sharing a `conn` label share a
    /// unit (`conn % units`); unlabeled modules go to unit 0.
    ByConnection {
        /// Number of units.
        units: u32,
    },
    /// Layer-per-processor: modules sharing a `layer` label share a
    /// unit (`layer % units`); unlabeled modules go to unit 0.
    ByLayer {
        /// Number of units.
        units: u32,
    },
    /// All modules in one unit — fully sequential execution.
    Single,
}

impl GroupingPolicy {
    /// Number of units the policy schedules onto. For [`PerModule`]
    /// this is `universe` (the module population size at planning
    /// time).
    ///
    /// [`PerModule`]: GroupingPolicy::PerModule
    pub fn unit_count(&self, universe: usize) -> usize {
        match *self {
            GroupingPolicy::PerModule => universe.max(1),
            GroupingPolicy::RoundRobin { units }
            | GroupingPolicy::ByConnection { units }
            | GroupingPolicy::ByLayer { units } => units.max(1) as usize,
            GroupingPolicy::Single => 1,
        }
    }

    /// Unit assignment for a module given its id and labels.
    pub fn assign(&self, id: ModuleId, labels: ModuleLabels) -> UnitId {
        match *self {
            GroupingPolicy::PerModule => UnitId(id.index() as u32),
            GroupingPolicy::RoundRobin { units } => UnitId(id.index() as u32 % units.max(1)),
            GroupingPolicy::ByConnection { units } => {
                UnitId(u32::from(labels.conn.unwrap_or(0)) % units.max(1))
            }
            GroupingPolicy::ByLayer { units } => {
                UnitId(u32::from(labels.layer.unwrap_or(0)) % units.max(1))
            }
            GroupingPolicy::Single => UnitId(0),
        }
    }

    /// Unit assignment looked up through a runtime (fetches labels).
    pub fn assign_in(&self, rt: &Runtime, id: ModuleId) -> UnitId {
        let labels = rt.module_meta(id).map(|m| m.labels).unwrap_or_default();
        self.assign(id, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_module_is_identity() {
        let p = GroupingPolicy::PerModule;
        assert_eq!(p.assign(ModuleId(7), ModuleLabels::default()), UnitId(7));
        assert_eq!(p.unit_count(12), 12);
    }

    #[test]
    fn round_robin_wraps() {
        let p = GroupingPolicy::RoundRobin { units: 3 };
        assert_eq!(p.assign(ModuleId(0), ModuleLabels::default()), UnitId(0));
        assert_eq!(p.assign(ModuleId(4), ModuleLabels::default()), UnitId(1));
        assert_eq!(p.unit_count(100), 3);
    }

    #[test]
    fn by_connection_groups_conn_chains() {
        let p = GroupingPolicy::ByConnection { units: 2 };
        let c0 = ModuleLabels::conn(0);
        let c1 = ModuleLabels::conn(1);
        let c2 = ModuleLabels::conn(2);
        assert_eq!(p.assign(ModuleId(10), c0), UnitId(0));
        assert_eq!(p.assign(ModuleId(11), c1), UnitId(1));
        assert_eq!(p.assign(ModuleId(12), c2), UnitId(0));
        // Same connection, different modules => same unit.
        assert_eq!(p.assign(ModuleId(99), c1), UnitId(1));
    }

    #[test]
    fn by_layer_groups_layers() {
        let p = GroupingPolicy::ByLayer { units: 4 };
        assert_eq!(p.assign(ModuleId(1), ModuleLabels::layer(2)), UnitId(2));
        assert_eq!(p.assign(ModuleId(2), ModuleLabels::layer(6)), UnitId(2));
        assert_eq!(
            p.assign(ModuleId(3), ModuleLabels::default()),
            UnitId(0),
            "unlabeled modules fall back to unit 0"
        );
    }

    #[test]
    fn zero_units_clamped() {
        let p = GroupingPolicy::RoundRobin { units: 0 };
        assert_eq!(p.assign(ModuleId(5), ModuleLabels::default()), UnitId(0));
        assert_eq!(p.unit_count(5), 1);
    }

    #[test]
    fn single_maps_everything_to_zero() {
        let p = GroupingPolicy::Single;
        for i in 0..10 {
            assert_eq!(
                p.assign(ModuleId(i), ModuleLabels::layer_conn(3, 4)),
                UnitId(0)
            );
        }
    }
}
