//! The Estelle runtime: module tree, channels, firing engine.
//!
//! This is the artifact the paper's code generator emits code *against*
//! — the runtime system that owns module instances, their individual
//! interaction-point queues, and the rules of ISO 9074 scheduling
//! (parent precedence, activity mutual exclusion, static system-module
//! population, dynamic creation by parents only).

use crate::ctx::{Ctx, Effect};
use crate::error::{EstelleError, Result};
use crate::ids::{IpIndex, IpRef, ModuleId, ModuleKind, ModuleLabels, StateId};
use crate::interaction::Interaction;
use crate::machine::{
    Dispatch, Fsm, IpState, ModuleExec, QueuedMsg, Selected, StateMachine, DEFAULT_TRANSITION_COST,
};
use crate::trace::{ExecTrace, FiringRecord, TraceModuleMeta};
use netsim::{Clock, SimDuration, SimTime, VirtualClock};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Result of attempting to fire one module once.
#[derive(Debug, Clone)]
pub enum FireOutcome {
    /// A transition fired.
    Fired(FiredMeta),
    /// No transition of the module is currently enabled.
    NotEnabled,
    /// The module is enabled but an ancestor has work (parent
    /// precedence) — it may not run now.
    Blocked,
    /// The module does not exist or has been released.
    Dead,
}

/// Details of a successful firing.
#[derive(Debug, Clone)]
pub struct FiredMeta {
    /// The module that fired.
    pub module: ModuleId,
    /// Transition name.
    pub transition: &'static str,
    /// Virtual cost of the transition.
    pub cost: SimDuration,
    /// Transitions inspected during selection.
    pub scanned: u32,
    /// State before.
    pub from_state: StateId,
    /// State after.
    pub to_state: StateId,
}

/// Static description of a module instance.
#[derive(Debug, Clone)]
pub struct ModuleMeta {
    /// Module id.
    pub id: ModuleId,
    /// Instance name.
    pub name: String,
    /// Estelle attribute.
    pub kind: ModuleKind,
    /// Grouping labels.
    pub labels: ModuleLabels,
    /// Parent module.
    pub parent: Option<ModuleId>,
    /// Whether the module is still alive.
    pub alive: bool,
}

/// Scheduler/runtime instrumentation counters (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Transitions fired (excluding `initialize` blocks).
    pub firings: u64,
    /// `initialize` blocks run.
    pub inits: u64,
    /// Transition-selection calls (scheduler scans).
    pub selects: u64,
    /// Wall nanoseconds spent selecting (scheduler overhead).
    pub scan_ns: u64,
    /// Wall nanoseconds spent in transition actions (useful work).
    pub action_ns: u64,
    /// Firings refused because an ancestor had work.
    pub blocked: u64,
    /// Outputs on unconnected interaction points (lost).
    pub lost_outputs: u64,
    /// Messages routed to released modules (dropped).
    pub msgs_to_dead: u64,
}

impl Counters {
    /// Fraction of instrumented wall time spent in selection rather
    /// than actions — the paper's "runtime percentage of the
    /// scheduler" (§5.2, up to 80 % for centralized schedulers).
    pub fn scheduler_share(&self) -> f64 {
        let total = self.scan_ns + self.action_ns;
        if total == 0 {
            0.0
        } else {
            self.scan_ns as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct AtomicCounters {
    firings: AtomicU64,
    inits: AtomicU64,
    selects: AtomicU64,
    scan_ns: AtomicU64,
    action_ns: AtomicU64,
    blocked: AtomicU64,
    lost_outputs: AtomicU64,
    msgs_to_dead: AtomicU64,
}

impl AtomicCounters {
    fn snapshot(&self) -> Counters {
        Counters {
            firings: self.firings.load(Ordering::Relaxed),
            inits: self.inits.load(Ordering::Relaxed),
            selects: self.selects.load(Ordering::Relaxed),
            scan_ns: self.scan_ns.load(Ordering::Relaxed),
            action_ns: self.action_ns.load(Ordering::Relaxed),
            blocked: self.blocked.load(Ordering::Relaxed),
            lost_outputs: self.lost_outputs.load(Ordering::Relaxed),
            msgs_to_dead: self.msgs_to_dead.load(Ordering::Relaxed),
        }
    }
}

struct ModuleCore {
    exec: Box<dyn ModuleExec>,
    ips: Vec<IpState>,
    entered_at: SimTime,
    last_seq: Option<u64>,
    inited: bool,
}

struct ModuleSlot {
    id: ModuleId,
    name: String,
    kind: ModuleKind,
    labels: ModuleLabels,
    parent: Option<ModuleId>,
    children: Mutex<Vec<ModuleId>>,
    core: Mutex<ModuleCore>,
    alive: AtomicBool,
    /// Held while a child of an `activity`-kind module fires, realizing
    /// sibling mutual exclusion under parallel schedulers.
    family_lock: Mutex<()>,
}

/// The Estelle runtime.
///
/// Build the static part of a specification with
/// [`Runtime::add_module`] and [`Runtime::connect`], then call
/// [`Runtime::start`]; drive execution with a scheduler from
/// [`crate::sched`].
pub struct Runtime {
    clock: Arc<dyn Clock>,
    vclock: Option<Arc<VirtualClock>>,
    next_id: AtomicU32,
    topo: RwLock<Vec<Option<Arc<ModuleSlot>>>>,
    frozen: AtomicBool,
    trace_on: AtomicBool,
    trace: Mutex<Vec<FiringRecord>>,
    fire_seq: AtomicU64,
    counters: AtomicCounters,
    qos_on: AtomicBool,
    qos: RwLock<Option<Arc<crate::qos::QosMonitor>>>,
    dynamic_systems: AtomicBool,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("modules", &self.topo.read().iter().flatten().count())
            .field("frozen", &self.frozen.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Creates a runtime reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Runtime {
            clock,
            vclock: None,
            next_id: AtomicU32::new(0),
            topo: RwLock::new(Vec::new()),
            frozen: AtomicBool::new(false),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
            fire_seq: AtomicU64::new(1),
            counters: AtomicCounters::default(),
            qos_on: AtomicBool::new(false),
            qos: RwLock::new(None),
            dynamic_systems: AtomicBool::new(false),
        }
    }

    /// Enables the ref \[2\] Estelle enhancement ("Increasing the
    /// concurrency in Estelle", Bredereke/Gotzhein): system modules may
    /// be created *after* [`Runtime::start`], lifting the ISO 9074
    /// restriction the paper calls out in §4.1 ("the number of
    /// `systemprocess` modules cannot be changed at runtime, so the
    /// number of clients is fixed"). Dynamically added modules run
    /// their `initialize` block immediately and join scheduling on the
    /// next pass. Structural rules still apply.
    pub fn enable_dynamic_systems(&self) {
        self.dynamic_systems.store(true, Ordering::SeqCst);
    }

    /// Whether the ref \[2\] dynamic-system extension is active.
    pub fn dynamic_systems_enabled(&self) -> bool {
        self.dynamic_systems.load(Ordering::SeqCst)
    }

    /// Installs a QoS monitor enforcing `spec` (the §6 extension: "QoS
    /// parameters cannot be specified [in Estelle]"). Every interaction
    /// consumed from now on has its queueing delay measured and checked.
    /// Returns the monitor for later inspection; replaces any previous
    /// monitor.
    pub fn attach_qos(&self, spec: crate::qos::QosSpec) -> Arc<crate::qos::QosMonitor> {
        let monitor = Arc::new(crate::qos::QosMonitor::new(spec));
        *self.qos.write() = Some(Arc::clone(&monitor));
        self.qos_on.store(true, Ordering::SeqCst);
        monitor
    }

    /// Removes the QoS monitor, returning it if one was attached.
    pub fn detach_qos(&self) -> Option<Arc<crate::qos::QosMonitor>> {
        self.qos_on.store(false, Ordering::SeqCst);
        self.qos.write().take()
    }

    /// The attached QoS monitor, if any.
    pub fn qos_monitor(&self) -> Option<Arc<crate::qos::QosMonitor>> {
        self.qos.read().clone()
    }

    /// Creates a runtime driven by the given virtual clock; idle
    /// schedulers may advance it to the next `delay` deadline.
    pub fn with_virtual_clock(vclock: Arc<VirtualClock>) -> Self {
        let mut rt = Runtime::new(vclock.clone() as Arc<dyn Clock>);
        rt.vclock = Some(vclock);
        rt
    }

    /// Convenience: a fresh runtime with its own virtual clock.
    pub fn sim() -> (Self, Arc<VirtualClock>) {
        let vclock = Arc::new(VirtualClock::new());
        (Self::with_virtual_clock(Arc::clone(&vclock)), vclock)
    }

    /// The clock this runtime reads.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The virtual clock, when running in simulated time.
    pub fn virtual_clock(&self) -> Option<Arc<VirtualClock>> {
        self.vclock.clone()
    }

    fn slot(&self, id: ModuleId) -> Option<Arc<ModuleSlot>> {
        self.topo.read().get(id.index()).and_then(|s| s.clone())
    }

    /// Adds a module to the static part of the specification.
    ///
    /// `parent` of `None` means top level. Structural rules of ISO 9074
    /// are enforced (see [`EstelleError::StructuralRule`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the runtime has started, the parent is
    /// unknown, or an attribute rule is violated.
    pub fn add_module<M: StateMachine>(
        &self,
        parent: Option<ModuleId>,
        name: impl Into<String>,
        kind: ModuleKind,
        labels: ModuleLabels,
        machine: M,
    ) -> Result<ModuleId> {
        self.add_module_exec(parent, name, kind, labels, Box::new(Fsm::new(machine)))
    }

    /// Type-erased variant of [`Runtime::add_module`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Runtime::add_module`].
    pub fn add_module_exec(
        &self,
        parent: Option<ModuleId>,
        name: impl Into<String>,
        kind: ModuleKind,
        labels: ModuleLabels,
        exec: Box<dyn ModuleExec>,
    ) -> Result<ModuleId> {
        let frozen = self.frozen.load(Ordering::SeqCst);
        if frozen && !self.dynamic_systems.load(Ordering::SeqCst) {
            return Err(EstelleError::SystemPopulationFrozen(kind));
        }
        let parent_kind = match parent {
            None => None,
            Some(p) => Some(self.slot(p).ok_or(EstelleError::UnknownModule(p))?.kind),
        };
        validate_child_kind(parent_kind, kind).map_err(EstelleError::StructuralRule)?;
        let id = ModuleId(self.next_id.fetch_add(1, Ordering::SeqCst));
        self.insert_slot(id, parent, name.into(), kind, labels, exec);
        // Ref [2] extension: a module created after start runs its
        // initialize block immediately (start already initialized the
        // static population).
        if frozen {
            self.init_module(id);
        }
        Ok(id)
    }

    fn insert_slot(
        &self,
        id: ModuleId,
        parent: Option<ModuleId>,
        name: String,
        kind: ModuleKind,
        labels: ModuleLabels,
        exec: Box<dyn ModuleExec>,
    ) {
        let num_ips = exec.num_ips();
        let slot = Arc::new(ModuleSlot {
            id,
            name,
            kind,
            labels,
            parent,
            children: Mutex::new(Vec::new()),
            core: Mutex::new(ModuleCore {
                exec,
                ips: (0..num_ips).map(|_| IpState::default()).collect(),
                entered_at: self.clock.now(),
                last_seq: None,
                inited: false,
            }),
            alive: AtomicBool::new(true),
            family_lock: Mutex::new(()),
        });
        {
            let mut topo = self.topo.write();
            if topo.len() <= id.index() {
                topo.resize_with(id.index() + 1, || None);
            }
            topo[id.index()] = Some(Arc::clone(&slot));
        }
        if let Some(p) = parent {
            if let Some(ps) = self.slot(p) {
                ps.children.lock().push(id);
            }
        }
    }

    /// Connects two interaction points with a channel.
    ///
    /// # Errors
    ///
    /// Returns an error if a module is unknown, an index is out of
    /// range, or either point is already connected.
    pub fn connect(&self, a: IpRef, b: IpRef) -> Result<()> {
        let sa = self
            .slot(a.module)
            .ok_or(EstelleError::UnknownModule(a.module))?;
        let sb = self
            .slot(b.module)
            .ok_or(EstelleError::UnknownModule(b.module))?;
        if a.module == b.module {
            // Self-channel: both ends in one core; validate and set
            // under one lock.
            let mut core = sa.core.lock();
            let n = core.ips.len();
            if a.ip.0 as usize >= n {
                return Err(EstelleError::IpOutOfRange(a));
            }
            if b.ip.0 as usize >= n {
                return Err(EstelleError::IpOutOfRange(b));
            }
            if core.ips[a.ip.0 as usize].peer.is_some() {
                return Err(EstelleError::AlreadyConnected(a));
            }
            if core.ips[b.ip.0 as usize].peer.is_some() {
                return Err(EstelleError::AlreadyConnected(b));
            }
            core.ips[a.ip.0 as usize].peer = Some(b);
            core.ips[b.ip.0 as usize].peer = Some(a);
            return Ok(());
        }
        // Lock in id order to avoid deadlock with concurrent connects.
        let (first, second) = if a.module < b.module {
            (&sa, &sb)
        } else {
            (&sb, &sa)
        };
        let mut c1 = first.core.lock();
        let mut c2 = second.core.lock();
        let (core_a, core_b) = if a.module < b.module {
            (&mut *c1, &mut *c2)
        } else {
            (&mut *c2, &mut *c1)
        };
        if a.ip.0 as usize >= core_a.ips.len() {
            return Err(EstelleError::IpOutOfRange(a));
        }
        if b.ip.0 as usize >= core_b.ips.len() {
            return Err(EstelleError::IpOutOfRange(b));
        }
        if core_a.ips[a.ip.0 as usize].peer.is_some() {
            return Err(EstelleError::AlreadyConnected(a));
        }
        if core_b.ips[b.ip.0 as usize].peer.is_some() {
            return Err(EstelleError::AlreadyConnected(b));
        }
        core_a.ips[a.ip.0 as usize].peer = Some(b);
        core_b.ips[b.ip.0 as usize].peer = Some(a);
        Ok(())
    }

    /// Freezes the system-module population and runs every module's
    /// `initialize` block (cascading through children created during
    /// initialization).
    ///
    /// # Errors
    ///
    /// Currently infallible but returns `Result` for future
    /// compatibility with initialization-time validation.
    pub fn start(&self) -> Result<()> {
        self.frozen.store(true, Ordering::SeqCst);
        let existing: Vec<ModuleId> = {
            let topo = self.topo.read();
            topo.iter().flatten().map(|s| s.id).collect()
        };
        for id in existing {
            self.init_module(id);
        }
        Ok(())
    }

    fn init_module(&self, id: ModuleId) {
        let Some(slot) = self.slot(id) else { return };
        if !slot.alive.load(Ordering::SeqCst) {
            return;
        }
        let mut effects = Vec::new();
        let seq = self.fire_seq.fetch_add(1, Ordering::SeqCst);
        {
            let mut core = slot.core.lock();
            if core.inited {
                return;
            }
            core.inited = true;
            core.last_seq = Some(seq);
            let mut ctx = Ctx::new(
                self.clock.now(),
                id,
                slot.kind,
                seq,
                &mut effects,
                &self.next_id,
            );
            core.exec.on_init(&mut ctx);
        }
        self.counters.inits.fetch_add(1, Ordering::Relaxed);
        if self.trace_on.load(Ordering::Relaxed) {
            self.trace.lock().push(FiringRecord {
                seq,
                module: id,
                labels: slot.labels,
                module_type: slot.core.lock().exec.type_name(),
                transition: "initialize",
                cost: DEFAULT_TRANSITION_COST,
                deps: Vec::new(),
            });
        }
        self.apply_effects(id, seq, effects);
    }

    /// Attempts to fire one transition of `id`, honouring parent
    /// precedence and activity mutual exclusion.
    pub fn try_fire(&self, id: ModuleId, dispatch: Dispatch) -> FireOutcome {
        let Some(slot) = self.slot(id) else {
            return FireOutcome::Dead;
        };
        if !slot.alive.load(Ordering::SeqCst) {
            return FireOutcome::Dead;
        }
        if slot.kind == ModuleKind::Inactive {
            return FireOutcome::NotEnabled;
        }
        // Parent precedence: every attributed ancestor must have
        // nothing to do.
        let mut anc = slot.parent;
        while let Some(pid) = anc {
            let Some(ps) = self.slot(pid) else { break };
            if ps.kind.is_attributed()
                && ps.alive.load(Ordering::SeqCst)
                && self.module_enabled_slot(&ps, dispatch)
            {
                self.counters.blocked.fetch_add(1, Ordering::Relaxed);
                return FireOutcome::Blocked;
            }
            anc = ps.parent;
        }
        // Activity mutual exclusion among siblings.
        let parent_slot = slot.parent.and_then(|p| self.slot(p));
        let _family_guard = match &parent_slot {
            Some(ps) if ps.kind.children_exclusive() => Some(ps.family_lock.lock()),
            _ => None,
        };
        let now = self.clock.now();
        let mut effects = Vec::new();
        let mut qos_obs: Option<(IpIndex, &'static str, SimDuration)> = None;
        let (info, seq, scanned, deps);
        {
            let mut core = slot.core.lock();
            let t_scan = Instant::now();
            let sel: Option<Selected> = {
                let ModuleCore {
                    exec,
                    ips,
                    entered_at,
                    ..
                } = &mut *core;
                exec.select(ips, now, *entered_at, dispatch)
            };
            self.counters
                .scan_ns
                .fetch_add(t_scan.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.counters.selects.fetch_add(1, Ordering::Relaxed);
            let Some(sel) = sel else {
                return FireOutcome::NotEnabled;
            };
            scanned = sel.scanned;
            seq = self.fire_seq.fetch_add(1, Ordering::SeqCst);
            let mut d: Vec<u64> = Vec::new();
            if let Some(ls) = core.last_seq {
                d.push(ls);
            }
            let input = sel
                .needs_input
                .and_then(|ip| core.ips.get_mut(ip.0 as usize))
                .and_then(|q| q.queue.pop_front());
            let input_msg = input.map(|q| {
                if let Some(p) = q.provenance {
                    d.push(p);
                }
                if self.qos_on.load(Ordering::Relaxed) {
                    if let Some(ip) = sel.needs_input {
                        qos_obs = Some((
                            ip,
                            q.msg.interaction_name(),
                            now.saturating_since(q.enqueued_at),
                        ));
                    }
                }
                q.msg
            });
            deps = d;
            let mut ctx = Ctx::new(now, id, slot.kind, seq, &mut effects, &self.next_id);
            let t_act = Instant::now();
            let fired = core.exec.fire(sel, input_msg, &mut ctx);
            self.counters
                .action_ns
                .fetch_add(t_act.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if fired.to_state != fired.from_state {
                core.entered_at = now;
            }
            core.last_seq = Some(seq);
            info = fired;
        }
        drop(_family_guard);
        if let Some((ip, name, delay)) = qos_obs {
            if let Some(monitor) = self.qos.read().as_ref() {
                monitor.observe(id, ip, name, delay, now);
            }
        }
        self.apply_effects(id, seq, effects);
        if self.trace_on.load(Ordering::Relaxed) {
            self.trace.lock().push(FiringRecord {
                seq,
                module: id,
                labels: slot.labels,
                module_type: slot.core.lock().exec.type_name(),
                transition: info.transition,
                cost: info.cost,
                deps,
            });
        }
        self.counters.firings.fetch_add(1, Ordering::Relaxed);
        FireOutcome::Fired(FiredMeta {
            module: id,
            transition: info.transition,
            cost: info.cost,
            scanned,
            from_state: info.from_state,
            to_state: info.to_state,
        })
    }

    fn module_enabled_slot(&self, slot: &Arc<ModuleSlot>, dispatch: Dispatch) -> bool {
        let core = slot.core.lock();
        let t_scan = Instant::now();
        let ModuleCore {
            exec,
            ips,
            entered_at,
            ..
        } = &*core;
        let enabled = exec
            .select(ips, self.clock.now(), *entered_at, dispatch)
            .is_some();
        self.counters
            .scan_ns
            .fetch_add(t_scan.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.counters.selects.fetch_add(1, Ordering::Relaxed);
        enabled
    }

    /// Whether `id` currently has an enabled transition (ignoring
    /// parent precedence).
    pub fn module_enabled(&self, id: ModuleId, dispatch: Dispatch) -> bool {
        match self.slot(id) {
            Some(s) if s.alive.load(Ordering::SeqCst) => self.module_enabled_slot(&s, dispatch),
            _ => false,
        }
    }

    /// Whether any alive module has an enabled transition.
    pub fn any_enabled(&self, dispatch: Dispatch) -> bool {
        let slots: Vec<Arc<ModuleSlot>> =
            self.topo.read().iter().flatten().map(Arc::clone).collect();
        slots
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .any(|s| self.module_enabled_slot(s, dispatch))
    }

    /// Earliest instant at which a `delay` transition could become
    /// enabled, across all modules.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let slots: Vec<Arc<ModuleSlot>> =
            self.topo.read().iter().flatten().map(Arc::clone).collect();
        let mut best: Option<SimTime> = None;
        for s in slots.iter().filter(|s| s.alive.load(Ordering::SeqCst)) {
            let core = s.core.lock();
            let ModuleCore {
                exec,
                ips,
                entered_at,
                ..
            } = &*core;
            if let Some(t) = exec.next_deadline(ips, *entered_at) {
                best = Some(match best {
                    Some(b) => b.min(t),
                    None => t,
                });
            }
        }
        best
    }

    /// Advances the virtual clock to `t` (no-op for real clocks or
    /// past instants).
    pub fn advance_clock_to(&self, t: SimTime) {
        if let Some(v) = &self.vclock {
            v.advance_to(t);
        }
    }

    fn apply_effects(&self, owner: ModuleId, seq: u64, effects: Vec<Effect>) {
        let mut to_init = Vec::new();
        for e in effects {
            match e {
                Effect::Create(ce) => {
                    self.insert_slot(
                        ce.reserved,
                        Some(owner),
                        ce.name,
                        ce.kind,
                        ce.labels,
                        ce.exec,
                    );
                    to_init.push(ce.reserved);
                }
                Effect::Connect { a, b } => {
                    if let Err(err) = self.connect(a, b) {
                        panic!("invalid connect effect from {owner}: {err}");
                    }
                }
                Effect::Output { from_ip, msg } => {
                    self.route_output(owner, from_ip, msg, Some(seq));
                }
                Effect::Release { child } => {
                    self.release_subtree(owner, child);
                }
            }
        }
        for id in to_init {
            self.init_module(id);
        }
    }

    fn route_output(
        &self,
        owner: ModuleId,
        from_ip: IpIndex,
        msg: Box<dyn Interaction>,
        provenance: Option<u64>,
    ) {
        let Some(slot) = self.slot(owner) else { return };
        let peer = {
            let core = slot.core.lock();
            match core.ips.get(from_ip.0 as usize) {
                Some(ip) => ip.peer,
                None => panic!("module {owner} output on out-of-range interaction point {from_ip}"),
            }
        };
        let Some(peer) = peer else {
            self.counters.lost_outputs.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Some(dest) = self.slot(peer.module) else {
            self.counters.msgs_to_dead.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if !dest.alive.load(Ordering::SeqCst) {
            self.counters.msgs_to_dead.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut core = dest.core.lock();
        match core.ips.get_mut(peer.ip.0 as usize) {
            Some(ip) => ip.queue.push_back(QueuedMsg {
                msg,
                provenance,
                enqueued_at: self.clock.now(),
            }),
            None => {
                self.counters.msgs_to_dead.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn release_subtree(&self, actor: ModuleId, child: ModuleId) {
        let Some(cs) = self.slot(child) else { return };
        if cs.parent != Some(actor) {
            panic!("module {actor} attempted to release non-child {child}");
        }
        let mut stack = vec![child];
        while let Some(id) = stack.pop() {
            let Some(s) = self.slot(id) else { continue };
            s.alive.store(false, Ordering::SeqCst);
            // Disconnect peers so their future outputs count as lost
            // rather than queueing at a corpse.
            let peers: Vec<IpRef> = {
                let core = s.core.lock();
                core.ips.iter().filter_map(|ip| ip.peer).collect()
            };
            for p in peers {
                if let Some(ps) = self.slot(p.module) {
                    let mut core = ps.core.lock();
                    if let Some(ip) = core.ips.get_mut(p.ip.0 as usize) {
                        ip.peer = None;
                    }
                }
            }
            stack.extend(s.children.lock().iter().copied());
        }
    }

    /// Injects a message from outside the specification (test driver /
    /// environment) into an interaction point's queue.
    ///
    /// # Errors
    ///
    /// Returns an error if the module is unknown/released or the index
    /// is out of range.
    pub fn inject(&self, target: IpRef, msg: Box<dyn Interaction>) -> Result<()> {
        let slot = self
            .slot(target.module)
            .ok_or(EstelleError::UnknownModule(target.module))?;
        if !slot.alive.load(Ordering::SeqCst) {
            return Err(EstelleError::UnknownModule(target.module));
        }
        let mut core = slot.core.lock();
        match core.ips.get_mut(target.ip.0 as usize) {
            Some(ip) => {
                ip.queue.push_back(QueuedMsg {
                    msg,
                    provenance: None,
                    enqueued_at: self.clock.now(),
                });
                Ok(())
            }
            None => Err(EstelleError::IpOutOfRange(target)),
        }
    }

    /// Snapshot of all alive module ids, in id order.
    pub fn alive_modules(&self) -> Vec<ModuleId> {
        self.topo
            .read()
            .iter()
            .flatten()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .map(|s| s.id)
            .collect()
    }

    /// Metadata of `id`, if it ever existed.
    pub fn module_meta(&self, id: ModuleId) -> Option<ModuleMeta> {
        self.slot(id).map(|s| ModuleMeta {
            id: s.id,
            name: s.name.clone(),
            kind: s.kind,
            labels: s.labels,
            parent: s.parent,
            alive: s.alive.load(Ordering::SeqCst),
        })
    }

    /// Children of `id` in creation order.
    pub fn children_of(&self, id: ModuleId) -> Vec<ModuleId> {
        self.slot(id)
            .map(|s| s.children.lock().clone())
            .unwrap_or_default()
    }

    /// First alive module whose instance name is `name`.
    pub fn find_by_name(&self, name: &str) -> Option<ModuleId> {
        self.topo
            .read()
            .iter()
            .flatten()
            .find(|s| s.alive.load(Ordering::SeqCst) && s.name == name)
            .map(|s| s.id)
    }

    /// Current FSM state of `id`.
    pub fn module_state(&self, id: ModuleId) -> Option<StateId> {
        self.slot(id).map(|s| s.core.lock().exec.state())
    }

    /// Static transition descriptions of `id` (priority order).
    pub fn transition_info(&self, id: ModuleId) -> Vec<crate::machine::TransitionInfo> {
        self.slot(id)
            .map(|s| s.core.lock().exec.transition_info())
            .unwrap_or_default()
    }

    /// Module type name of `id`.
    pub fn module_type(&self, id: ModuleId) -> Option<&'static str> {
        self.slot(id).map(|s| s.core.lock().exec.type_name())
    }

    /// The peers of each interaction point of `id` (index = IP).
    pub fn ip_peers(&self, id: ModuleId) -> Vec<Option<IpRef>> {
        self.slot(id)
            .map(|s| s.core.lock().ips.iter().map(|ip| ip.peer()).collect())
            .unwrap_or_default()
    }

    /// Runs `f` against the concrete machine of module `id`, if it is
    /// an [`Fsm`] over `M`. Used by drivers and tests to observe
    /// machine-internal results.
    pub fn with_machine<M: StateMachine, R>(
        &self,
        id: ModuleId,
        f: impl FnOnce(&M) -> R,
    ) -> Option<R> {
        let slot = self.slot(id)?;
        let core = slot.core.lock();
        let fsm = core.exec.as_any().downcast_ref::<Fsm<M>>()?;
        Some(f(fsm.machine()))
    }

    /// Mutable variant of [`Runtime::with_machine`].
    pub fn with_machine_mut<M: StateMachine, R>(
        &self,
        id: ModuleId,
        f: impl FnOnce(&mut M) -> R,
    ) -> Option<R> {
        let slot = self.slot(id)?;
        let mut core = slot.core.lock();
        let fsm = core.exec.as_any_mut().downcast_mut::<Fsm<M>>()?;
        Some(f(fsm.machine_mut()))
    }

    /// Total messages queued across all interaction points.
    pub fn pending_messages(&self) -> usize {
        let slots: Vec<Arc<ModuleSlot>> =
            self.topo.read().iter().flatten().map(Arc::clone).collect();
        slots
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .map(|s| s.core.lock().ips.iter().map(|ip| ip.len()).sum::<usize>())
            .sum()
    }

    /// Enables trace recording (see [`ExecTrace`]).
    pub fn enable_trace(&self) {
        self.trace_on.store(true, Ordering::SeqCst);
    }

    /// Stops recording and returns the trace collected so far.
    pub fn take_trace(&self) -> ExecTrace {
        self.trace_on.store(false, Ordering::SeqCst);
        let records = std::mem::take(&mut *self.trace.lock());
        let modules = self
            .topo
            .read()
            .iter()
            .flatten()
            .map(|s| TraceModuleMeta {
                id: s.id,
                name: s.name.clone(),
                kind: s.kind,
                labels: s.labels,
                parent: s.parent,
            })
            .collect();
        ExecTrace { records, modules }
    }

    /// Snapshot of the instrumentation counters.
    pub fn counters(&self) -> Counters {
        self.counters.snapshot()
    }
}

/// Checks the ISO 9074 attribute rules for placing a `child` kind under
/// a parent of `parent` kind (`None` = top level). Returns the violated
/// rule on failure. Exposed for property tests.
pub fn validate_child_kind(
    parent: Option<ModuleKind>,
    child: ModuleKind,
) -> std::result::Result<(), String> {
    use ModuleKind::*;
    match parent {
        None => match child {
            SystemProcess | SystemActivity | Inactive => Ok(()),
            Process | Activity => Err(format!(
                "{child} module must be contained (perhaps indirectly) in a system module"
            )),
        },
        Some(Inactive) => match child {
            SystemProcess | SystemActivity | Inactive => Ok(()),
            Process | Activity => Err(format!(
                "{child} module cannot be the child of an inactive module"
            )),
        },
        Some(p @ (SystemProcess | Process)) => match child {
            Process | Activity => Ok(()),
            SystemProcess | SystemActivity => Err(format!(
                "a system module cannot be contained in attributed module ({p})"
            )),
            Inactive => Err("inactive modules may only appear above system modules".into()),
        },
        Some(p @ (SystemActivity | Activity)) => match child {
            Activity => Ok(()),
            Process => Err(format!("an {p} module can only contain activity children")),
            SystemProcess | SystemActivity => Err(format!(
                "a system module cannot be contained in attributed module ({p})"
            )),
            Inactive => Err("inactive modules may only appear above system modules".into()),
        },
    }
}
