//! Schedulers: sequential reference, decentralized thread-parallel,
//! and centralized coordinator/worker.
//!
//! The paper's §5.2 observation — "for protocols with small processing
//! times, the Estelle scheduler becomes the bottleneck … runtime
//! percentage of the scheduler of up to 80 %; our scheduler … is
//! decentralized" — is reproduced by instrumenting selection time
//! (scheduler) separately from action time (useful work) and by
//! offering both a centralized and a decentralized implementation.

use crate::grouping::GroupingPolicy;
use crate::ids::ModuleId;
use crate::machine::Dispatch;
use crate::runtime::{Counters, FireOutcome, Runtime};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the sequential scheduler commits firings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FirePolicy {
    /// Fire every eligible module found during one pass over the
    /// module list before rescanning — amortizes scan cost.
    #[default]
    Pass,
    /// Rescan from the beginning after every single firing — the
    /// classic centralized scheduler with O(modules) dispatch cost per
    /// firing.
    OnePerScan,
}

/// Options for [`run_sequential`].
#[derive(Debug, Clone)]
pub struct SeqOptions {
    /// Transition-selection strategy.
    pub dispatch: Dispatch,
    /// Firing commitment policy.
    pub fire_policy: FirePolicy,
    /// Stop after this many firings (safety valve / partial runs).
    pub max_firings: Option<u64>,
    /// Advance the virtual clock to the next `delay` deadline when no
    /// transition is enabled (requires a virtual-clock runtime).
    pub advance_time: bool,
}

impl Default for SeqOptions {
    fn default() -> Self {
        SeqOptions {
            dispatch: Dispatch::TableDriven,
            fire_policy: FirePolicy::Pass,
            max_firings: None,
            advance_time: true,
        }
    }
}

/// Why a scheduler run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No module enabled and no future deadline (or time advancement
    /// disabled).
    Quiescent,
    /// The firing budget was exhausted.
    MaxFirings,
    /// The wall-clock safety timeout expired.
    Timeout,
}

/// Report of one scheduler run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Transitions fired during this run.
    pub firings: u64,
    /// Wall time of the run.
    pub wall: Duration,
    /// Why the run stopped.
    pub stopped: StopReason,
    /// Counter deltas accumulated during the run.
    pub counters: Counters,
}

fn counters_delta(after: Counters, before: Counters) -> Counters {
    Counters {
        firings: after.firings - before.firings,
        inits: after.inits - before.inits,
        selects: after.selects - before.selects,
        scan_ns: after.scan_ns - before.scan_ns,
        action_ns: after.action_ns - before.action_ns,
        blocked: after.blocked - before.blocked,
        lost_outputs: after.lost_outputs - before.lost_outputs,
        msgs_to_dead: after.msgs_to_dead - before.msgs_to_dead,
    }
}

/// Runs the specification on a single thread until quiescence (or a
/// budget/deadline stop). This is the reference semantics: every
/// parallel execution must be a linearization-equivalent of what this
/// scheduler produces at the protocol level.
pub fn run_sequential(rt: &Runtime, opts: &SeqOptions) -> RunReport {
    let before = rt.counters();
    let t0 = Instant::now();
    let mut fired_total = 0u64;
    let stopped;
    'outer: loop {
        let modules = rt.alive_modules();
        let mut fired_this_pass = 0u64;
        for id in &modules {
            if let Some(max) = opts.max_firings {
                if fired_total >= max {
                    stopped = StopReason::MaxFirings;
                    break 'outer;
                }
            }
            match rt.try_fire(*id, opts.dispatch) {
                FireOutcome::Fired(_) => {
                    fired_total += 1;
                    fired_this_pass += 1;
                    if opts.fire_policy == FirePolicy::OnePerScan {
                        // Centralized behaviour: restart the scan after
                        // each firing.
                        continue 'outer;
                    }
                }
                FireOutcome::NotEnabled | FireOutcome::Blocked | FireOutcome::Dead => {}
            }
        }
        if fired_this_pass == 0 {
            if opts.advance_time {
                if let Some(deadline) = rt.next_deadline() {
                    if deadline > rt.now() {
                        rt.advance_clock_to(deadline);
                        continue;
                    }
                }
            }
            stopped = StopReason::Quiescent;
            break;
        }
    }
    RunReport {
        firings: fired_total,
        wall: t0.elapsed(),
        stopped,
        counters: counters_delta(rt.counters(), before),
    }
}

/// Options for the parallel schedulers.
#[derive(Debug, Clone)]
pub struct ParOptions {
    /// Number of worker threads (units).
    pub units: usize,
    /// Module-to-unit mapping policy.
    pub grouping: GroupingPolicy,
    /// Transition-selection strategy.
    pub dispatch: Dispatch,
    /// Stop after this many total firings.
    pub max_firings: Option<u64>,
    /// Wall-clock safety timeout.
    pub timeout: Duration,
    /// Advance the virtual clock at global idle (virtual-clock
    /// runtimes only).
    pub advance_time: bool,
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions {
            units: 2,
            grouping: GroupingPolicy::RoundRobin { units: 2 },
            dispatch: Dispatch::TableDriven,
            max_firings: None,
            timeout: Duration::from_secs(30),
            advance_time: true,
        }
    }
}

/// Runs the specification on `opts.units` worker threads, each worker
/// scanning only the modules its unit owns (the *decentralized*
/// scheduler: "each part only has to check the transitions of one
/// module; this can be done in parallel").
pub fn run_threads(rt: &Arc<Runtime>, opts: &ParOptions) -> RunReport {
    let before = rt.counters();
    let t0 = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let progress = Arc::new(AtomicU64::new(0));
    let fired = Arc::new(AtomicU64::new(0));
    let units = opts.units.max(1);

    std::thread::scope(|scope| {
        for unit in 0..units {
            let rt = Arc::clone(rt);
            let stop = Arc::clone(&stop);
            let progress = Arc::clone(&progress);
            let fired = Arc::clone(&fired);
            let opts = opts.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let mut any = false;
                    for id in rt.alive_modules() {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        if opts.grouping.assign_in(&rt, id).0 as usize % units != unit {
                            continue;
                        }
                        if let FireOutcome::Fired(_) = rt.try_fire(id, opts.dispatch) {
                            any = true;
                            progress.fetch_add(1, Ordering::SeqCst);
                            let f = fired.fetch_add(1, Ordering::SeqCst) + 1;
                            if let Some(max) = opts.max_firings {
                                if f >= max {
                                    stop.store(true, Ordering::SeqCst);
                                    return;
                                }
                            }
                        }
                    }
                    if !any {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Supervisor: detect quiescence (progress stagnant AND nothing
        // enabled), advance virtual time at global idle, enforce the
        // timeout.
        let mut last_progress = progress.load(Ordering::SeqCst);
        let mut stopped = StopReason::Quiescent;
        loop {
            std::thread::sleep(Duration::from_micros(200));
            if stop.load(Ordering::SeqCst) {
                stopped = StopReason::MaxFirings;
                break;
            }
            if t0.elapsed() > opts.timeout {
                stopped = StopReason::Timeout;
                break;
            }
            let p = progress.load(Ordering::SeqCst);
            if p != last_progress {
                last_progress = p;
                continue;
            }
            if rt.any_enabled(opts.dispatch) {
                continue;
            }
            // Re-check stagnation after the enabled scan to close the
            // window where a worker fired mid-scan.
            if progress.load(Ordering::SeqCst) != p {
                last_progress = progress.load(Ordering::SeqCst);
                continue;
            }
            if opts.advance_time {
                if let Some(deadline) = rt.next_deadline() {
                    if deadline > rt.now() {
                        rt.advance_clock_to(deadline);
                        continue;
                    }
                }
            }
            break;
        }
        stop.store(true, Ordering::SeqCst);
        stopped
    });

    let stopped = if t0.elapsed() > opts.timeout {
        StopReason::Timeout
    } else if opts
        .max_firings
        .is_some_and(|m| fired.load(Ordering::SeqCst) >= m)
    {
        StopReason::MaxFirings
    } else {
        StopReason::Quiescent
    };
    RunReport {
        firings: fired.load(Ordering::SeqCst),
        wall: t0.elapsed(),
        stopped,
        counters: counters_delta(rt.counters(), before),
    }
}

/// Runs the specification with a *centralized* scheduler: a single
/// coordinator repeatedly scans the whole module population for
/// enabled transitions and hands them one at a time to a worker pool.
/// The coordinator's scan is the global bottleneck the paper measured
/// at up to 80 % of runtime.
pub fn run_centralized(rt: &Arc<Runtime>, opts: &ParOptions) -> RunReport {
    let before = rt.counters();
    let t0 = Instant::now();
    let units = opts.units.max(1);
    let (work_tx, work_rx) = crossbeam::channel::unbounded::<ModuleId>();
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<bool>();
    let stop = Arc::new(AtomicBool::new(false));
    let mut fired_total = 0u64;
    let mut stopped = StopReason::Quiescent;

    std::thread::scope(|scope| {
        for _ in 0..units {
            let rt = Arc::clone(rt);
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            let stop = Arc::clone(&stop);
            let dispatch = opts.dispatch;
            scope.spawn(move || {
                while let Ok(id) = work_rx.recv() {
                    if stop.load(Ordering::SeqCst) {
                        let _ = done_tx.send(false);
                        continue;
                    }
                    let fired = matches!(rt.try_fire(id, dispatch), FireOutcome::Fired(_));
                    let _ = done_tx.send(fired);
                }
            });
        }
        'outer: loop {
            if t0.elapsed() > opts.timeout {
                stopped = StopReason::Timeout;
                break;
            }
            // Coordinator scan: find all currently-enabled modules.
            let enabled: Vec<ModuleId> = rt
                .alive_modules()
                .into_iter()
                .filter(|&id| rt.module_enabled(id, opts.dispatch))
                .collect();
            if enabled.is_empty() {
                if opts.advance_time {
                    if let Some(deadline) = rt.next_deadline() {
                        if deadline > rt.now() {
                            rt.advance_clock_to(deadline);
                            continue;
                        }
                    }
                }
                stopped = StopReason::Quiescent;
                break;
            }
            let batch = enabled.len();
            for id in enabled {
                work_tx.send(id).expect("workers alive");
            }
            for _ in 0..batch {
                if done_rx.recv().unwrap_or(false) {
                    fired_total += 1;
                    if let Some(max) = opts.max_firings {
                        if fired_total >= max {
                            stopped = StopReason::MaxFirings;
                            break 'outer;
                        }
                    }
                }
            }
        }
        stop.store(true, Ordering::SeqCst);
        drop(work_tx);
    });

    RunReport {
        firings: fired_total,
        wall: t0.elapsed(),
        stopped,
        counters: counters_delta(rt.counters(), before),
    }
}
