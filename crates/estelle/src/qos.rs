//! QoS annotations and runtime monitoring — the paper's missing piece.
//!
//! The paper's conclusion (§6) opens with: *"One of the major problems
//! of Estelle in a real-time environment is that QoS parameters cannot
//! be specified. … Non-realtime protocols such as MCAM also have QoS
//! requirements, e.g. maximum delay of an interaction, but these are
//! not as critical."* This module supplies the extension the authors
//! wished for: a [`QosSpec`] attaches *maximum-delay budgets* to
//! interaction points, and a [`QosMonitor`] installed on the runtime
//! ([`crate::Runtime::attach_qos`]) measures the queueing delay of
//! every consumed interaction — the time from `output` to the firing
//! that consumes it — recording statistics and budget violations.
//!
//! # Examples
//!
//! ```
//! use estelle::qos::QosSpec;
//! use netsim::SimDuration;
//!
//! let spec = QosSpec::new()
//!     .default_max_delay(SimDuration::from_millis(50));
//! assert!(spec.budget_for_unconfigured().is_some());
//! ```

use crate::ids::{IpIndex, ModuleId};
use netsim::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Maximum-delay budgets for interactions, keyed by the *consuming*
/// interaction point.
///
/// A budget bounds the queueing delay of an interaction: the virtual
/// time between the producing module's `output` and the consuming
/// transition's firing. Interaction points without their own budget
/// fall back to the default, if set; otherwise they are measured but
/// never flagged.
#[derive(Debug, Clone, Default)]
pub struct QosSpec {
    per_ip: HashMap<(ModuleId, IpIndex), SimDuration>,
    default_budget: Option<SimDuration>,
}

impl QosSpec {
    /// An empty spec: everything measured, nothing flagged.
    pub fn new() -> Self {
        QosSpec::default()
    }

    /// Sets the maximum queueing delay for interactions consumed at
    /// `(module, ip)`.
    pub fn max_delay(mut self, module: ModuleId, ip: IpIndex, budget: SimDuration) -> Self {
        self.per_ip.insert((module, ip), budget);
        self
    }

    /// Sets the budget applied to every interaction point without an
    /// explicit one.
    pub fn default_max_delay(mut self, budget: SimDuration) -> Self {
        self.default_budget = Some(budget);
        self
    }

    /// The budget in force for `(module, ip)`.
    pub fn budget_for(&self, module: ModuleId, ip: IpIndex) -> Option<SimDuration> {
        self.per_ip
            .get(&(module, ip))
            .copied()
            .or(self.default_budget)
    }

    /// The fallback budget for unconfigured interaction points.
    pub fn budget_for_unconfigured(&self) -> Option<SimDuration> {
        self.default_budget
    }
}

/// One budget overrun.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosViolation {
    /// Consuming module.
    pub module: ModuleId,
    /// Consuming interaction point.
    pub ip: IpIndex,
    /// Interaction type name.
    pub interaction: &'static str,
    /// Observed queueing delay.
    pub delay: SimDuration,
    /// The budget that was exceeded.
    pub budget: SimDuration,
    /// Virtual time of the consuming firing.
    pub at: SimTime,
}

#[derive(Debug, Default, Clone)]
struct IpStats {
    consumed: u64,
    total: SimDuration,
    max: SimDuration,
    violations: u64,
}

/// Per-interaction-point delay statistics in a [`QosReport`].
#[derive(Debug, Clone)]
pub struct QosEntry {
    /// Consuming module.
    pub module: ModuleId,
    /// Consuming interaction point.
    pub ip: IpIndex,
    /// Interactions consumed.
    pub consumed: u64,
    /// Mean queueing delay.
    pub mean_delay: SimDuration,
    /// Worst queueing delay.
    pub max_delay: SimDuration,
    /// Budget in force, if any.
    pub budget: Option<SimDuration>,
    /// Number of budget overruns.
    pub violations: u64,
}

/// Snapshot of everything a [`QosMonitor`] observed.
#[derive(Debug, Clone, Default)]
pub struct QosReport {
    /// Per-interaction-point statistics, ordered by (module, ip).
    pub entries: Vec<QosEntry>,
    /// Every individual violation, in observation order.
    pub violations: Vec<QosViolation>,
}

impl QosReport {
    /// True when no budget was overrun.
    pub fn all_within_budget(&self) -> bool {
        self.violations.is_empty()
    }

    /// Worst delay observed anywhere.
    pub fn worst_delay(&self) -> SimDuration {
        self.entries
            .iter()
            .map(|e| e.max_delay)
            .fold(SimDuration::ZERO, SimDuration::max)
    }
}

/// Runtime QoS monitor: observes every consumed interaction and
/// checks it against a [`QosSpec`].
///
/// Attach with [`crate::Runtime::attach_qos`]; obtain results with
/// [`QosMonitor::report`].
#[derive(Debug)]
pub struct QosMonitor {
    spec: QosSpec,
    stats: Mutex<HashMap<(ModuleId, IpIndex), IpStats>>,
    violations: Mutex<Vec<QosViolation>>,
}

impl QosMonitor {
    /// Creates a monitor enforcing `spec`.
    pub fn new(spec: QosSpec) -> Self {
        QosMonitor {
            spec,
            stats: Mutex::new(HashMap::new()),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// The spec being enforced.
    pub fn spec(&self) -> &QosSpec {
        &self.spec
    }

    /// Records one consumed interaction. Called by the runtime.
    pub(crate) fn observe(
        &self,
        module: ModuleId,
        ip: IpIndex,
        interaction: &'static str,
        delay: SimDuration,
        at: SimTime,
    ) {
        let budget = self.spec.budget_for(module, ip);
        {
            let mut stats = self.stats.lock();
            let s = stats.entry((module, ip)).or_default();
            s.consumed += 1;
            s.total += delay;
            s.max = s.max.max(delay);
            if matches!(budget, Some(b) if delay > b) {
                s.violations += 1;
            }
        }
        if let Some(b) = budget {
            if delay > b {
                self.violations.lock().push(QosViolation {
                    module,
                    ip,
                    interaction,
                    delay,
                    budget: b,
                    at,
                });
            }
        }
    }

    /// Snapshot of statistics and violations so far.
    pub fn report(&self) -> QosReport {
        let stats = self.stats.lock();
        let mut entries: Vec<QosEntry> = stats
            .iter()
            .map(|(&(module, ip), s)| QosEntry {
                module,
                ip,
                consumed: s.consumed,
                mean_delay: s
                    .total
                    .as_micros()
                    .checked_div(s.consumed)
                    .map_or(SimDuration::ZERO, SimDuration::from_micros),
                max_delay: s.max,
                budget: self.spec.budget_for(module, ip),
                violations: s.violations,
            })
            .collect();
        entries.sort_by_key(|e| (e.module.index(), e.ip.0));
        QosReport {
            entries,
            violations: self.violations.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn spec_lookup_prefers_specific_budget() {
        let m = ModuleId::from_raw(1);
        let spec = QosSpec::new()
            .max_delay(m, IpIndex(0), us(10))
            .default_max_delay(us(100));
        assert_eq!(spec.budget_for(m, IpIndex(0)), Some(us(10)));
        assert_eq!(spec.budget_for(m, IpIndex(1)), Some(us(100)));
        assert_eq!(QosSpec::new().budget_for(m, IpIndex(0)), None);
    }

    #[test]
    fn monitor_flags_only_over_budget() {
        let m = ModuleId::from_raw(3);
        let monitor = QosMonitor::new(QosSpec::new().max_delay(m, IpIndex(0), us(50)));
        monitor.observe(m, IpIndex(0), "A", us(20), SimTime::ZERO);
        monitor.observe(m, IpIndex(0), "A", us(50), SimTime::ZERO); // exactly at budget: ok
        monitor.observe(m, IpIndex(0), "A", us(80), SimTime::ZERO + us(5));
        let report = monitor.report();
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.consumed, 3);
        assert_eq!(e.mean_delay, us(50));
        assert_eq!(e.max_delay, us(80));
        assert_eq!(e.violations, 1);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].delay, us(80));
        assert_eq!(report.violations[0].budget, us(50));
        assert!(!report.all_within_budget());
        assert_eq!(report.worst_delay(), us(80));
    }

    #[test]
    fn unbudgeted_points_are_measured_not_flagged() {
        let m = ModuleId::from_raw(4);
        let monitor = QosMonitor::new(QosSpec::new());
        monitor.observe(m, IpIndex(2), "B", us(1_000_000), SimTime::ZERO);
        let report = monitor.report();
        assert!(report.all_within_budget());
        assert_eq!(report.entries[0].budget, None);
        assert_eq!(report.entries[0].max_delay, us(1_000_000));
    }

    #[test]
    fn entries_sorted_by_module_then_ip() {
        let monitor = QosMonitor::new(QosSpec::new());
        monitor.observe(ModuleId::from_raw(2), IpIndex(1), "X", us(1), SimTime::ZERO);
        monitor.observe(ModuleId::from_raw(1), IpIndex(3), "X", us(1), SimTime::ZERO);
        monitor.observe(ModuleId::from_raw(1), IpIndex(0), "X", us(1), SimTime::ZERO);
        let report = monitor.report();
        let keys: Vec<(usize, u16)> = report
            .entries
            .iter()
            .map(|e| (e.module.index(), e.ip.0))
            .collect();
        assert_eq!(keys, vec![(1, 0), (1, 3), (2, 1)]);
    }
}
