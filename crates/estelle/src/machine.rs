//! State machines, transitions, and dispatch strategies.
//!
//! An Estelle module body is a finite state machine whose transitions
//! carry `when` (input), `provided` (guard), `priority`, and `delay`
//! clauses (ISO 9074). The paper (§5.2) studies two ways of *mapping*
//! transitions into implementation code:
//!
//! - **hard-coded**: every transition is a code block in one selection
//!   function, scanned in priority order ([`Dispatch::HardCoded`]);
//! - **table-driven**: transitions are indexed by current state so only
//!   transitions possible in that state are inspected
//!   ([`Dispatch::TableDriven`]).
//!
//! Both are implemented here so the experiment can be reproduced.

use crate::ctx::Ctx;
use crate::ids::{IpIndex, IpRef, StateId};
use crate::interaction::Interaction;
use netsim::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// Default virtual cost charged per transition firing in the
/// multiprocessor simulator when a transition does not override it.
pub const DEFAULT_TRANSITION_COST: SimDuration = SimDuration::from_micros(50);

/// A `provided` guard: a predicate over the machine and, when the
/// transition has a `when` clause, the head input message.
pub type Guard<M> = fn(&M, Option<&dyn Interaction>) -> bool;

/// Source-state clause of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FromState {
    /// The transition may fire in any state.
    Any,
    /// The transition may fire only in the given state.
    In(StateId),
}

/// One Estelle transition of a machine of type `M`.
///
/// Constructed with [`Transition::spontaneous`] or [`Transition::on`]
/// and refined with the chainable builder methods.
pub struct Transition<M> {
    /// Name used in traces and reports.
    pub name: &'static str,
    /// `from` clause.
    pub from: FromState,
    /// `to` clause; `None` means the machine stays in its state unless
    /// the action calls [`Ctx::goto`].
    pub to: Option<StateId>,
    /// `priority` clause; lower values fire first.
    pub priority: u8,
    /// `when` clause: the interaction point whose head message enables
    /// and feeds this transition.
    pub when: Option<IpIndex>,
    /// `provided` clause: a guard over the machine and (if `when` is
    /// set) the head input message.
    pub provided: Option<Guard<M>>,
    /// `delay` clause: the transition only becomes enabled once the
    /// machine has been in the source state at least this long.
    pub delay: Option<SimDuration>,
    /// Virtual execution cost for the multiprocessor simulator.
    pub cost: SimDuration,
    /// The transition body.
    pub action: fn(&mut M, &mut Ctx<'_>, Option<Box<dyn Interaction>>),
}

impl<M> fmt::Debug for Transition<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transition")
            .field("name", &self.name)
            .field("from", &self.from)
            .field("to", &self.to)
            .field("priority", &self.priority)
            .field("when", &self.when)
            .field("delay", &self.delay)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

impl<M> Clone for Transition<M> {
    fn clone(&self) -> Self {
        Transition {
            name: self.name,
            from: self.from,
            to: self.to,
            priority: self.priority,
            when: self.when,
            provided: self.provided,
            delay: self.delay,
            cost: self.cost,
            action: self.action,
        }
    }
}

impl<M> Transition<M> {
    /// A spontaneous transition (no `when` clause) from `from`.
    pub fn spontaneous(
        name: &'static str,
        from: StateId,
        action: fn(&mut M, &mut Ctx<'_>, Option<Box<dyn Interaction>>),
    ) -> Self {
        Transition {
            name,
            from: FromState::In(from),
            to: None,
            priority: u8::MAX / 2,
            when: None,
            provided: None,
            delay: None,
            cost: DEFAULT_TRANSITION_COST,
            action,
        }
    }

    /// An input transition: fires when a message is at the head of
    /// interaction point `ip` while in state `from`.
    pub fn on(
        name: &'static str,
        from: StateId,
        ip: IpIndex,
        action: fn(&mut M, &mut Ctx<'_>, Option<Box<dyn Interaction>>),
    ) -> Self {
        let mut t = Self::spontaneous(name, from, action);
        t.when = Some(ip);
        t
    }

    /// Makes the transition fire from any state.
    pub fn any_state(mut self) -> Self {
        self.from = FromState::Any;
        self
    }

    /// Sets the `to` clause.
    pub fn to(mut self, state: StateId) -> Self {
        self.to = Some(state);
        self
    }

    /// Sets the `priority` clause (lower fires first).
    pub fn priority(mut self, p: u8) -> Self {
        self.priority = p;
        self
    }

    /// Sets the `provided` guard.
    pub fn provided(mut self, guard: Guard<M>) -> Self {
        self.provided = Some(guard);
        self
    }

    /// Sets the `delay` clause.
    pub fn delay(mut self, d: SimDuration) -> Self {
        self.delay = Some(d);
        self
    }

    /// Sets the virtual cost charged in the multiprocessor simulator.
    pub fn cost(mut self, c: SimDuration) -> Self {
        self.cost = c;
        self
    }

    fn matches_state(&self, s: StateId) -> bool {
        match self.from {
            FromState::Any => true,
            FromState::In(f) => f == s,
        }
    }
}

/// A user-defined Estelle module body.
///
/// Implementors provide states (as [`StateId`] constants), the
/// transition list, and optionally initialization behaviour; the
/// framework wraps them in an [`Fsm`] for execution.
pub trait StateMachine: Send + Sized + 'static {
    /// Number of interaction points this module exposes.
    fn num_ips(&self) -> usize;

    /// The initial state.
    fn initial_state(&self) -> StateId;

    /// The transition list (order = declaration order; ties in priority
    /// are broken by declaration order, as in the paper's generator).
    fn transitions() -> Vec<Transition<Self>>;

    /// Module type name for traces; defaults to the Rust type name.
    fn type_name(&self) -> &'static str {
        let full = std::any::type_name::<Self>();
        full.rsplit("::").next().unwrap_or(full)
    }

    /// Called once when the module instance is created, before any
    /// transition fires; the Estelle `initialize` block.
    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// A message queued at an interaction point.
#[derive(Debug)]
pub(crate) struct QueuedMsg {
    pub msg: Box<dyn Interaction>,
    /// Firing sequence number that produced this message, for trace
    /// dependencies; `None` for messages injected from outside.
    pub provenance: Option<u64>,
    /// Virtual time the message entered the queue (for QoS delay
    /// accounting).
    pub enqueued_at: SimTime,
}

/// Runtime state of one interaction point: its peer (if connected) and
/// its individual FIFO input queue (Estelle gives each IP its own
/// queue).
#[derive(Debug, Default)]
pub struct IpState {
    pub(crate) peer: Option<IpRef>,
    pub(crate) queue: VecDeque<QueuedMsg>,
}

impl IpState {
    /// Peeks at the head message.
    pub fn head(&self) -> Option<&dyn Interaction> {
        self.queue.front().map(|q| &*q.msg)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The connected peer interaction point, if any.
    pub fn peer(&self) -> Option<IpRef> {
        self.peer
    }
}

/// Transition-selection strategy (paper §5.2, "mapping of transitions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Scan every transition in priority order, checking the `from`
    /// clause each time — the "hard-coded selection function".
    HardCoded,
    /// Index transitions by current state and scan only those — the
    /// "table-controlled approach", reported significantly better once
    /// a module has more than about four transitions.
    #[default]
    TableDriven,
}

/// A transition chosen by [`ModuleExec::select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selected {
    /// Index into the compiled priority-ordered transition list.
    pub index: u16,
    /// Interaction point whose head message must be consumed, if the
    /// transition has a `when` clause.
    pub needs_input: Option<IpIndex>,
    /// Number of transitions inspected to find this one (dispatch work;
    /// feeds the E3 experiment).
    pub scanned: u32,
}

/// Outcome of a fired transition.
#[derive(Debug, Clone)]
pub struct FiredInfo {
    /// Transition name.
    pub transition: &'static str,
    /// State before the firing.
    pub from_state: StateId,
    /// State after the firing.
    pub to_state: StateId,
    /// Virtual cost of the firing.
    pub cost: SimDuration,
}

/// Static description of one transition, for specification export and
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionInfo {
    /// Transition name.
    pub name: &'static str,
    /// `from` clause.
    pub from: FromState,
    /// `to` clause (None = same state).
    pub to: Option<StateId>,
    /// Priority.
    pub priority: u8,
    /// `when` interaction point.
    pub when: Option<IpIndex>,
    /// `delay` clause.
    pub delay: Option<SimDuration>,
    /// Whether a `provided` guard exists.
    pub guarded: bool,
}

/// Object-safe executable view of a module body, implemented by
/// [`Fsm`]. The runtime stores modules as `Box<dyn ModuleExec>`.
pub trait ModuleExec: Send {
    /// Module type name.
    fn type_name(&self) -> &'static str;
    /// Current state.
    fn state(&self) -> StateId;
    /// Number of interaction points.
    fn num_ips(&self) -> usize;
    /// Runs the `initialize` block.
    fn on_init(&mut self, ctx: &mut Ctx<'_>);
    /// Selects the highest-priority enabled transition, if any.
    fn select(
        &self,
        ips: &[IpState],
        now: SimTime,
        entered: SimTime,
        dispatch: Dispatch,
    ) -> Option<Selected>;
    /// Executes a previously selected transition.
    fn fire(
        &mut self,
        sel: Selected,
        input: Option<Box<dyn Interaction>>,
        ctx: &mut Ctx<'_>,
    ) -> FiredInfo;
    /// Earliest instant a `delay` transition could become enabled,
    /// given current queues; `None` if no delay transition is pending.
    fn next_deadline(&self, ips: &[IpState], entered: SimTime) -> Option<SimTime>;
    /// Static transition descriptions (priority order), for
    /// specification export.
    fn transition_info(&self) -> Vec<TransitionInfo>;
    /// Upcast for machine introspection (see
    /// [`crate::Runtime::with_machine`]).
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The executable wrapper pairing a [`StateMachine`] with its compiled
/// transition table.
pub struct Fsm<M: StateMachine> {
    machine: M,
    state: StateId,
    /// Priority-ordered transitions (stable sort by priority).
    order: Vec<Transition<M>>,
    /// Per-state indices into `order` (includes `Any`-state
    /// transitions), used by table-driven dispatch.
    by_state: Vec<Vec<u16>>,
}

impl<M: StateMachine + fmt::Debug> fmt::Debug for Fsm<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fsm")
            .field("machine", &self.machine)
            .field("state", &self.state)
            .field("transitions", &self.order.len())
            .finish()
    }
}

impl<M: StateMachine> Fsm<M> {
    /// Compiles the machine's transition list and wraps it for
    /// execution.
    pub fn new(machine: M) -> Self {
        let mut order = M::transitions();
        // Stable: ties keep declaration order.
        order.sort_by_key(|t| t.priority);
        let mut max_state = machine.initial_state().0 as usize;
        for t in &order {
            if let FromState::In(s) = t.from {
                max_state = max_state.max(s.0 as usize);
            }
            if let Some(s) = t.to {
                max_state = max_state.max(s.0 as usize);
            }
        }
        let mut by_state = vec![Vec::new(); max_state + 1];
        for (i, t) in order.iter().enumerate() {
            match t.from {
                FromState::Any => {
                    for v in &mut by_state {
                        v.push(i as u16);
                    }
                }
                FromState::In(s) => by_state[s.0 as usize].push(i as u16),
            }
        }
        let state = machine.initial_state();
        Fsm {
            machine,
            state,
            order,
            by_state,
        }
    }

    /// Immutable access to the wrapped machine (for assertions and the
    /// external-body pattern).
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the wrapped machine.
    pub fn machine_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    /// Selects and fires one transition against a detached context
    /// whose effects are discarded. For dispatch micro-benchmarks
    /// (experiment E3) only — never use in real specifications.
    #[doc(hidden)]
    pub fn bench_step(
        &mut self,
        ips: &[IpState],
        now: SimTime,
        entered: SimTime,
        dispatch: Dispatch,
    ) -> bool {
        use std::sync::atomic::AtomicU32;
        static BENCH_ALLOC: AtomicU32 = AtomicU32::new(u32::MAX / 2);
        let Some(sel) = self.select(ips, now, entered, dispatch) else {
            return false;
        };
        let mut effects = Vec::new();
        let mut ctx = Ctx::new(
            now,
            crate::ids::ModuleId::from_raw(0),
            crate::ids::ModuleKind::SystemProcess,
            0,
            &mut effects,
            &BENCH_ALLOC,
        );
        self.fire(sel, None, &mut ctx);
        true
    }

    fn enabled(&self, t: &Transition<M>, ips: &[IpState], now: SimTime, entered: SimTime) -> bool {
        if let Some(d) = t.delay {
            if now.saturating_since(entered) < d {
                return false;
            }
        }
        let head = match t.when {
            Some(ip) => match ips.get(ip.0 as usize).and_then(|q| q.head()) {
                Some(m) => Some(m),
                None => return false,
            },
            None => None,
        };
        match t.provided {
            Some(g) => g(&self.machine, head),
            None => true,
        }
    }
}

impl<M: StateMachine> ModuleExec for Fsm<M> {
    fn type_name(&self) -> &'static str {
        self.machine.type_name()
    }

    fn state(&self) -> StateId {
        self.state
    }

    fn num_ips(&self) -> usize {
        self.machine.num_ips()
    }

    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        self.machine.on_init(ctx);
        if let Some(s) = ctx.take_next_state() {
            self.state = s;
        }
    }

    fn select(
        &self,
        ips: &[IpState],
        now: SimTime,
        entered: SimTime,
        dispatch: Dispatch,
    ) -> Option<Selected> {
        match dispatch {
            Dispatch::HardCoded => {
                for (pos, t) in self.order.iter().enumerate() {
                    if !t.matches_state(self.state) {
                        continue;
                    }
                    if self.enabled(t, ips, now, entered) {
                        return Some(Selected {
                            index: pos as u16,
                            needs_input: t.when,
                            scanned: pos as u32 + 1,
                        });
                    }
                }
                None
            }
            Dispatch::TableDriven => {
                let row = self.by_state.get(self.state.0 as usize)?;
                for (pos, &i) in row.iter().enumerate() {
                    let t = &self.order[i as usize];
                    if self.enabled(t, ips, now, entered) {
                        return Some(Selected {
                            index: i,
                            needs_input: t.when,
                            scanned: pos as u32 + 1,
                        });
                    }
                }
                None
            }
        }
    }

    fn fire(
        &mut self,
        sel: Selected,
        input: Option<Box<dyn Interaction>>,
        ctx: &mut Ctx<'_>,
    ) -> FiredInfo {
        let t = &self.order[sel.index as usize];
        let name = t.name;
        let to = t.to;
        let cost = t.cost;
        let action = t.action;
        let from_state = self.state;
        action(&mut self.machine, ctx, input);
        let to_state = ctx.take_next_state().or(to).unwrap_or(from_state);
        self.state = to_state;
        FiredInfo {
            transition: name,
            from_state,
            to_state,
            cost,
        }
    }

    fn transition_info(&self) -> Vec<TransitionInfo> {
        self.order
            .iter()
            .map(|t| TransitionInfo {
                name: t.name,
                from: t.from,
                to: t.to,
                priority: t.priority,
                when: t.when,
                delay: t.delay,
                guarded: t.provided.is_some(),
            })
            .collect()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn next_deadline(&self, ips: &[IpState], entered: SimTime) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for t in &self.order {
            let Some(d) = t.delay else { continue };
            if !t.matches_state(self.state) {
                continue;
            }
            // Evaluate the non-temporal clauses as of "now"; if they
            // hold, the transition fires once the delay elapses.
            let head = match t.when {
                Some(ip) => match ips.get(ip.0 as usize).and_then(|q| q.head()) {
                    Some(m) => Some(m),
                    None => continue,
                },
                None => None,
            };
            if let Some(g) = t.provided {
                if !g(&self.machine, head) {
                    continue;
                }
            }
            let at = entered + d;
            best = Some(match best {
                Some(b) => b.min(at),
                None => at,
            });
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;
    use crate::impl_interaction;

    const S0: StateId = StateId(0);
    const S1: StateId = StateId(1);

    #[derive(Debug)]
    struct Tick(#[allow(dead_code)] u32);
    impl_interaction!(Tick);

    #[derive(Debug, Default)]
    struct Toggler {
        fires: u32,
        gate_open: bool,
    }

    impl StateMachine for Toggler {
        fn num_ips(&self) -> usize {
            1
        }
        fn initial_state(&self) -> StateId {
            S0
        }
        fn transitions() -> Vec<Transition<Self>> {
            vec![
                Transition::on("consume", S0, IpIndex(0), |m: &mut Self, _ctx, msg| {
                    assert!(msg.unwrap().is::<Tick>());
                    m.fires += 1;
                })
                .to(S1),
                Transition::spontaneous("back", S1, |m: &mut Self, _ctx, _| {
                    m.fires += 1;
                })
                .to(S0),
                Transition::spontaneous("guarded", S0, |m: &mut Self, _ctx, _| {
                    m.fires += 100;
                })
                .provided(|m, _| m.gate_open)
                .priority(0),
            ]
        }
    }

    fn test_ctx(effects_sink: &mut Vec<crate::ctx::Effect>) -> Ctx<'_> {
        Ctx::for_test(effects_sink)
    }

    #[test]
    fn when_clause_requires_message() {
        let fsm = Fsm::new(Toggler::default());
        let ips = vec![IpState::default()];
        assert!(fsm
            .select(&ips, SimTime::ZERO, SimTime::ZERO, Dispatch::TableDriven)
            .is_none());
        let mut ips = ips;
        ips[0].queue.push_back(QueuedMsg {
            msg: Box::new(Tick(1)),
            provenance: None,
            enqueued_at: SimTime::ZERO,
        });
        let sel = fsm
            .select(&ips, SimTime::ZERO, SimTime::ZERO, Dispatch::TableDriven)
            .expect("enabled by message");
        assert_eq!(sel.needs_input, Some(IpIndex(0)));
    }

    #[test]
    fn priority_and_guard_interact() {
        let mut fsm = Fsm::new(Toggler::default());
        let mut ips = vec![IpState::default()];
        ips[0].queue.push_back(QueuedMsg {
            msg: Box::new(Tick(1)),
            provenance: None,
            enqueued_at: SimTime::ZERO,
        });
        // Gate closed: the high-priority guarded transition is not
        // enabled, so "consume" fires.
        let sel = fsm
            .select(&ips, SimTime::ZERO, SimTime::ZERO, Dispatch::HardCoded)
            .unwrap();
        let mut sink = Vec::new();
        let mut ctx = test_ctx(&mut sink);
        let msg = ips[0].queue.pop_front().map(|q| q.msg);
        let info = fsm.fire(sel, msg, &mut ctx);
        assert_eq!(info.transition, "consume");
        assert_eq!(info.to_state, S1);
        // Open the gate, return to S0: guarded wins by priority.
        fsm.machine_mut().gate_open = true;
        fsm.state = S0;
        ips[0].queue.push_back(QueuedMsg {
            msg: Box::new(Tick(2)),
            provenance: None,
            enqueued_at: SimTime::ZERO,
        });
        let sel = fsm
            .select(&ips, SimTime::ZERO, SimTime::ZERO, Dispatch::HardCoded)
            .unwrap();
        let t = &fsm.order[sel.index as usize];
        assert_eq!(t.name, "guarded");
    }

    #[test]
    fn both_dispatch_strategies_agree() {
        let fsm = Fsm::new(Toggler::default());
        let mut ips = vec![IpState::default()];
        ips[0].queue.push_back(QueuedMsg {
            msg: Box::new(Tick(1)),
            provenance: None,
            enqueued_at: SimTime::ZERO,
        });
        let a = fsm.select(&ips, SimTime::ZERO, SimTime::ZERO, Dispatch::HardCoded);
        let b = fsm.select(&ips, SimTime::ZERO, SimTime::ZERO, Dispatch::TableDriven);
        assert_eq!(a.map(|s| s.index), b.map(|s| s.index));
    }

    #[test]
    fn table_driven_scans_fewer() {
        #[derive(Debug, Default)]
        struct Wide;
        impl StateMachine for Wide {
            fn num_ips(&self) -> usize {
                0
            }
            fn initial_state(&self) -> StateId {
                StateId(7)
            }
            fn transitions() -> Vec<Transition<Self>> {
                // 8 states, one spontaneous transition each; current
                // state is 7, so hard-coded scans all 8, table-driven 1.
                (0..8u16)
                    .map(|s| {
                        Transition::spontaneous("t", StateId(s), |_m, _c, _i| {})
                            .to(StateId((s + 1) % 8))
                    })
                    .collect()
            }
        }
        let fsm = Fsm::new(Wide);
        let hc = fsm
            .select(&[], SimTime::ZERO, SimTime::ZERO, Dispatch::HardCoded)
            .unwrap();
        let td = fsm
            .select(&[], SimTime::ZERO, SimTime::ZERO, Dispatch::TableDriven)
            .unwrap();
        assert_eq!(hc.index, td.index);
        assert_eq!(hc.scanned, 8);
        assert_eq!(td.scanned, 1);
    }

    #[test]
    fn delay_clause_gates_enabling_and_reports_deadline() {
        #[derive(Debug, Default)]
        struct Timer;
        impl StateMachine for Timer {
            fn num_ips(&self) -> usize {
                0
            }
            fn initial_state(&self) -> StateId {
                S0
            }
            fn transitions() -> Vec<Transition<Self>> {
                vec![Transition::spontaneous("fire", S0, |_m, _c, _i| {})
                    .delay(SimDuration::from_millis(10))
                    .to(S1)]
            }
        }
        let fsm = Fsm::new(Timer);
        let entered = SimTime::from_millis(100);
        assert!(fsm
            .select(
                &[],
                SimTime::from_millis(105),
                entered,
                Dispatch::TableDriven
            )
            .is_none());
        assert!(fsm
            .select(
                &[],
                SimTime::from_millis(110),
                entered,
                Dispatch::TableDriven
            )
            .is_some());
        assert_eq!(
            fsm.next_deadline(&[], entered),
            Some(SimTime::from_millis(110))
        );
    }

    #[test]
    fn any_state_transitions_fire_everywhere() {
        #[derive(Debug, Default)]
        struct Abortable {
            aborted: bool,
        }
        impl StateMachine for Abortable {
            fn num_ips(&self) -> usize {
                1
            }
            fn initial_state(&self) -> StateId {
                S1
            }
            fn transitions() -> Vec<Transition<Self>> {
                vec![
                    Transition::on("abort", S0, IpIndex(0), |m: &mut Self, _c, _i| {
                        m.aborted = true;
                    })
                    .any_state()
                    .to(S0),
                ]
            }
        }
        let mut fsm = Fsm::new(Abortable::default());
        let mut ips = vec![IpState::default()];
        ips[0].queue.push_back(QueuedMsg {
            msg: Box::new(Tick(0)),
            provenance: None,
            enqueued_at: SimTime::ZERO,
        });
        let sel = fsm
            .select(&ips, SimTime::ZERO, SimTime::ZERO, Dispatch::TableDriven)
            .expect("any-state transition enabled in S1");
        let mut sink = Vec::new();
        let mut ctx = test_ctx(&mut sink);
        let msg = ips[0].queue.pop_front().map(|q| q.msg);
        let info = fsm.fire(sel, msg, &mut ctx);
        assert_eq!(info.from_state, S1);
        assert_eq!(info.to_state, S0);
        assert!(fsm.machine().aborted);
    }
}
