//! External-body utility modules.
//!
//! The paper's specification declares some module bodies `external`
//! (ISODE interface, X application) and fills them with hand-written
//! code (§4.3). The most common external body — bridging an Estelle
//! interaction point to a byte-oriented transport medium — is provided
//! here as [`MediumModule`].

use crate::ids::{IpIndex, StateId};
use crate::impl_interaction;
use crate::machine::{StateMachine, Transition};
use netsim::{Medium, SimDuration};

/// Raw bytes crossing the boundary between a specification and a
/// transport medium.
#[derive(Debug)]
pub struct WireData(pub Vec<u8>);
impl_interaction!(WireData);

/// The single interaction point of a [`MediumModule`].
pub const MEDIUM_IP: IpIndex = IpIndex(0);

/// An external-body module that forwards [`WireData`] interactions to a
/// [`Medium`] and polls the medium for inbound traffic.
///
/// Structure of its body is exactly the §4.3 loop:
///
/// ```text
/// while true do
///   if (IP.message)    then send on medium
///   if (medium.message) then output IP.message
/// end
/// ```
#[derive(Debug)]
pub struct MediumModule {
    medium: Box<dyn Medium>,
    /// Bytes forwarded from the specification to the medium.
    pub bytes_out: u64,
    /// Bytes delivered from the medium into the specification.
    pub bytes_in: u64,
}

impl MediumModule {
    /// Wraps `medium`.
    pub fn new(medium: Box<dyn Medium>) -> Self {
        MediumModule {
            medium,
            bytes_out: 0,
            bytes_in: 0,
        }
    }
}

const RUN: StateId = StateId(0);

impl StateMachine for MediumModule {
    fn num_ips(&self) -> usize {
        1
    }

    fn initial_state(&self) -> StateId {
        RUN
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on("to-medium", RUN, MEDIUM_IP, |m: &mut Self, _ctx, msg| {
                let data = crate::interaction::downcast::<WireData>(msg.expect("when clause"))
                    .expect("medium modules carry WireData only");
                m.bytes_out += data.0.len() as u64;
                m.medium.send(data.0);
            })
            .cost(SimDuration::from_micros(20)),
            Transition::spontaneous("from-medium", RUN, |m: &mut Self, ctx, _| {
                if let Some(data) = m.medium.poll() {
                    m.bytes_in += data.len() as u64;
                    ctx.output(MEDIUM_IP, WireData(data));
                }
            })
            .provided(|m, _| m.medium.available() > 0)
            .cost(SimDuration::from_micros(20)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;
    use crate::ids::{ModuleKind, ModuleLabels};
    use crate::runtime::Runtime;
    use crate::sched::{run_sequential, SeqOptions};
    use netsim::LoopbackMedium;

    #[derive(Debug, Default)]
    struct EchoUser {
        got: Vec<Vec<u8>>,
    }
    impl StateMachine for EchoUser {
        fn num_ips(&self) -> usize {
            1
        }
        fn initial_state(&self) -> StateId {
            RUN
        }
        fn on_init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.output(IpIndex(0), WireData(b"hello".to_vec()));
        }
        fn transitions() -> Vec<Transition<Self>> {
            vec![Transition::on(
                "recv",
                RUN,
                IpIndex(0),
                |m: &mut Self, _ctx, msg| {
                    let d = crate::interaction::downcast::<WireData>(msg.unwrap()).unwrap();
                    m.got.push(d.0);
                },
            )]
        }
    }

    #[test]
    fn medium_module_bridges_both_directions() {
        let (ma, mb) = LoopbackMedium::pair();
        let (rt, _c) = Runtime::sim();
        let user = rt
            .add_module(
                None,
                "user",
                ModuleKind::SystemProcess,
                ModuleLabels::default(),
                EchoUser::default(),
            )
            .unwrap();
        let sys = rt
            .add_module(
                None,
                "wire",
                ModuleKind::SystemProcess,
                ModuleLabels::default(),
                MediumModule::new(Box::new(ma)),
            )
            .unwrap();
        rt.connect(
            crate::ctx::ip(user, IpIndex(0)),
            crate::ctx::ip(sys, MEDIUM_IP),
        )
        .unwrap();
        rt.start().unwrap();
        run_sequential(&rt, &SeqOptions::default());
        // The user's init message crossed onto the medium.
        assert_eq!(mb.poll().unwrap(), b"hello");
        // Push something back and run again.
        mb.send(b"world".to_vec());
        run_sequential(&rt, &SeqOptions::default());
        let got = rt
            .with_machine::<EchoUser, _>(user, |u| u.got.clone())
            .unwrap();
        assert_eq!(got, vec![b"world".to_vec()]);
        assert!(
            rt.with_machine::<MediumModule, _>(sys, |m| m.bytes_out)
                .unwrap()
                == 5
        );
    }
}
