//! Degraded-mode operation, end to end: a spindle dies under a
//! running stream and a paced, admission-charged rebuild streams the
//! lost blocks back; a whole server crashes mid-stream and capable
//! clients fail over to a live replica, resuming near the last played
//! frame; the crash of a sole holder with saturated survivors yields
//! a clean `ErrorRsp 503`; and the event journal's hash chain stays
//! verifiable across every fault lifecycle.

use directory::MovieEntry;
use mcam::agents::source_for_entry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, NetAddr, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn quiet_link() -> LinkConfig {
    LinkConfig::lossy(
        SimDuration::from_millis(2),
        SimDuration::from_micros(500),
        0.0,
    )
}

fn associate(world: &World, client: &mcam::ClientHandle, user: &str) {
    let rsp = world.client_op(client, McamOp::Associate { user: user.into() });
    assert_eq!(
        rsp,
        Some(McamPdu::AssociateRsp { accepted: true }),
        "{user}"
    );
}

fn select_params(world: &World, client: &mcam::ClientHandle, title: &str) -> mcam::StreamParams {
    match world.client_op(
        client,
        McamOp::SelectMovie {
            title: title.into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("select {title} failed: {other:?}"),
    }
}

/// Drives the world in one-second slices until the server's rebuild
/// completes, asserting after every slice that the admission
/// controller was never over-committed (the rebuild's reservation is
/// charged against the same capacity playback draws on).
fn run_rebuild_to_completion(world: &World, server: &mcam::ServerHandle, max_secs: u32) {
    for _ in 0..max_secs {
        world.run_for(SimDuration::from_secs(1));
        let stats = server.services.store.stats();
        assert!(
            stats.committed_bps <= stats.capacity_bps,
            "admission over-commit during rebuild: {} of {} bps",
            stats.committed_bps,
            stats.capacity_bps,
        );
        if !server.services.store.rebuild_active() {
            return;
        }
    }
    panic!("rebuild still active after {max_secs}s");
}

/// A spindle dies under a running stream: the viewer stalls at the
/// lost blocks, the paced rebuild reconstructs them onto the
/// survivors, the viewer plays to completion, and the rebuild's
/// admission reservation is released — with the whole lifecycle
/// journaled under an intact hash chain.
#[test]
fn spindle_death_rebuilds_under_foreground_load() {
    let mut world = World::builder(101).stream_link(quiet_link()).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &client, "viewer");
    world.client_op(
        &client,
        McamOp::CreateMovie {
            title: "Fragile".into(),
            format: "XMovie-24".into(),
            frame_rate: 25,
            frame_count: 400,
        },
    );
    let params = select_params(&world, &client, "Fragile");
    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(50));
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(1));

    // The spindle dies mid-flight; reconstruction is admitted at half
    // the surviving uncommitted bandwidth.
    let capacity_before = server.services.store.stats().capacity_bps;
    let (lost, reserve_bps) = world.fail_disk(&server, 0);
    assert!(lost > 0, "the dead arm held blocks of the stream");
    assert!(reserve_bps > 0, "the rebuild reservation was admitted");
    assert!(server.services.store.rebuild_active());
    assert!(
        server.services.store.stats().capacity_bps < capacity_before,
        "capacity shrank to the survivors' share"
    );
    assert_eq!(server.services.store.failed_disks(), vec![0]);

    run_rebuild_to_completion(&world, &server, 30);
    assert_eq!(
        server.services.store.lost_blocks_pending(),
        0,
        "every lost block reconstructed"
    );

    // The viewer survived the spindle: the full movie arrives.
    world.run_for(SimDuration::from_secs(20));
    assert_eq!(
        receiver.poll(world.net.now()).len(),
        400,
        "playback completed across the disk death"
    );

    // Closing the stream releases all admission: nothing leaks from
    // the fault path.
    world.client_op(&client, McamOp::Deselect);
    assert_eq!(
        server.services.store.stats().committed_bps,
        0,
        "stream and rebuild reservations both released"
    );

    let journal = world.journal();
    journal
        .verify()
        .expect("hash chain intact across the fault");
    assert_eq!(journal.count(journal::kind::DISK_FAILED), 1);
    assert_eq!(journal.count(journal::kind::REBUILD_STARTED), 1);
    assert_eq!(journal.count(journal::kind::REBUILD_COMPLETED), 1);
}

/// A server crash mid-stream: the client's control association and
/// its stream both die with the machine; the referral-capable client
/// fails over to a cached candidate, replays its session (select,
/// seek, play), and resumes within a bounded distance of the last
/// played frame — journaled as `StreamFailedOver`.
#[test]
fn server_crash_fails_the_stream_over_to_a_replica() {
    let mut world = World::builder(103).stream_link(quiet_link()).build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let a = cluster.servers[0].services.sps.location();
    let b = cluster.servers[1].services.sps.location();
    let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();

    // Steer the client onto server B so it holds a cached candidate
    // list (the failover's fallback) naming A.
    cluster.control.pin(&a, &b);
    associate(&world, &client, "viewer");
    cluster.control.unpin(&a);
    assert_eq!(world.client_control_location(&client), b);

    let mut entry = MovieEntry::new("Feature", "pending");
    entry.frame_count = 1_000;
    let replicas = world.publish_replicated(&cluster, &entry);
    assert_eq!(replicas.len(), 2, "K=2 of 2: both servers hold it");

    // A filler viewer makes A the busier replica, so the client's
    // stream lands on B — the same machine that will crash.
    let provider_a = cluster.peers.get(&a).expect("A registered");
    provider_a
        .open(source_for_entry(&entry), NetAddr(900), world.net.now())
        .expect("filler admitted");
    let params = select_params(&world, &client, "Feature");
    assert_eq!(format!("node-{}", params.provider_addr), b);
    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(50));
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(2));
    let played_before_crash = receiver.poll(world.net.now()).len() as u64;
    assert!(played_before_crash > 0, "the stream was mid-flight");

    // The machine dies. The client sees a provider abort, re-dials a
    // cached candidate, and replays select + seek + play there.
    let replies_before = world.replies(&client).len();
    let killed = world.crash_server(&cluster.servers[1]);
    assert!(killed >= 1, "the crash took the client's stream with it");
    world.run_for(SimDuration::from_secs(2));

    assert_eq!(
        world.client_control_location(&client),
        a,
        "the control association failed over to the survivor"
    );
    let replies = world.replies(&client);
    assert_eq!(
        replies.len(),
        replies_before + 1,
        "the replay surfaced exactly one confirmation"
    );
    assert_eq!(
        replies.last(),
        Some(&McamPdu::PlayRsp { ok: true }),
        "the session is playing again"
    );
    assert_eq!(
        cluster.servers[0].services.sps.stream_count(),
        2,
        "filler plus the failed-over stream run on the survivor"
    );

    // The resume point is within a playout-delay's worth of frames of
    // what the client had actually seen.
    let journal = world.journal();
    assert_eq!(journal.count(journal::kind::SERVER_CRASHED), 1);
    assert_eq!(journal.count(journal::kind::STREAM_FAILED_OVER), 1);
    let (from, to, resume_frame) = journal
        .events()
        .into_iter()
        .find_map(|e| match e.kind {
            journal::EventKind::StreamFailedOver {
                from,
                to,
                resume_frame,
                ..
            } => Some((from, to, resume_frame)),
            _ => None,
        })
        .expect("failover journaled");
    assert_eq!(from, b);
    assert_eq!(to, a);
    let distance = resume_frame.abs_diff(played_before_crash);
    assert!(
        distance <= 30,
        "resume frame {resume_frame} is {distance} frames from the \
         {played_before_crash} the viewer had played"
    );
    journal
        .verify()
        .expect("hash chain intact across the crash");
}

/// Crashing the sole holder of a title while every survivor is
/// saturated is answered with a clean `ErrorRsp 503` — degraded, not
/// broken.
#[test]
fn sole_holder_crash_yields_503_not_a_panic() {
    let store = StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    };
    let mut world = World::builder(107)
        .stream_link(quiet_link())
        .store(store)
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let clients: Vec<_> = (0..2)
        .map(|i| world.add_client(&cluster.servers[i], StackKind::EstellePS, vec![]))
        .collect();
    world.start();

    let mut entry = MovieEntry::new("Single", "pending");
    entry.frame_count = 5_000;
    let replicas = world.publish_replicated(&cluster, &entry);
    assert_eq!(replicas.len(), 1, "K=1: a sole holder");
    let holder = cluster
        .servers
        .iter()
        .position(|s| s.services.sps.location() == replicas[0])
        .expect("holder is a member");
    let survivor = 1 - holder;
    let viewer = &clients[survivor];
    associate(&world, viewer, "viewer");

    // Saturate the survivor's store with two full-rate streams.
    let survivor_sps = &cluster.servers[survivor].services.sps;
    for i in 0..2u32 {
        let mut filler = MovieEntry::new(format!("Filler-{i}"), "pending");
        filler.frame_count = 5_000;
        survivor_sps
            .open(source_for_entry(&filler), NetAddr(910 + i), world.net.now())
            .expect("filler admitted");
    }

    world.crash_server(&cluster.servers[holder]);

    // The survivor routes around the dead holder but has no bandwidth
    // left: a clean admission error, not a panic or a hang.
    let rsp = world.client_op(
        viewer,
        McamOp::SelectMovie {
            title: "Single".into(),
        },
    );
    match rsp {
        Some(McamPdu::ErrorRsp { code, message }) => {
            assert_eq!(code, 503, "{message}");
        }
        other => panic!("expected a clean 503: {other:?}"),
    }
    assert_eq!(world.journal().count(journal::kind::SERVER_CRASHED), 1);
    world.journal().verify().expect("chain intact");
}

/// The full gauntlet in one world: a disk death plus rebuild on the
/// streaming server, then a crash of that same machine with a
/// failover to the surviving replica — and the journal's per-actor
/// hash chains verify across all of it, in memory and through a JSONL
/// round trip. The rebalance controller re-replicates the title the
/// crash left under-replicated.
#[test]
fn journal_chain_verifies_across_every_fault_lifecycle() {
    let mut world = World::builder(109).stream_link(quiet_link()).build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        3,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let a = cluster.servers[0].services.sps.location();
    let b = cluster.servers[1].services.sps.location();
    let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();

    cluster.control.pin(&a, &b);
    associate(&world, &client, "viewer");
    cluster.control.unpin(&a);
    assert_eq!(world.client_control_location(&client), b);

    // Make every other member busier than B so both the placement and
    // the routing prefer B: the stream lands on the machine that will
    // lose a disk and then crash.
    for (i, server) in cluster.servers.iter().enumerate() {
        if server.services.sps.location() != b {
            let mut filler = MovieEntry::new(format!("Busy-{i}"), "pending");
            filler.frame_count = 2_000;
            server
                .services
                .sps
                .open(
                    source_for_entry(&filler),
                    NetAddr(920 + i as u32),
                    world.net.now(),
                )
                .expect("filler admitted");
        }
    }
    let mut entry = MovieEntry::new("Epic", "pending");
    entry.frame_count = 1_000;
    let replicas = world.publish_replicated(&cluster, &entry);
    assert!(replicas.contains(&b), "placement chose the idle B");

    let params = select_params(&world, &client, "Epic");
    assert_eq!(format!("node-{}", params.provider_addr), b);
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(1));

    // Fault 1: a spindle dies on the streaming server; the rebuild
    // runs to completion under the live stream.
    let server_b = cluster
        .servers
        .iter()
        .find(|s| s.services.sps.location() == b)
        .expect("B is a member");
    let (lost, reserve_bps) = world.fail_disk(server_b, 0);
    assert!(lost > 0 && reserve_bps > 0);
    run_rebuild_to_completion(&world, server_b, 30);

    // Fault 2: the same machine crashes outright; the client fails
    // over and the title is re-replicated onto a survivor.
    world.crash_server(server_b);
    world.run_for(SimDuration::from_secs(30));
    assert_ne!(world.client_control_location(&client), b);
    let journal = world.journal();
    assert_eq!(journal.count(journal::kind::STREAM_FAILED_OVER), 1);
    let alive_holders = cluster
        .rebalancer
        .replicas_of("Epic")
        .expect("Epic is tracked");
    assert!(
        alive_holders.iter().filter(|l| **l != b).count() >= 2,
        "repair restored K=2 live copies: {alive_holders:?}"
    );

    // Every fault kind appears once, and the chains verify — live and
    // through the serialized round trip.
    assert_eq!(journal.count(journal::kind::DISK_FAILED), 1);
    assert_eq!(journal.count(journal::kind::REBUILD_STARTED), 1);
    assert_eq!(journal.count(journal::kind::REBUILD_COMPLETED), 1);
    assert_eq!(journal.count(journal::kind::SERVER_CRASHED), 1);
    journal.verify().expect("live chain verifies");
    let events = journal::events_from_jsonl(&journal.to_jsonl()).expect("round trip parses");
    journal::verify_events(&events).expect("serialized chain verifies");
}
