//! Property tests: MCAM PDU roundtrip and decoder robustness.

use asn1::Value;
use mcam::{McamPdu, MovieDesc, StreamParams};
use proptest::prelude::*;

fn attr_strategy() -> impl Strategy<Value = (String, Value)> {
    (
        "[a-z]{1,12}",
        prop_oneof![
            any::<i64>().prop_map(Value::Int),
            "[a-zA-Z0-9 ]{0,20}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ],
    )
}

fn pdu_strategy() -> impl Strategy<Value = McamPdu> {
    let title = "[a-zA-Z0-9 _-]{1,24}";
    prop_oneof![
        ("[a-z]{1,12}", any::<bool>()).prop_map(|(user, referral_capable)| {
            McamPdu::AssociateReq {
                user,
                referral_capable,
            }
        }),
        (
            "node-[0-9]{1,3}",
            proptest::collection::vec(("node-[0-9]{1,3}", 0u64..(1 << 62)), 0..5)
        )
            .prop_map(|(target, candidates)| McamPdu::ReferralRsp { target, candidates }),
        any::<bool>().prop_map(|accepted| McamPdu::AssociateRsp { accepted }),
        Just(McamPdu::ReleaseReq),
        Just(McamPdu::ReleaseRsp),
        (title, "[A-Za-z0-9-]{1,12}", 1u32..120, 0u64..1_000_000).prop_map(
            |(title, format, frame_rate, frame_count)| McamPdu::CreateMovieReq {
                title,
                format,
                frame_rate,
                frame_count
            }
        ),
        (title, any::<u32>())
            .prop_map(|(title, client_addr)| McamPdu::SelectMovieReq { title, client_addr }),
        proptest::option::of((any::<u32>(), any::<u32>(), title, 1u32..120, 0u64..100_000))
            .prop_map(|opt| McamPdu::SelectMovieRsp {
                params: opt.map(|(provider_addr, stream_id, t, frame_rate, frame_count)| {
                    StreamParams {
                        provider_addr,
                        stream_id,
                        movie: MovieDesc {
                            title: t,
                            format: "XMovie-24".into(),
                            frame_rate,
                            frame_count,
                        },
                    }
                })
            }),
        proptest::collection::vec(title.prop_map(String::from), 0..6)
            .prop_map(|titles| McamPdu::ListMoviesRsp { titles }),
        (title, proptest::collection::vec(attr_strategy(), 0..5))
            .prop_map(|(title, puts)| McamPdu::ModifyAttrsReq { title, puts }),
        proptest::option::of(proptest::collection::vec(attr_strategy(), 0..5))
            .prop_map(|attrs| McamPdu::QueryAttrsRsp { attrs }),
        (1u32..1000).prop_map(|speed_pct| McamPdu::PlayReq { speed_pct }),
        (0u64..(1 << 62)).prop_map(|frame| McamPdu::SeekReq { frame }),
        (any::<u32>(), "[ -~]{0,40}")
            .prop_map(|(code, message)| McamPdu::ErrorRsp { code, message }),
    ]
}

proptest! {
    #[test]
    fn mcam_pdus_roundtrip(pdu in pdu_strategy()) {
        let enc = pdu.encode();
        prop_assert_eq!(McamPdu::decode(&enc).unwrap(), pdu);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = McamPdu::decode(&bytes);
    }

    #[test]
    fn truncation_never_panics(pdu in pdu_strategy(), cut in 0usize..64) {
        let enc = pdu.encode();
        let cut = cut.min(enc.len());
        let _ = McamPdu::decode(&enc[..enc.len() - cut]);
    }
}
