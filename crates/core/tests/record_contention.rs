//! Recording is a real workload: it reserves write bandwidth on the
//! same disks playback reads from, so a record in progress steals
//! admission capacity from `SelectMovie` (503 when every replica is
//! saturated), releases it on completion, and leaves behind a movie
//! that is replicated and playable from every replica.

use directory::MovieEntry;
use mcam::agents::source_for_entry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

/// One slow disk per server: ~1.0 Mbit/s of admissible bandwidth
/// fits a single ~0.69 Mbit/s nominal-rate stream, not two.
fn tight_store() -> StoreConfig {
    StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 150_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    }
}

fn quiet_link() -> LinkConfig {
    LinkConfig::lossy(
        SimDuration::from_millis(2),
        SimDuration::from_micros(500),
        0.0,
    )
}

fn associate(world: &World, client: &mcam::ClientHandle, user: &str) {
    let rsp = world.client_op(client, McamOp::Associate { user: user.into() });
    assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
}

/// Waits until the client's reply log contains a RecordRsp/ErrorRsp
/// for an earlier pushed Record op, returning it.
fn await_record_reply(world: &World, client: &mcam::ClientHandle, limit_secs: u64) -> McamPdu {
    for _ in 0..limit_secs {
        world.run_for(SimDuration::from_secs(1));
        if let Some(pdu) = world.replies(client).iter().rev().find(|p| {
            matches!(p, McamPdu::RecordRsp { .. }) || matches!(p, McamPdu::ErrorRsp { .. })
        }) {
            return pdu.clone();
        }
    }
    panic!(
        "no record reply within {limit_secs}s: {:?}",
        world.replies(client)
    );
}

#[test]
fn record_steals_bandwidth_and_releases_it() {
    let mut world = World::builder(11)
        .stream_link(quiet_link())
        .store(tight_store())
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let recorder = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    let viewer1 = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    let viewer2 = world.add_client(&cluster.servers[1], StackKind::EstellePS, vec![]);
    world.start();

    let mut entry = MovieEntry::new("Hit", "pending");
    entry.frame_count = 60 * 25;
    let replicas = world.publish_replicated(&cluster, &entry);
    assert_eq!(replicas.len(), 2, "K=2 over a 2-server cluster");

    associate(&world, &recorder, "rec");
    associate(&world, &viewer1, "v1");
    associate(&world, &viewer2, "v2");

    // Kick off a 20-second recording on server 0 and let it get
    // admitted (the capture itself runs for 20 simulated seconds).
    world.push_op(
        &recorder,
        McamOp::Record {
            title: "Fresh".into(),
            frames: 20 * 25,
        },
    );
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(cluster.recordings(), 1, "recording session admitted");
    let committed_during: u64 = cluster.bandwidth().0;
    assert!(committed_during > 0, "recording commits write bandwidth");

    // The first viewer still fits: routing steers the stream to the
    // server the recording is not loading.
    let rsp = world.client_op(
        &viewer1,
        McamOp::SelectMovie {
            title: "Hit".into(),
        },
    );
    let params = match rsp {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("first viewer must be admitted: {other:?}"),
    };
    assert_ne!(
        params.provider_addr,
        cluster.servers[0].services.sps.addr().0,
        "the viewer is routed away from the recording server"
    );

    // The second viewer finds every replica saturated: the recorder
    // holds server 0, the first viewer holds server 1.
    match world.client_op(
        &viewer2,
        McamOp::SelectMovie {
            title: "Hit".into(),
        },
    ) {
        Some(McamPdu::ErrorRsp { code, .. }) => assert_eq!(code, 503),
        other => panic!("expected 503 while the record is active: {other:?}"),
    }

    // Once the recording completes, its bandwidth is released and the
    // refused viewer is re-admitted.
    let reply = await_record_reply(&world, &recorder, 40);
    assert_eq!(reply, McamPdu::RecordRsp { ok: true });
    assert_eq!(cluster.recordings(), 0);
    match world.client_op(
        &viewer2,
        McamOp::SelectMovie {
            title: "Hit".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
        other => panic!("viewer re-admitted after the record: {other:?}"),
    }

    let (frames_recorded, blocks_recorded) = cluster.recorded_totals();
    assert_eq!(frames_recorded, 20 * 25, "every captured frame was stored");
    assert!(blocks_recorded > 0, "frames were packed into blocks");
}

#[test]
fn recording_is_refused_on_a_saturated_server() {
    // Standalone server, capacity for one stream only.
    let mut world = World::builder(12)
        .stream_link(quiet_link())
        .store(tight_store())
        .build();
    let server = world.add_server("solo", StackKind::EstellePS);
    let viewer = world.add_client(&server, StackKind::EstellePS, vec![]);
    let recorder = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();

    let mut entry = MovieEntry::new("Busy", "node-1");
    entry.frame_count = 60 * 25;
    world.seed_movie(&server, &entry);

    associate(&world, &viewer, "v");
    associate(&world, &recorder, "r");

    // The viewer takes the only admission slot…
    match world.client_op(
        &viewer,
        McamOp::SelectMovie {
            title: "Busy".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
        other => panic!("viewer admitted: {other:?}"),
    }
    // …so the recorder is refused with the admission error, and the
    // camera it had acquired is released again.
    match world.client_op(
        &recorder,
        McamOp::Record {
            title: "Overload".into(),
            frames: 250,
        },
    ) {
        Some(McamPdu::ErrorRsp { code, .. }) => assert_eq!(code, 503),
        other => panic!("expected 503 for the recorder: {other:?}"),
    }
    assert_eq!(server.services.sps.recording_count(), 0);
    let cam = equipment::EquipmentClass::Camera;
    let free = server
        .services
        .eua
        .list(&server.services.site, Some(cam))
        .unwrap();
    assert!(!free.is_empty(), "camera released after the rejection");

    // Releasing the viewer clears the path for the recorder.
    world.client_op(&viewer, McamOp::Deselect);
    match world.client_op(
        &recorder,
        McamOp::Record {
            title: "Retry".into(),
            frames: 50,
        },
    ) {
        Some(McamPdu::RecordRsp { ok: true }) => {}
        other => panic!("record fits after the release: {other:?}"),
    }
}

#[test]
fn recorded_movie_is_replicated_and_playable_from_every_replica() {
    // Generous storage: contention is not the point here.
    let mut world = World::builder(13)
        .stream_link(quiet_link())
        .store(StoreConfig::default())
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        3,
        StackKind::EstellePS,
        Placement::least_loaded(2),
    ));
    let recorder = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &recorder, "rec");

    match world.client_op(
        &recorder,
        McamOp::Record {
            title: "Homemade".into(),
            frames: 100,
        },
    ) {
        Some(McamPdu::RecordRsp { ok: true }) => {}
        other => panic!("record failed: {other:?}"),
    }

    // The finalized directory entry carries the measured facts and
    // the replica set.
    let attrs = match world.client_op(
        &recorder,
        McamOp::Query {
            title: "Homemade".into(),
            attrs: vec![],
        },
    ) {
        Some(McamPdu::QueryAttrsRsp { attrs: Some(a) }) => a.into_iter().collect(),
        other => panic!("query failed: {other:?}"),
    };
    let entry = MovieEntry::from_attrs(&attrs).expect("finalized entry decodes");
    assert_eq!(entry.frame_count, 100);
    assert!(entry.bitrate_bps > 0, "bitrate measured at record time");
    assert_eq!(entry.replicas.len(), 2, "recorder + one placed peer");
    assert_eq!(
        entry.replicas[0],
        cluster.servers[0].services.sps.location(),
        "the recorder holds the original"
    );

    // Every replica holds a block-mapped copy and can stream it.
    let source = source_for_entry(&entry);
    for location in &entry.replicas {
        let server = cluster
            .servers
            .iter()
            .find(|s| s.services.sps.location() == *location)
            .expect("replica location names a cluster member");
        let movie = server.services.store.register_movie(&source);
        assert!(
            server.services.store.allocation_of(movie).is_some(),
            "{location} holds allocated recorded blocks"
        );
        let stream = server
            .services
            .sps
            .open(source.clone(), netsim::NetAddr(900), world.net.now())
            .expect("replica admits the playback");
        server
            .services
            .sps
            .play(stream, 100, world.net.now())
            .unwrap();
        world.run_for(SimDuration::from_secs(6));
        assert_eq!(
            server.services.sps.position(stream),
            Some(100),
            "{location} streamed the recorded movie to the end"
        );
        server.services.sps.close(stream).unwrap();
    }
    // Non-replica members hold nothing.
    let copies = cluster
        .servers
        .iter()
        .filter(|s| {
            let movie = s.services.store.register_movie(&source);
            s.services.store.allocation_of(movie).is_some()
        })
        .count();
    assert_eq!(copies, 2, "exactly K copies exist in the cluster");
}
