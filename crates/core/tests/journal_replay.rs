//! Deterministic replay of the event journal: the same seed drives
//! the same scenario to the same hash chain, byte for byte, and any
//! tampering with a recorded event breaks chain verification.

use directory::MovieEntry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn store_config() -> StoreConfig {
    StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    }
}

/// A small cluster scenario with routing, admission, playback, and
/// health sampling: 2 servers, 2 viewers, one replicated title, one
/// viewer plays for a second of sim time. Returns the journal JSONL.
fn run_scenario(seed: u64) -> String {
    let mut world = World::builder(seed)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(2),
            SimDuration::from_micros(500),
            0.0,
        ))
        .store(store_config())
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let clients: Vec<_> = (0..2)
        .map(|i| world.add_client(&cluster.servers[i % 2], StackKind::EstellePS, vec![]))
        .collect();
    world.start();
    for (i, c) in clients.iter().enumerate() {
        let rsp = world.client_op(
            c,
            McamOp::Associate {
                user: format!("viewer-{i}"),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }
    let mut entry = MovieEntry::new("Hit", "placeholder");
    entry.frame_count = 60;
    world.publish_replicated(&cluster, &entry);
    for c in &clients {
        match world.client_op(
            c,
            McamOp::SelectMovie {
                title: "Hit".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
            other => panic!("select failed: {other:?}"),
        }
    }
    assert_eq!(
        world.client_op(&clients[0], McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(1));
    let journal = world.journal();
    journal.verify().expect("live chain verifies");
    assert!(
        journal.count(journal::kind::STREAM_ADMIT) >= 2,
        "both selects admit a stream"
    );
    assert!(
        journal.count(journal::kind::ROUTE_DECISION) >= 2,
        "both selects route"
    );
    assert!(
        journal.count(journal::kind::HEALTH_SNAPSHOT) >= 2,
        "a second of playback crosses several health intervals"
    );
    journal.to_jsonl()
}

#[test]
fn same_seed_reproduces_the_chain_bit_for_bit() {
    let first = run_scenario(515);
    let second = run_scenario(515);
    assert_eq!(first, second, "same seed must replay byte-identically");

    // The round trip through JSONL preserves every event and hash.
    let events = journal::events_from_jsonl(&first).expect("parses");
    journal::verify_events(&events).expect("parsed chain verifies");
    let rejoined: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
    assert_eq!(first, rejoined, "serialization round-trips");
}

#[test]
fn replay_check_accepts_faithful_and_pinpoints_unfaithful_replays() {
    let recorded = run_scenario(515);

    // replay_check accepts a faithful re-recording...
    let replay = journal::Journal::standalone();
    for event in journal::events_from_jsonl(&recorded).expect("parses") {
        replay.observe_time(event.sim_time);
        replay.record(&event.server, event.kind);
    }
    journal::replay_check(&recorded, &replay).expect("faithful replay matches");

    // ...and pinpoints the first divergent line of a replay whose
    // driver took a different decision mid-run (here: one routing
    // event lands on a different server, shifting its hash and every
    // later link of that server's chain).
    let events = journal::events_from_jsonl(&recorded).expect("parses");
    let victim = events
        .iter()
        .position(|e| matches!(e.kind, journal::EventKind::RouteDecision { .. }))
        .expect("scenario routes");
    let fresh = journal::Journal::standalone();
    for (i, event) in events.into_iter().enumerate() {
        fresh.observe_time(event.sim_time);
        let kind = if i == victim {
            match event.kind {
                journal::EventKind::RouteDecision {
                    title, candidates, ..
                } => journal::EventKind::RouteDecision {
                    title,
                    target: "node-999".into(),
                    candidates,
                },
                kind => kind,
            }
        } else {
            event.kind
        };
        fresh.record(&event.server, kind);
    }
    let err = journal::replay_check(&recorded, &fresh)
        .expect_err("a diverging replay must not reproduce the chain");
    assert_eq!(err.line, victim, "the first divergent event is named");
}

#[test]
fn tampered_event_breaks_verification() {
    let recorded = run_scenario(515);
    let mut events = journal::events_from_jsonl(&recorded).expect("parses");
    journal::verify_events(&events).expect("untampered chain verifies");

    // Flip one payload field mid-chain without touching the hashes:
    // the recomputed hash no longer matches the recorded one.
    let victim = events
        .iter()
        .position(|e| matches!(e.kind, journal::EventKind::StreamAdmit { .. }))
        .expect("scenario admits streams");
    match &mut events[victim].kind {
        journal::EventKind::StreamAdmit { demanded_bps, .. } => *demanded_bps += 1,
        _ => unreachable!(),
    }
    let err = journal::verify_events(&events).expect_err("tampering must be detected");
    assert_eq!(err.seq, events[victim].seq, "the tampered event is named");

    // Dropping an event breaks the dense sequence as well.
    let mut truncated = journal::events_from_jsonl(&recorded).expect("parses");
    truncated.remove(victim);
    journal::verify_events(&truncated).expect_err("a gap in the chain must be detected");
}
