//! End-to-end MCAM protocol flows over both lower stacks.

use asn1::Value;
use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::{LinkConfig, SimDuration, SimTime};

fn world_with_client(stack: StackKind) -> (World, mcam::ServerHandle, mcam::ClientHandle) {
    let mut world = World::builder(11).build();
    let server = world.add_server("s1", stack);
    let client = world.add_client(&server, stack, vec![]);
    world.start();
    (world, server, client)
}

fn associate(world: &World, client: &mcam::ClientHandle) {
    let rsp = world.client_op(
        client,
        McamOp::Associate {
            user: "tester".into(),
        },
    );
    assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
}

#[test]
fn associate_over_estelle_stack() {
    let (world, _s, client) = world_with_client(StackKind::EstellePS);
    associate(&world, &client);
}

#[test]
fn associate_over_isode_stack() {
    let (world, _s, client) = world_with_client(StackKind::Isode);
    associate(&world, &client);
}

#[test]
fn full_access_management_cycle() {
    let (world, _s, client) = world_with_client(StackKind::EstellePS);
    associate(&world, &client);

    // Create two movies over the wire.
    for title in ["Alien", "Aliens"] {
        let rsp = world.client_op(
            &client,
            McamOp::CreateMovie {
                title: title.into(),
                format: "XMovie-24".into(),
                frame_rate: 25,
                frame_count: 100,
            },
        );
        assert_eq!(rsp, Some(McamPdu::CreateMovieRsp { ok: true }));
    }
    // Duplicate creation fails.
    let rsp = world.client_op(
        &client,
        McamOp::CreateMovie {
            title: "Alien".into(),
            format: "XMovie-24".into(),
            frame_rate: 25,
            frame_count: 100,
        },
    );
    assert_eq!(rsp, Some(McamPdu::CreateMovieRsp { ok: false }));

    // List with substring.
    let rsp = world.client_op(
        &client,
        McamOp::List {
            contains: "alien".into(),
        },
    );
    match rsp {
        Some(McamPdu::ListMoviesRsp { mut titles }) => {
            titles.sort();
            assert_eq!(titles, vec!["Alien".to_string(), "Aliens".to_string()]);
        }
        other => panic!("{other:?}"),
    }

    // Query attributes.
    let rsp = world.client_op(
        &client,
        McamOp::Query {
            title: "Alien".into(),
            attrs: vec!["framerate".into()],
        },
    );
    match rsp {
        Some(McamPdu::QueryAttrsRsp { attrs: Some(attrs) }) => {
            assert_eq!(attrs, vec![("framerate".to_string(), Value::Int(25))]);
        }
        other => panic!("{other:?}"),
    }

    // Modify and re-query.
    let rsp = world.client_op(
        &client,
        McamOp::Modify {
            title: "Alien".into(),
            puts: vec![("framerate".into(), Value::Int(30))],
        },
    );
    assert_eq!(rsp, Some(McamPdu::ModifyAttrsRsp { ok: true }));
    let rsp = world.client_op(
        &client,
        McamOp::Query {
            title: "Alien".into(),
            attrs: vec!["framerate".into()],
        },
    );
    match rsp {
        Some(McamPdu::QueryAttrsRsp { attrs: Some(attrs) }) => {
            assert_eq!(attrs[0].1, Value::Int(30));
        }
        other => panic!("{other:?}"),
    }

    // Query of a missing movie returns None.
    let rsp = world.client_op(
        &client,
        McamOp::Query {
            title: "Ghost".into(),
            attrs: vec![],
        },
    );
    assert_eq!(rsp, Some(McamPdu::QueryAttrsRsp { attrs: None }));

    // Delete and verify.
    let rsp = world.client_op(
        &client,
        McamOp::DeleteMovie {
            title: "Aliens".into(),
        },
    );
    assert_eq!(rsp, Some(McamPdu::DeleteMovieRsp { ok: true }));
    let rsp = world.client_op(
        &client,
        McamOp::List {
            contains: String::new(),
        },
    );
    match rsp {
        Some(McamPdu::ListMoviesRsp { titles }) => assert_eq!(titles, vec!["Alien".to_string()]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn playback_control_cycle_with_stream() {
    let (mut world, server, client) = {
        let mut world = World::builder(23).build();
        let server = world.add_server("s1", StackKind::EstellePS);
        let client = world.add_client(&server, StackKind::EstellePS, vec![]);
        world.start();
        (world, server, client)
    };
    let _ = &mut world;
    associate(&world, &client);
    let mut entry = MovieEntry::new("Brazil", "node-x");
    entry.frame_count = 200; // 8 seconds at 25 fps
    world.seed_movie(&server, &entry);

    let rsp = world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "Brazil".into(),
        },
    );
    let params = match rsp {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    assert_eq!(params.movie.frame_count, 200);
    assert_eq!(params.provider_addr, server.services.sps.addr().0);
    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(50));

    // Play one second, pause, verify stream stops, resume, stop.
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(1));
    let first = receiver.poll(world.net.now()).len();
    assert!(first >= 20, "about a second of frames, got {first}");

    assert_eq!(
        world.client_op(&client, McamOp::Pause),
        Some(McamPdu::PauseRsp)
    );
    let paused_at = world.net.now();
    world.run_for(SimDuration::from_secs(1));
    let during_pause = receiver
        .poll(world.net.now())
        .iter()
        .filter(|f| f.seq > first as u32 + 5)
        .count();
    assert_eq!(
        during_pause, 0,
        "no new frames while paused (after {paused_at})"
    );

    assert_eq!(
        world.client_op(&client, McamOp::Seek { frame: 180 }),
        Some(McamPdu::SeekRsp { ok: true })
    );
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(2));
    let tail = receiver.poll(world.net.now());
    assert!(
        tail.iter().any(|f| f.timestamp_us >= 180 * 40_000),
        "frames from the seek point arrived"
    );
    assert!(receiver.ended, "end-of-stream marker after frame 200");

    assert_eq!(
        world.client_op(&client, McamOp::Deselect),
        Some(McamPdu::DeselectMovieRsp)
    );
    assert_eq!(server.services.sps.stream_count(), 0, "stream closed");
}

#[test]
fn control_before_select_is_rejected() {
    let (world, _s, client) = world_with_client(StackKind::EstellePS);
    associate(&world, &client);
    match world.client_op(&client, McamOp::Play { speed_pct: 100 }) {
        Some(McamPdu::ErrorRsp { code, .. }) => assert_eq!(code, 404),
        other => panic!("{other:?}"),
    }
    match world.client_op(&client, McamOp::Pause) {
        Some(McamPdu::ErrorRsp { code, .. }) => assert_eq!(code, 404),
        other => panic!("{other:?}"),
    }
}

#[test]
fn select_unknown_movie_fails_cleanly() {
    let (world, _s, client) = world_with_client(StackKind::Isode);
    associate(&world, &client);
    let rsp = world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "Nothing".into(),
        },
    );
    assert_eq!(rsp, Some(McamPdu::SelectMovieRsp { params: None }));
}

#[test]
fn record_reserves_camera_and_creates_entry() {
    let (world, server, client) = world_with_client(StackKind::EstellePS);
    associate(&world, &client);
    let rsp = world.client_op(
        &client,
        McamOp::Record {
            title: "Lecture".into(),
            frames: 250,
        },
    );
    assert_eq!(rsp, Some(McamPdu::RecordRsp { ok: true }));
    // The recording is now a listed movie.
    let rsp = world.client_op(
        &client,
        McamOp::List {
            contains: "lect".into(),
        },
    );
    match rsp {
        Some(McamPdu::ListMoviesRsp { titles }) => assert_eq!(titles, vec!["Lecture".to_string()]),
        other => panic!("{other:?}"),
    }
    // The camera was released again after the recording.
    let cams = server
        .services
        .eua
        .list(
            &server.services.site,
            Some(equipment::EquipmentClass::Camera),
        )
        .unwrap();
    assert!(cams.iter().all(|c| c.state == equipment::DeviceState::Free));
}

#[test]
fn release_cycle_allows_no_further_requests() {
    let (world, _s, client) = world_with_client(StackKind::EstellePS);
    associate(&world, &client);
    assert_eq!(
        world.client_op(&client, McamOp::Release),
        Some(McamPdu::ReleaseRsp)
    );
    // The association is gone: further requests fail locally.
    match world.client_op(&client, McamOp::Pause) {
        Some(McamPdu::ErrorRsp { code, .. }) => assert_eq!(code, 901),
        other => panic!("{other:?}"),
    }
}

#[test]
fn two_clients_share_one_server_machine() {
    let mut world = World::builder(31).build();
    let server = world.add_server("s1", StackKind::EstellePS);
    let c1 = world.add_client(&server, StackKind::EstellePS, vec![]);
    let c2 = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &c1);
    associate(&world, &c2);
    // Client 1 creates; client 2 sees it (shared movie database,
    // Fig. 2).
    let rsp = world.client_op(
        &c1,
        McamOp::CreateMovie {
            title: "Shared".into(),
            format: "XMovie-24".into(),
            frame_rate: 25,
            frame_count: 100,
        },
    );
    assert_eq!(rsp, Some(McamPdu::CreateMovieRsp { ok: true }));
    let rsp = world.client_op(
        &c2,
        McamOp::List {
            contains: String::new(),
        },
    );
    match rsp {
        Some(McamPdu::ListMoviesRsp { titles }) => assert_eq!(titles, vec!["Shared".to_string()]),
        other => panic!("{other:?}"),
    }
    // Both can stream simultaneously.
    let p1 = match world.client_op(
        &c1,
        McamOp::SelectMovie {
            title: "Shared".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    let p2 = match world.client_op(
        &c2,
        McamOp::SelectMovie {
            title: "Shared".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    assert_ne!(p1.stream_id, p2.stream_id);
    let mut r1 = world.receiver_for(&c1, &p1, SimDuration::from_millis(50));
    let mut r2 = world.receiver_for(&c2, &p2, SimDuration::from_millis(50));
    world.client_op(&c1, McamOp::Play { speed_pct: 100 });
    world.client_op(&c2, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(6));
    assert_eq!(r1.poll(world.net.now()).len(), 100);
    assert_eq!(r2.poll(world.net.now()).len(), 100);
}

#[test]
fn mixed_stacks_one_server() {
    // Fig. 2 runs both control stacks side by side for conformance
    // comparison: one client on each flavour against the same server
    // machine (each connection gets its own server entity of the
    // matching stack kind, so use two roots sharing services is not
    // needed — two servers stand in for the two stack columns).
    let mut world = World::builder(41).build();
    let s_est = world.add_server("est", StackKind::EstellePS);
    let c_est = world.add_client(&s_est, StackKind::EstellePS, vec![]);
    let s_iso = world.add_server("iso", StackKind::Isode);
    let c_iso = world.add_client(&s_iso, StackKind::Isode, vec![]);
    world.start();
    associate(&world, &c_est);
    associate(&world, &c_iso);
    for c in [&c_est, &c_iso] {
        let rsp = world.client_op(
            c,
            McamOp::CreateMovie {
                title: "Conformance".into(),
                format: "XMovie-24".into(),
                frame_rate: 25,
                frame_count: 10,
            },
        );
        assert_eq!(rsp, Some(McamPdu::CreateMovieRsp { ok: true }));
    }
}

#[test]
fn scripted_application_plays_through() {
    let mut world = World::builder(55).build();
    let server = world.add_server("s1", StackKind::EstellePS);
    let script = vec![
        McamOp::Associate {
            user: "script".into(),
        },
        McamOp::CreateMovie {
            title: "Scripted".into(),
            format: "XMovie-24".into(),
            frame_rate: 25,
            frame_count: 25,
        },
        McamOp::SelectMovie {
            title: "Scripted".into(),
        },
        McamOp::Play { speed_pct: 100 },
    ];
    let client = world.add_client(&server, StackKind::EstellePS, script);
    world.start();
    world.run_until_quiet(SimTime::MAX);
    let replies = world.replies(&client);
    assert_eq!(replies.len(), 4, "all scripted ops confirmed: {replies:?}");
    assert_eq!(replies[0], McamPdu::AssociateRsp { accepted: true });
    assert_eq!(replies[1], McamPdu::CreateMovieRsp { ok: true });
    assert!(matches!(
        replies[2],
        McamPdu::SelectMovieRsp { params: Some(_) }
    ));
    assert_eq!(replies[3], McamPdu::PlayRsp { ok: true });
}

#[test]
fn lossy_stream_network_does_not_disturb_control() {
    // Table 1: the control protocol runs over the reliable stack, the
    // stream over the lossy one; heavy stream loss must not affect
    // control correctness.
    let mut world = World::builder(77)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(3),
            SimDuration::from_millis(1),
            0.3,
        ))
        .build();
    let server = world.add_server("s1", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &client);
    let mut entry = MovieEntry::new("Lossy", "node-x");
    entry.frame_count = 100;
    world.seed_movie(&server, &entry);
    let params = match world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "Lossy".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(5));
    let played = receiver.poll(world.net.now());
    // The stream lost packets but control stayed perfect.
    assert!(receiver.stats.lost > 5, "lost={}", receiver.stats.lost);
    assert!(played.len() < 100);
    assert!(played.len() > 40);
    assert_eq!(
        world.client_op(&client, McamOp::Stop),
        Some(McamPdu::StopRsp)
    );
}
