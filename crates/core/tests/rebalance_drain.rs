//! The cluster control plane end to end: a hot title grows onto an
//! idle server (and `SelectMovie` immediately routes to the new
//! copy), a drained server migrates its sole copies off, keeps its
//! running streams alive, and decommissions only after the last one
//! closes — and the directory stays decodable for replica-unaware
//! readers and tolerant of stale replica lists throughout.

use directory::{attr, MovieEntry};
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

/// One slow disk per server: ~1.69 Mbit/s of admissible bandwidth
/// fits two ~0.69 Mbit/s nominal-rate streams, not three.
fn tight_store() -> StoreConfig {
    StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    }
}

fn quiet_link() -> LinkConfig {
    LinkConfig::lossy(
        SimDuration::from_millis(2),
        SimDuration::from_micros(500),
        0.0,
    )
}

fn associate(world: &World, client: &mcam::ClientHandle, user: &str) {
    let rsp = world.client_op(client, McamOp::Associate { user: user.into() });
    assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
}

fn select(world: &World, client: &mcam::ClientHandle, title: &str) -> Option<McamPdu> {
    world.client_op(
        client,
        McamOp::SelectMovie {
            title: title.into(),
        },
    )
}

fn query_entry(world: &World, client: &mcam::ClientHandle, title: &str) -> directory::Attrs {
    match world.client_op(
        client,
        McamOp::Query {
            title: title.into(),
            attrs: vec![],
        },
    ) {
        Some(McamPdu::QueryAttrsRsp { attrs: Some(a) }) => a.into_iter().collect(),
        other => panic!("query failed: {other:?}"),
    }
}

/// Acceptance scenario for the grow path: a 3-server K=2 cluster, a
/// title hot enough to saturate both replicas while the third server
/// idles. The control plane copies the title over (a real, paced,
/// admission-charged store workload), rewrites the directory entry,
/// and the refused viewer is admitted on the new replica — and the
/// rewritten entry still decodes for replica-unaware readers.
#[test]
fn hot_title_grows_onto_the_idle_server_and_routing_sees_it() {
    let mut world = World::builder(31)
        .stream_link(quiet_link())
        .store(tight_store())
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        3,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let clients: Vec<_> = (0..5)
        .map(|i| {
            let server = cluster.servers[i % 3].clone();
            world.add_client(&server, StackKind::EstellePS, vec![])
        })
        .collect();
    world.start();
    for (i, c) in clients.iter().enumerate() {
        associate(&world, c, &format!("viewer-{i}"));
    }

    let mut entry = MovieEntry::new("Hit", "pending");
    entry.frame_count = 200;
    let replicas = world.publish_replicated(&cluster, &entry);
    assert_eq!(replicas.len(), 2, "published K=2");

    // Four viewers fill both replicas; the fifth finds the cluster's
    // replica set saturated and is refused.
    for c in &clients[..4] {
        match select(&world, c, "Hit") {
            Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
            other => panic!("viewer must be admitted: {other:?}"),
        }
    }
    match select(&world, &clients[4], "Hit") {
        Some(McamPdu::ErrorRsp { code, .. }) => assert_eq!(code, mcam::server::ERR_ADMISSION),
        other => panic!("expected 503 before the rebalance: {other:?}"),
    }

    // Let the control plane sample the saturation and run the copy —
    // a paced workload on the target's disks, not a teleport.
    world.run_for(SimDuration::from_secs(30));
    let stats = cluster.rebalance_stats();
    assert!(stats.grows_started >= 1, "grow scheduled: {stats:?}");
    assert!(stats.copies_completed >= 1, "copy landed: {stats:?}");
    assert!(stats.directory_updates >= 1, "entry rewritten: {stats:?}");

    // The refused viewer retries: the directory lookup now lists the
    // grown replica set and the stream opens on the new copy.
    let third = cluster
        .servers
        .iter()
        .map(|s| s.services.sps.location())
        .find(|l| !replicas.contains(l))
        .expect("one non-holder existed");
    match select(&world, &clients[4], "Hit") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            assert_eq!(
                format!("node-{}", p.provider_addr),
                third,
                "routed to the newly grown replica"
            );
        }
        other => panic!("viewer admitted after the rebalance: {other:?}"),
    }
    // The new holder carries a real block-mapped copy.
    let grown = cluster
        .servers
        .iter()
        .find(|s| s.services.sps.location() == third)
        .unwrap();
    assert!(grown.services.store.stats().blocks_imported > 0);

    // Directory round-trip: the rewritten entry decodes as-is…
    let attrs = query_entry(&world, &clients[0], "Hit");
    let rewritten = MovieEntry::from_attrs(&attrs).expect("rewritten entry decodes");
    assert_eq!(rewritten.replicas.len(), 3, "three replicas advertised");
    assert_eq!(rewritten.location, rewritten.replicas[0]);
    // …and for an old, replica-unaware reader (no `replicalocations`
    // in its schema) the primary location alone still decodes.
    let mut legacy = attrs.clone();
    legacy.remove(attr::REPLICAS);
    let old_view = MovieEntry::from_attrs(&legacy).expect("legacy reader decodes");
    assert_eq!(old_view.replicas, vec![rewritten.location.clone()]);
}

/// Acceptance scenario for the drain path: a stream keeps playing on
/// the draining server until its natural end, new `SelectMovie`s
/// route elsewhere, the sole-copy title is migrated before
/// decommission, and after completion no title is under-replicated.
#[test]
fn drain_under_load_migrates_sole_copies_and_decommissions_cleanly() {
    let mut world = World::builder(32)
        .stream_link(quiet_link())
        .store(tight_store())
        .build();
    // K=1 placements make every title a sole copy — the hard case.
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        3,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let viewer = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    // The late viewer connects to the third server: the drain's own
    // migration reserves bandwidth on the least-loaded peer (node-2),
    // and the point here is routing, not admission contention.
    let late = world.add_client(&cluster.servers[2], StackKind::EstellePS, vec![]);
    // Control-connected to the draining server itself: even its own
    // clients' new streams must land elsewhere.
    let onholder = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &viewer, "viewer");
    associate(&world, &late, "late");
    associate(&world, &onholder, "onholder");

    let mut entry = MovieEntry::new("Solo", "pending");
    entry.frame_count = 200; // 8 seconds at 25 fps
    let replicas = world.publish_replicated(&cluster, &entry);
    let holder = replicas[0].clone();

    // A viewer is mid-movie on the holder when the drain begins.
    let params = match select(&world, &viewer, "Solo") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    assert_eq!(format!("node-{}", params.provider_addr), holder);
    let mut receiver = world.receiver_for(&viewer, &params, SimDuration::from_millis(80));
    assert_eq!(
        world.client_op(&viewer, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );

    cluster.drain(&holder).expect("drain accepted");
    assert!(cluster.peers.is_draining(&holder));

    // New selects must not land on the draining server.
    match select(&world, &late, "Solo") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            assert_ne!(
                format!("node-{}", p.provider_addr),
                holder,
                "new streams route away from the draining server"
            );
        }
        other => panic!("late viewer still served: {other:?}"),
    }
    // The local-service fallback must not defeat the drain either: a
    // client whose control connection terminates *on* the draining
    // server is redirected to a live peer, not admitted locally.
    match select(&world, &onholder, "Solo") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            assert_ne!(
                format!("node-{}", p.provider_addr),
                holder,
                "the draining server admits no new stream, even from its own clients"
            );
        }
        other => panic!("on-holder viewer still served: {other:?}"),
    }

    // Drive the world: the stream plays out fully *and* the sole copy
    // migrates off through the paced import path.
    world.run_for(SimDuration::from_secs(30));
    assert_eq!(
        receiver.poll(world.net.now()).len(),
        200,
        "the stream on the draining server ran to completion"
    );
    let stats = cluster.rebalance_stats();
    assert!(stats.drain_copies_started >= 1, "{stats:?}");
    assert!(stats.copies_completed >= 1, "{stats:?}");
    assert!(
        !cluster.rebalancer.drain_complete(&holder),
        "decommission waits for the last stream to close"
    );

    // The viewer lets go: the server's last stream closes and the
    // drain completes.
    assert_eq!(
        world.client_op(&viewer, McamOp::Deselect),
        Some(McamPdu::DeselectMovieRsp)
    );
    world.run_for(SimDuration::from_secs(2));
    assert!(cluster.rebalancer.drain_complete(&holder));
    assert!(
        cluster.peers.get(&holder).is_none(),
        "decommissioned server deregistered"
    );
    // Zero under-replicated titles: every tracked title still has at
    // least one live replica, none of them the drained server.
    for (title, replicas) in cluster.rebalancer.titles() {
        assert!(!replicas.is_empty(), "{title} lost all replicas");
        assert!(
            !replicas.contains(&holder),
            "{title} still lists the decommissioned server"
        );
        for replica in &replicas {
            assert!(
                cluster.peers.get(replica).is_some(),
                "{title} names dead replica {replica}"
            );
        }
    }
    // The directory agrees with the control plane.
    let attrs = query_entry(&world, &late, "Solo");
    let entry = MovieEntry::from_attrs(&attrs).unwrap();
    assert!(!entry.replicas.contains(&holder));
    assert_eq!(entry.replicas.len(), 1, "sole copy migrated, not dropped");
    assert_eq!(cluster.rebalance_stats().drains_completed, 1);
}

/// Draining the last holder of a title is refused outright, and a
/// double drain is reported as such.
#[test]
fn drain_refusals() {
    let mut world = World::builder(33)
        .stream_link(quiet_link())
        .store(tight_store())
        .build();
    let solo = world.add_cluster(ClusterSpec::new(
        "solo",
        1,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let pair = world.add_cluster(ClusterSpec::new(
        "pair",
        2,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    world.start();

    let entry = MovieEntry::new("Only", "pending");
    world.publish_replicated(&solo, &entry);
    let only = solo.servers[0].services.sps.location();
    assert_eq!(
        solo.drain(&only),
        Err(mcam::DrainError::LastHolder("Only".into()))
    );
    assert_eq!(
        solo.drain("node-99"),
        Err(mcam::DrainError::UnknownServer("node-99".into()))
    );

    let a = pair.servers[0].services.sps.location();
    pair.drain(&a).expect("a two-server cluster can lose one");
    assert_eq!(pair.drain(&a), Err(mcam::DrainError::AlreadyDraining(a)));
}

/// Routing tolerates stale replica lists: entries naming servers that
/// were decommissioned (or never existed) fail over to the replicas
/// that answer, and an entry whose replicas are all dead falls back
/// to local service — never a panic, never a routing error.
#[test]
fn stale_replica_lists_fail_over_instead_of_panicking() {
    let mut world = World::builder(34)
        .stream_link(quiet_link())
        .store(tight_store())
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &client, "viewer");

    let alive = cluster.servers[1].services.sps.location();
    let local = cluster.servers[0].services.sps.location();

    // A dead replica ahead of a live one: the dead entry is skipped.
    let mut entry = MovieEntry::new("Ghost", "node-99");
    entry.frame_count = 50;
    entry.set_replicas(vec!["node-99".into(), alive.clone()]);
    world.seed_movie(&cluster.servers[0], &entry);
    match select(&world, &client, "Ghost") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            assert_eq!(format!("node-{}", p.provider_addr), alive);
        }
        other => panic!("stale head replica must fail over: {other:?}"),
    }
    world.client_op(&client, McamOp::Deselect);

    // Every listed replica dead: the serving MCA falls back to its
    // local provider rather than erroring the viewer out.
    let mut entry = MovieEntry::new("Orphan", "node-98");
    entry.frame_count = 50;
    entry.set_replicas(vec!["node-98".into(), "node-99".into()]);
    world.seed_movie(&cluster.servers[0], &entry);
    match select(&world, &client, "Orphan") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            assert_eq!(
                format!("node-{}", p.provider_addr),
                local,
                "all-dead replica list degrades to local service"
            );
        }
        other => panic!("all-dead replica list must still serve: {other:?}"),
    }
}
