//! The cluster-aware control plane for clients, end to end: servers
//! refer capable clients' control associations to less-loaded (or
//! non-draining) members through the `ReferralRsp` PDU, clients
//! follow referrals with a bounded hop count, loop detection and
//! candidate fallback, legacy clients keep being served locally, and
//! a drain empties a server of control associations before it
//! decommissions.

use directory::MovieEntry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World, ERR_REFERRAL};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn quiet_link() -> LinkConfig {
    LinkConfig::lossy(
        SimDuration::from_millis(2),
        SimDuration::from_micros(500),
        0.0,
    )
}

fn associate(world: &World, client: &mcam::ClientHandle, user: &str) {
    let rsp = world.client_op(client, McamOp::Associate { user: user.into() });
    assert_eq!(
        rsp,
        Some(McamPdu::AssociateRsp { accepted: true }),
        "{user}"
    );
}

fn select(world: &World, client: &mcam::ClientHandle, title: &str) -> Option<McamPdu> {
    world.client_op(
        client,
        McamOp::SelectMovie {
            title: title.into(),
        },
    )
}

/// The acceptance scenario: every client dials the same server of a
/// 4-server cluster, yet the control associations spread — no member
/// ends up holding more than twice its fair share — and a referred
/// client's requests (select, play) work exactly as before.
#[test]
fn control_connections_spread_across_the_cluster() {
    let mut world = World::builder(7).stream_link(quiet_link()).build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        4,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let clients: Vec<_> = (0..12)
        .map(|_| world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]))
        .collect();
    world.start();
    for (i, client) in clients.iter().enumerate() {
        associate(&world, client, &format!("viewer-{i}"));
    }

    let counts = cluster.control_connections();
    let total: usize = counts.iter().map(|(_, n)| n).sum();
    assert_eq!(total, 12, "every association accounted: {counts:?}");
    let fair = total / cluster.servers.len();
    for (location, n) in &counts {
        assert!(
            *n <= 2 * fair,
            "{location} holds {n} of {total} control connections \
             (fair share {fair}): {counts:?}"
        );
        assert!(*n >= 1, "{location} was left idle: {counts:?}");
    }
    assert!(
        cluster.control.referrals_issued() > 0,
        "spreading 12 same-server clients requires referrals"
    );

    // The abandoned server-side entities (one per connect-time
    // referral) are reaped after the grace period instead of
    // accumulating as zombie stacks.
    world.run_for(SimDuration::from_millis(100));
    let reaped: u64 = cluster
        .servers
        .iter()
        .map(|s| {
            world
                .rt
                .with_machine::<mcam::ServerRoot, _>(s.root, |r| r.reaped)
                .expect("server root exists")
        })
        .sum();
    assert_eq!(
        reaped,
        cluster.control.referrals_issued(),
        "every issued referral leaves exactly one reaped entity"
    );

    // A referred client is a fully functional client: publish a
    // movie and run a select+play through whichever member now
    // carries the association.
    let moved = clients
        .iter()
        .find(|c| world.client_control_location(c) != cluster.servers[0].services.sps.location())
        .expect("at least one client was re-homed");
    let mut entry = MovieEntry::new("Spread", "pending");
    entry.frame_count = 50;
    world.publish_replicated(&cluster, &entry);
    let params = match select(&world, moved, "Spread") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("referred client cannot select: {other:?}"),
    };
    let mut receiver = world.receiver_for(moved, &params, SimDuration::from_millis(50));
    assert_eq!(
        world.client_op(moved, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(3));
    assert_eq!(receiver.poll(world.net.now()).len(), 50);
}

/// Back-compatibility: a client that does not advertise referral
/// support is always served by the server it dialed — even when that
/// server is so control-loaded it would refer anyone else — and its
/// AssociateReq rides in the original two-field encoding.
#[test]
fn legacy_client_is_served_locally() {
    let mut world = World::builder(11).stream_link(quiet_link()).build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        3,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let home = cluster.servers[0].services.sps.location();
    let legacy = world.add_legacy_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();

    // Make the home server look grossly over-connected.
    for _ in 0..5 {
        cluster.control.connected(&home);
    }
    let issued_before = cluster.control.referrals_issued();
    associate(&world, &legacy, "legacy");
    assert_eq!(
        world.client_control_location(&legacy),
        home,
        "a legacy client stays where it dialed"
    );
    assert_eq!(
        cluster.control.referrals_issued(),
        issued_before,
        "no referral is ever issued to a legacy client"
    );
    assert_eq!(world.client_referrals(&legacy), (0, 0));

    // And it keeps full service there.
    let mut entry = MovieEntry::new("Classic", "pending");
    entry.frame_count = 25;
    world.publish_replicated(&cluster, &entry);
    assert!(matches!(
        select(&world, &legacy, "Classic"),
        Some(McamPdu::SelectMovieRsp { params: Some(_) })
    ));
}

/// A referral naming a dead (decommissioned) or draining target is
/// not fatal: the client falls back across the carried candidate
/// list and settles on a live member.
#[test]
fn referral_to_dead_or_draining_target_falls_back() {
    let mut world = World::builder(13).stream_link(quiet_link()).build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        3,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let home = cluster.servers[0].services.sps.location();
    let second = cluster.servers[1].services.sps.location();
    let third = cluster.servers[2].services.sps.location();
    let dead_target = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    let draining_target = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();

    // The operator pins the home server to a target that does not
    // exist (a just-decommissioned location, as far as clients can
    // tell): the client must land on a live candidate instead.
    cluster.control.pin(&home, "node-99");
    associate(&world, &dead_target, "fallback-1");
    let landed = world.client_control_location(&dead_target);
    assert_ne!(landed, home, "the pin moved the client off its home");
    assert_ne!(landed, "node-99", "the dead target was skipped");
    assert!(landed == second || landed == third, "{landed}");

    // Same, but the pinned target is draining: equally un-dialable.
    cluster.control.pin(&home, &second);
    cluster.peers.set_draining(&second, true);
    associate(&world, &draining_target, "fallback-2");
    assert_eq!(
        world.client_control_location(&draining_target),
        third,
        "the draining target was skipped for the live candidate"
    );
    cluster.peers.set_draining(&second, false);
    cluster.control.unpin(&home);
}

/// Referral loops terminate: two servers pinned at each other bounce
/// a client until loop detection (the visited set) gives up and the
/// application receives a clean `ERR_REFERRAL` — it is never hung
/// and never spins.
#[test]
fn referral_loops_are_detected() {
    let mut world = World::builder(17).stream_link(quiet_link()).build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let a = cluster.servers[0].services.sps.location();
    let b = cluster.servers[1].services.sps.location();
    let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();

    cluster.control.pin(&a, &b);
    cluster.control.pin(&b, &a);
    let rsp = world.client_op(
        &client,
        McamOp::Associate {
            user: "looped".into(),
        },
    );
    match rsp {
        Some(McamPdu::ErrorRsp { code, message }) => {
            assert_eq!(code, ERR_REFERRAL);
            assert!(message.contains("referral"), "{message}");
        }
        other => panic!("a looped referral must fail cleanly: {other:?}"),
    }
    let (followed, failed) = world.client_referrals(&client);
    assert_eq!(failed, 1, "exactly one chain failure");
    assert!(
        followed <= 2,
        "loop detection stops the chain after visiting each end once"
    );

    // Unpin and the same client associates normally on a later try.
    cluster.control.unpin(&a);
    cluster.control.unpin(&b);
    associate(&world, &client, "recovered");
}

/// The bounded hop count cuts referral chains that keep naming fresh
/// servers: with a budget of 1, the second hop of a pinned
/// A → B → C chain is refused.
#[test]
fn referral_hop_limit_terminates_chains() {
    let mut world = World::builder(19).stream_link(quiet_link()).build();
    world.referral_max_hops = 1;
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        3,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let a = cluster.servers[0].services.sps.location();
    let b = cluster.servers[1].services.sps.location();
    let c = cluster.servers[2].services.sps.location();
    let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();

    cluster.control.pin(&a, &b);
    cluster.control.pin(&b, &c);
    let rsp = world.client_op(
        &client,
        McamOp::Associate {
            user: "chained".into(),
        },
    );
    match rsp {
        Some(McamPdu::ErrorRsp { code, message }) => {
            assert_eq!(code, ERR_REFERRAL);
            assert!(message.contains("hop limit"), "{message}");
        }
        other => panic!("an over-long chain must fail cleanly: {other:?}"),
    }
    assert_eq!(
        world.client_control_location(&client),
        b,
        "the one allowed hop was taken before the budget ran out"
    );
    let _ = c;
}

/// Drain-away: a draining server refers its capable clients' next
/// `SelectMovie` to a live member — the interrupted select is
/// replayed there transparently (one request, one confirmation) —
/// and its control-association count reaches zero before
/// decommission.
#[test]
fn drain_refers_control_connections_away() {
    let store = StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    };
    let mut world = World::builder(23)
        .stream_link(quiet_link())
        .store(store)
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        3,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let home = cluster.servers[0].services.sps.location();
    let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &client, "viewer");
    assert_eq!(world.client_control_location(&client), home);

    let mut entry = MovieEntry::new("Feature", "pending");
    entry.frame_count = 100;
    let replicas = world.publish_replicated(&cluster, &entry);
    assert!(replicas.contains(&home), "K=2 of 3 places on the home");

    // The client's stream lands on the home server (both replicas
    // idle, replica-list order breaks the tie) and keeps the drain
    // from completing under us.
    let first = match select(&world, &client, "Feature") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    assert_eq!(format!("node-{}", first.provider_addr), home);

    cluster.drain(&home).expect("drain accepted");
    assert!(cluster.peers.is_draining(&home));

    // The next select is the drain-away moment: the draining server
    // answers it with a referral, the client re-homes and replays it,
    // and the stream opens on a live member — one request, one
    // confirmation, exactly as if nothing had happened.
    let replies_before = world.replies(&client).len();
    let params = match select(&world, &client, "Feature") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("drained-away select failed: {other:?}"),
    };
    assert_ne!(
        format!("node-{}", params.provider_addr),
        home,
        "the stream opened away from the draining server"
    );
    assert_eq!(
        world.replies(&client).len(),
        replies_before + 1,
        "the re-homed select produced exactly one confirmation"
    );
    let moved_to = world.client_control_location(&client);
    assert_ne!(moved_to, home, "the control association left with it");
    assert_eq!(
        cluster.control.connections(&home),
        0,
        "the draining server holds no control association"
    );
    assert_eq!(world.client_referrals(&client), (1, 0));
    assert_eq!(world.client_referral_cache(&client), Some(moved_to));

    // Referring the client away also closed its stream on the
    // draining server: nothing holds the drain back, and the server
    // decommissions with zero control associations on it.
    world.run_for(SimDuration::from_secs(30));
    assert!(cluster.rebalancer.drain_complete(&home));
    assert!(cluster.peers.get(&home).is_none(), "decommissioned");

    // The client keeps playing from its new home.
    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(80));
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(6));
    assert_eq!(receiver.poll(world.net.now()).len(), 100);
}

/// An `ErrorRsp 503` invalidates the cached referral: the saturation
/// that produced it means the load picture behind the referral is
/// stale.
#[test]
fn saturation_invalidates_the_cached_referral() {
    let store = StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    };
    let mut world = World::builder(29)
        .stream_link(quiet_link())
        .store(store)
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let home = cluster.servers[0].services.sps.location();
    let other = cluster.servers[1].services.sps.location();
    let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();

    // Steer the client so it has a cached referral.
    cluster.control.pin(&home, &other);
    associate(&world, &client, "viewer");
    cluster.control.unpin(&home);
    assert_eq!(world.client_referral_cache(&client), Some(other.clone()));

    // Saturate every replica of a title, then select it: 503.
    let mut entry = MovieEntry::new("Packed", "pending");
    entry.frame_count = 5_000;
    world.publish_replicated(&cluster, &entry);
    for _ in 0..4 {
        // Two viewers per server fill both stores.
        let _ = select(&world, &client, "Packed");
    }
    let rsp = loop {
        match select(&world, &client, "Packed") {
            Some(McamPdu::SelectMovieRsp { params: Some(_) }) => continue,
            other => break other,
        }
    };
    assert!(
        matches!(rsp, Some(McamPdu::ErrorRsp { code: 503, .. })),
        "saturation expected: {rsp:?}"
    );
    assert_eq!(
        world.client_referral_cache(&client),
        None,
        "the 503 dropped the cached referral"
    );
}
