//! The stream-sharing merge engine end to end: followers of a shared
//! title admit free under saturation, fast-feeds converge and release
//! their delta reservation, a closing leader hands its disk stream to
//! the nearest follower without a playback gap, a follower seeking
//! out of its group re-admits honestly (or is refused with 503 and
//! stays merged), and the whole lifecycle lands in the verifiable
//! event journal.

use mcam::{ClusterSpec, McamOp, McamPdu, Placement, ShareConfig, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

/// One slow disk: ~1.69 Mbit/s of admissible bandwidth fits two
/// ~0.69 Mbit/s nominal-rate streams, not three.
fn tight_store() -> StoreConfig {
    StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    }
}

fn quiet_link() -> LinkConfig {
    LinkConfig::lossy(
        SimDuration::from_millis(2),
        SimDuration::from_micros(500),
        0.0,
    )
}

fn associate(world: &World, client: &mcam::ClientHandle, user: &str) {
    let rsp = world.client_op(client, McamOp::Associate { user: user.into() });
    assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
}

fn select(world: &World, client: &mcam::ClientHandle, title: &str) -> Option<McamPdu> {
    world.client_op(
        client,
        McamOp::SelectMovie {
            title: title.into(),
        },
    )
}

fn publish(world: &World, cluster: &mcam::ClusterHandle, title: &str, frames: u64) {
    let mut entry = directory::MovieEntry::new(title, "pending");
    entry.frame_count = frames;
    world.publish_replicated(cluster, &entry);
}

/// Four viewers of one title on a server that fits two full streams:
/// the first charges a disk stream and leads, the other three merge
/// free, and the admission controller's headroom does not move.
#[test]
fn followers_admit_free_under_saturation() {
    let mut world = World::builder(71)
        .stream_link(quiet_link())
        .store(tight_store())
        .share(ShareConfig::default())
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        1,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let clients: Vec<_> = (0..4)
        .map(|_| world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]))
        .collect();
    world.start();
    for (i, c) in clients.iter().enumerate() {
        associate(&world, c, &format!("viewer-{i}"));
    }
    publish(&world, &cluster, "Hit", 500);

    let store = &cluster.servers[0].services.store;
    let idle = store.available_bps();
    match select(&world, &clients[0], "Hit") {
        Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
        other => panic!("leader must be admitted: {other:?}"),
    }
    let after_leader = store.available_bps();
    assert!(after_leader < idle, "the leader charges one full stream");

    // Without sharing the third viewer would be refused; with the
    // merge engine every follower rides the leader's stream for free.
    for c in &clients[1..] {
        match select(&world, c, "Hit") {
            Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
            other => panic!("follower must be admitted free: {other:?}"),
        }
        assert_eq!(
            store.available_bps(),
            after_leader,
            "a merged follower must not move the admission headroom"
        );
    }
    let stats = cluster.servers[0].services.share.stats();
    assert_eq!(stats.merges, 3, "{stats:?}");
    assert_eq!(world.journal().count(journal::kind::MERGE_JOINED), 3);
}

/// A viewer joining outside the merge window but inside the catch-up
/// horizon fast-feeds: it charges only the delta bandwidth, plays at
/// the catch-up rate until its gap closes, then merges and releases
/// the delta back to admission.
#[test]
fn fast_feed_converges_and_releases_its_delta() {
    let mut world = World::builder(72)
        .stream_link(quiet_link())
        .store(tight_store())
        .share(ShareConfig {
            enabled: true,
            merge_window_blocks: 1,
            catch_up_horizon_blocks: 8,
            catch_up_rate_pct: 200,
        })
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        1,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let leader = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    let chaser = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &leader, "leader");
    associate(&world, &chaser, "chaser");
    publish(&world, &cluster, "Hit", 500);

    let store = &cluster.servers[0].services.store;
    match select(&world, &leader, "Hit") {
        Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
        other => panic!("leader must be admitted: {other:?}"),
    }
    let one_stream = store.available_bps();
    assert_eq!(
        world.client_op(&leader, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    // Let the leader get a few blocks ahead: past the merge window,
    // inside the catch-up horizon.
    world.run_for(SimDuration::from_secs(4));

    match select(&world, &chaser, "Hit") {
        Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
        other => panic!("fast-feed viewer must be admitted: {other:?}"),
    }
    let share = &cluster.servers[0].services.share;
    assert_eq!(share.stats().fast_feeds, 1, "{:?}", share.stats());
    assert!(
        store.available_bps() < one_stream,
        "the fast-feed must charge its delta"
    );
    assert_eq!(
        world.client_op(&chaser, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );

    // At 2x the leader's rate the gap closes within a few seconds;
    // convergence merges the chaser and releases the delta.
    world.run_for(SimDuration::from_secs(8));
    let stats = share.stats();
    assert_eq!(stats.conversions, 1, "{stats:?}");
    assert_eq!(
        store.available_bps(),
        one_stream,
        "a converged fast-feed must release its delta reservation"
    );
    assert_eq!(world.journal().count(journal::kind::FAST_FEED_STARTED), 1);
    assert_eq!(world.journal().count(journal::kind::FAST_FEED_CONVERGED), 1);
}

/// The leader deselects mid-movie: the nearest follower is promoted,
/// re-charged one full disk stream, and its playback continues
/// without a gap — every frame of the movie still arrives, exactly
/// once.
#[test]
fn leader_close_promotes_a_follower_without_a_playback_gap() {
    let mut world = World::builder(73)
        .stream_link(quiet_link())
        .store(tight_store())
        .share(ShareConfig::default())
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        1,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let leader = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    let follower = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &leader, "leader");
    associate(&world, &follower, "follower");
    publish(&world, &cluster, "Hit", 200);

    let store = &cluster.servers[0].services.store;
    match select(&world, &leader, "Hit") {
        Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
        other => panic!("leader must be admitted: {other:?}"),
    }
    let one_stream = store.available_bps();
    assert_eq!(
        world.client_op(&leader, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    let follower_params = match select(&world, &follower, "Hit") {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("follower must be admitted: {other:?}"),
    };
    let mut receiver =
        world.receiver_for(&follower, &follower_params, SimDuration::from_millis(80));
    assert_eq!(
        world.client_op(&follower, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(2));

    // The leader lets go mid-movie: the follower takes over the disk
    // stream and the admission headroom stays at exactly one charged
    // stream (the promoted one).
    assert_eq!(
        world.client_op(&leader, McamOp::Deselect),
        Some(McamPdu::DeselectMovieRsp)
    );
    let share = &cluster.servers[0].services.share;
    assert_eq!(share.stats().promotions, 1, "{:?}", share.stats());
    assert_eq!(
        store.available_bps(),
        one_stream,
        "promotion re-charges exactly the one stream the leader freed"
    );
    assert_eq!(world.journal().count(journal::kind::LEADER_PROMOTED), 1);

    // The promoted viewer plays the movie out: all 200 frames arrive,
    // once each — no stall and no replay across the promotion.
    world.run_for(SimDuration::from_secs(12));
    assert_eq!(
        receiver.poll(world.net.now()).len(),
        200,
        "the promoted follower's playback must stay gapless"
    );
}

/// A follower seeking out of its group must pass full admission for
/// its own stream: refused with 503 while the server is saturated
/// (staying merged), admitted — and split out — once capacity frees.
#[test]
fn seek_out_of_group_readmits_or_503s_honestly() {
    let mut world = World::builder(74)
        .stream_link(quiet_link())
        .store(tight_store())
        .share(ShareConfig::default())
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        1,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let leader = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    let follower = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    let rival = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();
    associate(&world, &leader, "leader");
    associate(&world, &follower, "follower");
    associate(&world, &rival, "rival");
    publish(&world, &cluster, "Hit", 500);
    publish(&world, &cluster, "Other", 500);

    for (client, title) in [(&leader, "Hit"), (&follower, "Hit"), (&rival, "Other")] {
        match select(&world, client, title) {
            Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
            other => panic!("viewer of {title} must be admitted: {other:?}"),
        }
    }
    // Two full streams are now charged (Hit's leader and Other's):
    // the follower's seek out of the group cannot be afforded.
    let share = &cluster.servers[0].services.share;
    match world.client_op(&follower, McamOp::Seek { frame: 400 }) {
        Some(McamPdu::ErrorRsp { code, .. }) => assert_eq!(code, mcam::server::ERR_ADMISSION),
        other => panic!("a seek the disks cannot afford must 503: {other:?}"),
    }
    assert_eq!(share.stats().splits, 0, "a refused seek must stay merged");

    // The rival lets go; the same seek now passes admission and the
    // follower becomes a stream of its own.
    assert_eq!(
        world.client_op(&rival, McamOp::Deselect),
        Some(McamPdu::DeselectMovieRsp)
    );
    match world.client_op(&follower, McamOp::Seek { frame: 400 }) {
        Some(McamPdu::SeekRsp { ok: true }) => {}
        other => panic!("the seek must pass once capacity frees: {other:?}"),
    }
    assert_eq!(share.stats().splits, 1, "{:?}", share.stats());
    assert_eq!(world.journal().count(journal::kind::GROUP_SPLIT), 1);
}

/// The full merge lifecycle — merge, fast-feed, convergence,
/// promotion, split — lands in one hash-chained journal that
/// verifies, and a JSONL round-trip re-verifies offline.
#[test]
fn journal_chain_verifies_across_the_merge_lifecycle() {
    let mut world = World::builder(75)
        .stream_link(quiet_link())
        .store(tight_store())
        .share(ShareConfig {
            enabled: true,
            merge_window_blocks: 1,
            catch_up_horizon_blocks: 8,
            catch_up_rate_pct: 200,
        })
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        1,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let clients: Vec<_> = (0..3)
        .map(|_| world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]))
        .collect();
    world.start();
    for (i, c) in clients.iter().enumerate() {
        associate(&world, c, &format!("viewer-{i}"));
    }
    publish(&world, &cluster, "Hit", 500);

    // Leader, an instant merge, then (after the leader pulls ahead) a
    // fast-feed that converges.
    for c in &clients[..2] {
        match select(&world, c, "Hit") {
            Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
            other => panic!("viewer must be admitted: {other:?}"),
        }
    }
    assert_eq!(
        world.client_op(&clients[0], McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(4));
    match select(&world, &clients[2], "Hit") {
        Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
        other => panic!("fast-feed viewer must be admitted: {other:?}"),
    }
    assert_eq!(
        world.client_op(&clients[2], McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(8));
    // The leader closes (promoting a follower), then the promoted
    // group's trailing member seeks out (splitting).
    assert_eq!(
        world.client_op(&clients[0], McamOp::Deselect),
        Some(McamPdu::DeselectMovieRsp)
    );
    match world.client_op(&clients[2], McamOp::Seek { frame: 450 }) {
        Some(McamPdu::SeekRsp { ok: true }) | Some(McamPdu::ErrorRsp { .. }) => {}
        other => panic!("seek must answer: {other:?}"),
    }

    let journal = world.journal();
    journal.verify().expect("hash chain intact");
    for kind in [
        journal::kind::MERGE_JOINED,
        journal::kind::FAST_FEED_STARTED,
        journal::kind::FAST_FEED_CONVERGED,
        journal::kind::LEADER_PROMOTED,
    ] {
        assert!(journal.count(kind) >= 1, "missing {kind} events");
    }
    // The recorded JSONL round-trips and re-verifies offline.
    let events = journal::events_from_jsonl(&journal.to_jsonl()).unwrap();
    journal::verify_events(&events).unwrap();
}
