//! Cluster replication end-to-end: replicated publishing, load-aware
//! `SelectMovie` routing across server machines, mid-burst failover,
//! and re-routing after a release frees bandwidth.

use directory::MovieEntry;
use mcam::{ClusterHandle, ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, SimDuration, SimTime};
use store::{CachePolicy, DiskParams, StoreConfig};

/// One slow disk per server; `transfer_bytes_per_sec` calibrates how
/// many ~0.67 Mbit/s movie streams one server's admission controller
/// sustains.
fn store_config(transfer_bytes_per_sec: u64) -> StoreConfig {
    StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    }
}

fn cluster_world(
    seed: u64,
    servers: usize,
    clients: usize,
    transfer_bytes_per_sec: u64,
    placement: Placement,
) -> (World, ClusterHandle, Vec<mcam::ClientHandle>) {
    let mut world = World::builder(seed)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(2),
            SimDuration::from_micros(500),
            0.0,
        ))
        .store(store_config(transfer_bytes_per_sec))
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        servers,
        StackKind::EstellePS,
        placement,
    ));
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let server = &cluster.servers[i % servers].clone();
            world.add_client(server, StackKind::EstellePS, vec![])
        })
        .collect();
    world.start();
    for c in &handles {
        let rsp = world.client_op(
            c,
            McamOp::Associate {
                user: format!("viewer-{}", c.conn),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }
    (world, cluster, handles)
}

fn publish(world: &World, cluster: &ClusterHandle, title: &str) -> Vec<String> {
    let mut entry = MovieEntry::new(title, "placeholder");
    entry.frame_count = 200;
    world.publish_replicated(cluster, &entry)
}

/// Acceptance scenario: 3 servers × K=2 replicas, demand sized to
/// saturate one server. Selects spread across the replicas and the
/// cluster admits more streams than one server can sustain; the
/// first viewer past cluster capacity gets a clean 503.
#[test]
fn select_spreads_across_replicas_and_scales_past_one_server() {
    // ~1.69 Mbit/s per server: two ~0.67 Mbit/s streams fit, not three.
    let (world, cluster, clients) = cluster_world(101, 3, 5, 250_000, Placement::round_robin(2));
    let replicas = publish(&world, &cluster, "Hit");
    assert_eq!(replicas.len(), 2, "K=2 placement");

    let mut admitted = Vec::new();
    let mut rejected = 0;
    for c in &clients {
        match world.client_op(
            c,
            McamOp::SelectMovie {
                title: "Hit".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => admitted.push(p),
            Some(McamPdu::ErrorRsp { code, message }) => {
                assert_eq!(code, mcam::server::ERR_ADMISSION);
                assert!(message.contains("replica"), "{message}");
                rejected += 1;
            }
            other => panic!("unexpected select outcome {other:?}"),
        }
    }

    // One server sustains 2 streams; the K=2 cluster admitted 4.
    assert_eq!(admitted.len(), 4, "both replicas filled");
    assert_eq!(rejected, 1, "demand past cluster capacity is refused");
    let single_server_capacity = 2;
    assert!(admitted.len() > single_server_capacity);

    // The streams spread over exactly the two replica servers.
    let providers: std::collections::BTreeSet<u32> =
        admitted.iter().map(|p| p.provider_addr).collect();
    assert_eq!(providers.len(), 2, "both replicas host streams");
    for (location, stats) in cluster.store_stats() {
        let is_replica = replicas.contains(&location);
        assert_eq!(
            stats.open_streams,
            if is_replica { 2 } else { 0 },
            "{location}: open streams"
        );
    }
    assert_eq!(cluster.total_streams(), 4);
}

/// Fires one scheduler transition (or advances the network/clock when
/// none is enabled); returns false when the world is fully quiescent.
/// Single-stepping opens the window between a routing decision and
/// the stream open that the normal run-to-quiescence driver closes.
fn step_once(world: &World) -> bool {
    let mut opts = world.seq_options.clone();
    opts.advance_time = false;
    opts.max_firings = Some(1);
    let report = estelle::sched::run_sequential(&world.rt, &opts);
    if report.firings > 0 {
        return true;
    }
    let next_net = world.net.next_event_at();
    let next_delay = world.rt.next_deadline();
    match [next_net, next_delay].into_iter().flatten().min() {
        Some(t) => {
            if next_net.is_some_and(|n| n <= t) {
                world.net.step();
            } else {
                world.rt.advance_clock_to(t);
            }
            true
        }
        None => false,
    }
}

/// Failover: `SelectMovie` routes to the most-available replica, but
/// a competing admission (stream providers are shared services — any
/// entity may commit bandwidth between the routing decision and the
/// open) saturates it first. The open is rejected mid-flight and the
/// router re-admits the stream on the next replica instead of
/// surfacing an error.
#[test]
fn failover_readmits_on_next_replica_when_routed_one_rejects() {
    // ~1.69 Mbit/s per server; the movie demands ~0.67 Mbit/s.
    let (world, cluster, clients) = cluster_world(202, 2, 1, 250_000, Placement::round_robin(2));
    let replicas = publish(&world, &cluster, "Hit");
    let (a, b) = (
        cluster.peers.get(&replicas[0]).unwrap(),
        cluster.peers.get(&replicas[1]).unwrap(),
    );

    // A small background stream makes replica A the *less* available
    // one, so routing must pick B first.
    let mut light = mtp::MovieSource::test_movie(60, 9);
    light.i_size /= 2;
    light.p_size /= 2;
    light.b_size /= 2;
    a.open(light, netsim::NetAddr(9_000), world.net.now())
        .expect("light background stream fits");

    // Drive the select only until the MCA has taken its routing
    // decision (chose B; the open request is queued but unfired).
    world.push_op(
        &clients[0],
        McamOp::SelectMovie {
            title: "Hit".into(),
        },
    );
    let mut guard = 0;
    while cluster.route_decisions() == 0 {
        assert!(step_once(&world), "world stalled before routing");
        guard += 1;
        assert!(guard < 100_000, "select never reached the routing step");
    }

    // Mid-burst: two competing viewers land on B before the routed
    // open fires, leaving less than one stream's bandwidth.
    for seed in [11, 12] {
        b.open(
            mtp::MovieSource::test_movie(60, seed),
            netsim::NetAddr(9_001 + seed as u32),
            world.net.now(),
        )
        .expect("competing streams fit an idle replica");
    }

    world.run_until_quiet(SimTime::MAX);
    let reply = world.replies(&clients[0]).last().cloned();
    match reply {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            assert_eq!(
                format!("node-{}", p.provider_addr),
                replicas[0],
                "re-admitted on replica A after B rejected"
            );
        }
        other => panic!("failover should still admit the viewer: {other:?}"),
    }
    assert_eq!(cluster.failovers(), 1);
    assert_eq!(a.stream_count(), 2, "light stream + failed-over stream");
    assert_eq!(b.stream_count(), 2, "the two competing streams");
}

/// A saturated cluster refuses with one 503 after trying every
/// replica; a release frees bandwidth and the refused viewer is
/// re-routed onto the freed replica.
#[test]
fn saturated_cluster_refuses_then_release_reroutes() {
    // ~0.81 Mbit/s per server: exactly one stream fits.
    let (world, cluster, clients) = cluster_world(404, 2, 3, 120_000, Placement::round_robin(2));
    publish(&world, &cluster, "Hit");

    let p0 = match world.client_op(
        &clients[0],
        McamOp::SelectMovie {
            title: "Hit".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    let p1 = match world.client_op(
        &clients[1],
        McamOp::SelectMovie {
            title: "Hit".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    assert_ne!(
        p0.provider_addr, p1.provider_addr,
        "routing spread the pair"
    );

    // Full: the third viewer is refused — after the router tried both
    // replicas (one failover), not after the first rejection.
    match world.client_op(
        &clients[2],
        McamOp::SelectMovie {
            title: "Hit".into(),
        },
    ) {
        Some(McamPdu::ErrorRsp { code, message }) => {
            assert_eq!(code, mcam::server::ERR_ADMISSION);
            assert!(message.contains("all 2 replica(s)"), "{message}");
        }
        other => panic!("saturated cluster must refuse: {other:?}"),
    }
    assert!(cluster.failovers() >= 1);

    // Release-then-re-route: viewer 0 deselects, freeing its replica;
    // the refused viewer is re-admitted there.
    assert_eq!(
        world.client_op(&clients[0], McamOp::Deselect),
        Some(McamPdu::DeselectMovieRsp)
    );
    match world.client_op(
        &clients[2],
        McamOp::SelectMovie {
            title: "Hit".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            assert_eq!(
                p.provider_addr, p0.provider_addr,
                "routed to the freed replica"
            );
        }
        other => panic!("retry after release failed: {other:?}"),
    }
    assert_eq!(cluster.total_streams(), 2);
}

/// Least-loaded placement steers new titles away from servers that
/// already carry streams, and replicated playback delivers frames
/// from whichever replica hosts the stream.
#[test]
fn least_loaded_placement_and_replicated_playback() {
    let (world, cluster, clients) = cluster_world(303, 3, 2, 250_000, Placement::least_loaded(2));
    let first = publish(&world, &cluster, "Busy");
    // Load the first replica of "Busy".
    let p0 = match world.client_op(
        &clients[0],
        McamOp::SelectMovie {
            title: "Busy".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    assert_eq!(format!("node-{}", p0.provider_addr), first[0]);

    // A title published now avoids the loaded server.
    let second = publish(&world, &cluster, "Fresh");
    assert!(
        !second.contains(&format!("node-{}", p0.provider_addr)),
        "least-loaded placement skips the busy server: {second:?}"
    );

    // Streams play end-to-end from a routed replica.
    let p1 = match world.client_op(
        &clients[1],
        McamOp::SelectMovie {
            title: "Fresh".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    let mut receiver = world.receiver_for(&clients[1], &p1, SimDuration::from_millis(80));
    assert_eq!(
        world.client_op(&clients[1], McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(12));
    let frames = receiver.poll(world.net.now());
    assert_eq!(frames.len(), 200, "routed stream delivers the movie");

    // Deselect closes the stream on the remote replica, not locally.
    assert_eq!(
        world.client_op(&clients[1], McamOp::Deselect),
        Some(McamPdu::DeselectMovieRsp)
    );
    assert_eq!(cluster.total_streams(), 1, "only the Busy stream remains");
}
