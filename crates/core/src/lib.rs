//! `mcam` — Movie Control, Access and Management: the paper's primary
//! contribution.
//!
//! MCAM is an application-layer architecture, service and protocol for
//! movie *access* (create, delete, select), *management* (query and
//! modify attributes) and *control* (playback, record) in a computer
//! network. This crate assembles the whole system of the paper:
//!
//! - [`McamPdu`] — the ASN.1/BER protocol data units (§4.2);
//! - [`ClientMca`] / [`ServerMca`] — the Movie Control Agents written
//!   as Estelle state machines (Fig. 3), with the server's DUA, SUA
//!   and EUA child agents as external-body modules ([`agents`]);
//! - [`AppMachine`] — the scriptable application module (the generated
//!   X interface substitute);
//! - [`ClientRoot`] / [`server::ServerRoot`] — system modules that
//!   create their protocol stacks *dynamically* on connection
//!   requests (§4.1), over either lower stack ([`StackKind`]);
//! - [`StreamProviderSystem`] — the XMovie stream provider feeding
//!   MTP senders (CM-stream level, deliberately outside Estelle),
//!   pulling frames through the `store` crate's striped block store
//!   with buffer cache, prefetch, and disk-bandwidth admission
//!   control (overload becomes a negative MCAM response);
//! - [`World`] — the Fig. 2 experimental configuration: clients on
//!   workstations, server entities on the (simulated) multiprocessor,
//!   control pipes and the CM datagram network, with a co-simulation
//!   driver;
//! - cluster replication (the `cluster` crate wired through
//!   [`World::add_cluster`] / [`World::publish_replicated`]): movies
//!   are placed on K replica servers, directory entries carry every
//!   replica location, and `SelectMovie` routes each stream to the
//!   replica whose admission controller has the most uncommitted
//!   disk bandwidth — falling over to the next replica on rejection
//!   and returning `ErrorRsp 503` only when all replicas are
//!   saturated;
//! - the cluster **control plane** ([`ClusterController`], one per
//!   cluster, ticked by the world's driver on the netsim clock):
//!   replica sets are no longer fixed at publish time — the
//!   controller samples per-server loads, *grows* a saturated title
//!   onto the least-loaded idle server (the copy reserves bandwidth
//!   in the target's admission controller and is written through its
//!   elevator/SCAN disk queues at the reserved pace, so it visibly
//!   competes with streams), *shrinks* it back when demand cools,
//!   and *drains* servers out of service
//!   ([`ClusterHandle::drain`]): sole-copy titles migrate
//!   off, running streams play to completion, and the server
//!   decommissions once its last stream closes;
//! - **cluster-aware clients** (the referral control plane): the
//!   *control* association is no longer pinned to whichever server a
//!   client dialed — a server that is over-connected, draining, or
//!   already decommissioned answers an association open or a
//!   `SelectMovie` with [`McamPdu::ReferralRsp`] naming a better
//!   member (plus the live candidate list with a load hint), and the
//!   client's root re-dials, re-associates, and replays the
//!   interrupted request transparently (bounded hop count, loop
//!   detection over visited servers, candidate fallback when the
//!   target died). Old clients that never advertise the capability
//!   in their `AssociateReq` keep the original wire format and are
//!   always served locally.
//!
//! # Examples
//!
//! A complete create–select–play session:
//!
//! ```
//! use mcam::{McamOp, McamPdu, StackKind, World};
//! use netsim::{SimDuration, SimTime};
//!
//! let mut world = World::builder(7).build();
//! let server = world.add_server("ksr1", StackKind::EstellePS);
//! let client = world.add_client(&server, StackKind::EstellePS, vec![]);
//! world.start();
//!
//! let rsp = world.client_op(&client, McamOp::Associate { user: "demo".into() });
//! assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
//!
//! let rsp = world.client_op(&client, McamOp::CreateMovie {
//!     title: "Quickstart".into(),
//!     format: "XMovie-24".into(),
//!     frame_rate: 25,
//!     frame_count: 50,
//! });
//! assert_eq!(rsp, Some(McamPdu::CreateMovieRsp { ok: true }));
//!
//! let rsp = world.client_op(&client, McamOp::SelectMovie { title: "Quickstart".into() });
//! let params = match rsp {
//!     Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
//!     other => panic!("select failed: {other:?}"),
//! };
//! let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(50));
//! let rsp = world.client_op(&client, McamOp::Play { speed_pct: 100 });
//! assert_eq!(rsp, Some(McamPdu::PlayRsp { ok: true }));
//! world.run_for(SimDuration::from_secs(3));
//! let played = receiver.poll(world.net.now());
//! assert_eq!(played.len(), 50, "all frames played");
//! ```
//!
//! Scaling a popular title past one machine: build an N-server
//! cluster, publish with K replicas, and let `SelectMovie` route each
//! viewer to the replica with the most uncommitted disk bandwidth:
//!
//! ```
//! use directory::MovieEntry;
//! use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
//!
//! let mut world = World::builder(9).build();
//! let cluster = world.add_cluster(ClusterSpec::new("vod", 3, StackKind::EstellePS, Placement::round_robin(2)));
//! let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
//! world.start();
//!
//! let replicas = world.publish_replicated(&cluster, &MovieEntry::new("Hit", "pending"));
//! assert_eq!(replicas.len(), 2, "placed on 2 of the 3 servers");
//!
//! world.client_op(&client, McamOp::Associate { user: "demo".into() });
//! let rsp = world.client_op(&client, McamOp::SelectMovie { title: "Hit".into() });
//! let params = match rsp {
//!     Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
//!     other => panic!("select failed: {other:?}"),
//! };
//! // The stream landed on one of the replicas chosen at publish time.
//! assert!(replicas.contains(&format!("node-{}", params.provider_addr)));
//! ```
//!
//! A replica set follows its demand. Saturate a title's replicas
//! while a cluster member idles, drive the world, and the control
//! plane grows the title onto the idle server — a real, paced copy
//! through the target's write path — then rewrites the directory
//! entry so the very next `SelectMovie` routes to the new copy
//! (tune the cadence with [`RebalanceConfig`] via
//! [`ClusterSpec::rebalance`]; drain a server with
//! [`ClusterHandle::drain`] — see
//! `examples/hot_title_rebalance.rs` for the full grow + drain
//! walkthrough):
//!
//! ```
//! use directory::MovieEntry;
//! use mcam::agents::source_for_entry;
//! use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
//! use netsim::{LinkConfig, NetAddr, SimDuration};
//! use store::{DiskParams, StoreConfig};
//!
//! // Disks sized so each server sustains two ~0.69 Mbit/s viewers.
//! let tight = StoreConfig {
//!     disks: 1,
//!     disk: DiskParams { transfer_bytes_per_sec: 250_000, ..DiskParams::default() },
//!     ..StoreConfig::default()
//! };
//! let mut world = World::builder(11).stream_link(LinkConfig::perfect(SimDuration::from_millis(2))).store(tight).build();
//! let cluster = world.add_cluster(ClusterSpec::new("vod", 3, StackKind::EstellePS, Placement::round_robin(2)));
//! let client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
//! world.start();
//! world.client_op(&client, McamOp::Associate { user: "demo".into() });
//!
//! let mut entry = MovieEntry::new("Hot", "pending");
//! entry.frame_count = 200;
//! let replicas = world.publish_replicated(&cluster, &entry);
//! assert_eq!(replicas.len(), 2, "placed on 2 of the 3 servers");
//!
//! // Four viewers saturate both replicas while the third server idles…
//! let source = source_for_entry(&entry);
//! for i in 0..4u32 {
//!     let provider = cluster.peers.get(&replicas[i as usize % 2]).unwrap();
//!     provider.open(source.clone(), NetAddr(900 + i), world.net.now()).unwrap();
//! }
//! // …so the control plane copies "Hot" onto it and updates the
//! // directory; the next viewer is admitted there.
//! world.run_for(SimDuration::from_secs(30));
//! assert!(cluster.rebalance_stats().copies_completed >= 1);
//! let params = match world.client_op(&client, McamOp::SelectMovie { title: "Hot".into() }) {
//!     Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
//!     other => panic!("select failed: {other:?}"),
//! };
//! assert!(!replicas.contains(&format!("node-{}", params.provider_addr)));
//! ```
//!
//! Control load spreads like stream load. Clients added with
//! [`World::add_client`] are cluster-aware: dial every one of them at
//! the same server and the referral protocol fans their control
//! associations out across the cluster — a client referred away keeps
//! working unchanged, caches its new home for the rest of the
//! association, and is re-referred (select replayed and all) if that
//! home later drains ([`World::add_legacy_client`] opts out; see
//! `examples/client_redirect.rs` for the full fan-out + drain-away
//! walkthrough and [`ControlBalancer`] for the policy and its
//! operator pinning):
//!
//! ```
//! use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
//!
//! let mut world = World::builder(31).build();
//! let cluster = world.add_cluster(ClusterSpec::new("vod", 4, StackKind::EstellePS, Placement::round_robin(2)));
//! // Twelve workstations, all dialing the same server.
//! let clients: Vec<_> = (0..12)
//!     .map(|_| world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]))
//!     .collect();
//! world.start();
//! for (i, c) in clients.iter().enumerate() {
//!     let rsp = world.client_op(c, McamOp::Associate { user: format!("v{i}") });
//!     assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
//! }
//! // Referrals spread the control associations: nobody exceeds
//! // twice the fair share of 3.
//! let counts = cluster.control_connections();
//! assert!(counts.iter().all(|(_, n)| *n <= 6), "{counts:?}");
//! assert!(cluster.control.referrals_issued() > 0);
//! ```
//!
//! # Stream sharing
//!
//! The interval cache exploits close-spaced viewers of one title;
//! **stream sharing** makes them nearly free. Enable it with
//! [`ShareConfig`] on [`World::share_config`] and each server's
//! merge engine batches viewers into multicast groups: one *leader*
//! per position band is the only stream charged against disk
//! admission, followers joining inside the merge window ride the
//! leader's stream from a pinned cache span at zero admission cost,
//! and stragglers inside the catch-up horizon are briefly *fast-fed*
//! at `catch_up_rate_pct` of nominal (charged only the delta) until
//! they converge onto the group. The lifecycle stays honest on both
//! ends: a leader that closes or seeks away hands its disk stream to
//! the nearest follower (re-charged in full before the leader may
//! go), and a follower seeking out of its group either passes full
//! admission for a stream of its own or keeps its seat and gets a
//! 503. `SelectMovie` routing breaks `available_bps` ties toward
//! replicas already streaming the title, so a flash crowd piles onto
//! the shared group instead of burning a disk stream per replica
//! (see `examples/flash_crowd.rs` for the full lifecycle):
//!
//! ```
//! use directory::MovieEntry;
//! use mcam::{ClusterSpec, McamOp, McamPdu, Placement, ShareConfig, StackKind, World};
//! use netsim::{LinkConfig, SimDuration};
//! use store::{DiskParams, StoreConfig};
//!
//! // A disk that fits two full ~0.69 Mbit/s streams…
//! let tight = StoreConfig {
//!     disks: 1,
//!     disk: DiskParams { transfer_bytes_per_sec: 250_000, ..DiskParams::default() },
//!     ..StoreConfig::default()
//! };
//! let mut world = World::builder(13)
//!     .stream_link(LinkConfig::perfect(SimDuration::from_millis(2)))
//!     .store(tight)
//!     .share(ShareConfig::default())
//!     .build();
//! let cluster = world.add_cluster(ClusterSpec::new("vod", 1, StackKind::EstellePS, Placement::round_robin(1)));
//! let clients: Vec<_> = (0..4)
//!     .map(|_| world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]))
//!     .collect();
//! world.start();
//!
//! let mut entry = MovieEntry::new("Premiere", "pending");
//! entry.frame_count = 250;
//! world.publish_replicated(&cluster, &entry);
//!
//! // …serves four simultaneous viewers of one premiere: the first
//! // leads (and is charged one stream), the rest merge in free.
//! for (i, c) in clients.iter().enumerate() {
//!     world.client_op(c, McamOp::Associate { user: format!("v{i}") });
//!     let rsp = world.client_op(c, McamOp::SelectMovie { title: "Premiere".into() });
//!     assert!(matches!(rsp, Some(McamPdu::SelectMovieRsp { params: Some(_) })));
//! }
//! let server = &cluster.servers[0].services;
//! assert_eq!(server.share.stats().merges, 3, "three followers merged free");
//! assert!(server.store.available_bps() > 0, "headroom for the next premiere remains");
//! ```
//!
//! Recording is a first-class workload, not a directory stunt: a
//! `Record` acquires the camera, passes **write-bandwidth admission
//! control**, captures frames through the striped store's write path
//! (free-block allocation, writes on the same elevator/SCAN disk
//! queues playback reads use), finalizes the directory entry with
//! the measured frame count and bitrate, and replicates the finished
//! movie to K servers — after which any replica streams it back:
//!
//! ```
//! use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
//! use netsim::SimDuration;
//!
//! let mut world = World::builder(21).build();
//! let cluster = world.add_cluster(ClusterSpec::new("vod", 2, StackKind::EstellePS, Placement::round_robin(2)));
//! let camera = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
//! let viewer = world.add_client(&cluster.servers[1], StackKind::EstellePS, vec![]);
//! world.start();
//!
//! world.client_op(&camera, McamOp::Associate { user: "camera".into() });
//! world.client_op(&viewer, McamOp::Associate { user: "viewer".into() });
//!
//! // Capture 2 seconds of footage: the reply arrives only after the
//! // capture ran on the virtual clock and every block is durable.
//! let rsp = world.client_op(&camera, McamOp::Record { title: "Home".into(), frames: 50 });
//! assert_eq!(rsp, Some(McamPdu::RecordRsp { ok: true }));
//!
//! // The finalized entry is replicated; the viewer streams it back.
//! let params = match world.client_op(&viewer, McamOp::SelectMovie { title: "Home".into() }) {
//!     Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
//!     other => panic!("select failed: {other:?}"),
//! };
//! assert_eq!(params.movie.frame_count, 50, "entry finalized with the captured count");
//! let mut receiver = world.receiver_for(&viewer, &params, SimDuration::from_millis(50));
//! world.client_op(&viewer, McamOp::Play { speed_pct: 100 });
//! world.run_for(SimDuration::from_secs(3));
//! assert_eq!(receiver.poll(world.net.now()).len(), 50, "the recording plays back");
//! ```
//!
//! # Observability
//!
//! Every run keeps a structured, append-only **event journal** on the
//! simulation clock ([`World::journal`], the `journal` crate): stream
//! admissions and rejections with the admission controller's
//! available bandwidth at decision time, `SelectMovie` routing and
//! failover, referrals issued/followed/failed, every rebalance step,
//! and periodic per-server health snapshots (open streams, control
//! associations, available bandwidth, cache hit ratio, disk-queue
//! depths) sampled by the world's driver every
//! [`World::health_interval`]. Events are hash-chained per actor, so
//! the JSONL dump is tamper-evident and a deterministic re-run
//! reproduces it bit for bit (`journal::replay_check`); counters such
//! as [`ClusterHandle::route_decisions`], [`ClusterHandle::failovers`]
//! and [`ClusterHandle::rebalance_stats`] are views over this journal,
//! not separate state. See `examples/journal_tour.rs` for the full
//! walkthrough.
//!
//! ```
//! use mcam::{McamOp, McamPdu, StackKind, World};
//! use netsim::SimDuration;
//!
//! let mut world = World::builder(17).build();
//! let server = world.add_server("ksr1", StackKind::EstellePS);
//! let client = world.add_client(&server, StackKind::EstellePS, vec![]);
//! world.start();
//! world.client_op(&client, McamOp::Associate { user: "demo".into() });
//! world.client_op(&client, McamOp::CreateMovie {
//!     title: "Traced".into(),
//!     format: "XMovie-24".into(),
//!     frame_rate: 25,
//!     frame_count: 25,
//! });
//! world.client_op(&client, McamOp::SelectMovie { title: "Traced".into() });
//! world.client_op(&client, McamOp::Play { speed_pct: 100 });
//! world.run_for(SimDuration::from_secs(1));
//!
//! let journal = world.journal();
//! journal.verify().expect("hash chain intact");
//! assert!(journal.count(journal::kind::STREAM_ADMIT) >= 1);
//! assert!(journal.count(journal::kind::HEALTH_SNAPSHOT) >= 1);
//! // The recorded JSONL round-trips and re-verifies offline.
//! let events = journal::events_from_jsonl(&journal.to_jsonl()).unwrap();
//! journal::verify_events(&events).unwrap();
//! ```
//!
//! # Choosing a backend
//!
//! Everything above runs on `netsim`'s virtual clock: the [`World`]
//! driver mints every control connection from a
//! [`netsim::SimBackend`], so runs are single-threaded,
//! deterministic, and replayable bit for bit — the journal proof
//! depends on it. The other [`netsim::TransportBackend`] is
//! [`netsim::ThreadedBackend`]: the same [`netsim::Medium`]-based
//! entities run unchanged over cross-thread channel conduits, so N
//! server workers really occupy N cores and throughput is measured
//! on the wall clock. The [`wall_clock`] rig drives it with the
//! exact per-frame codec the simulated world uses
//! (`mtp::encode_frame_into`), recycling each connection's frame
//! buffers on the reverse direction so steady state never touches
//! the heap. Use simulated for every correctness question and for
//! committed benchmark numbers; use threaded when the question is
//! real multi-core throughput:
//!
//! ```
//! use mcam::wall_clock::{self, WallClockConfig};
//! use netsim::TransportBackend;
//!
//! // Deterministic virtual time — the default, and what every
//! // example above used under the hood.
//! let world = mcam::World::builder(5).build();
//! assert!(world.backend().is_simulated());
//!
//! // Real threads, real time: 2 workers x 4 streams x 100 frames.
//! let report = wall_clock::run(WallClockConfig {
//!     threads: 2,
//!     streams_per_thread: 4,
//!     frames_per_stream: 100,
//!     frame_size: 8 * 1024,
//! });
//! assert_eq!(report.frames_delivered, 2 * 4 * 100);
//! assert_eq!(report.sequence_errors, 0);
//! assert_eq!(report.steady_state_allocs, 0, "steady state stays off the heap");
//! assert!(report.frames_per_sec() > 0);
//! ```
//!
//! # Degraded mode
//!
//! Hardware dies; the server degrades instead of failing. Two fault
//! injectors exercise this end to end. [`World::fail_disk`] kills one
//! spindle of a striped store mid-flight: capacity shrinks to the
//! survivors' share, streams stall at the lost blocks, and a paced
//! reconstruction — charged through the *same* admission controller
//! playback draws on, so it can never over-commit the survivors —
//! streams every lost block back onto the remaining arms, unblocking
//! stalled viewers as it sweeps:
//!
//! ```
//! use mcam::{McamOp, McamPdu, StackKind, World};
//! use netsim::SimDuration;
//!
//! let mut world = World::builder(41).build();
//! let server = world.add_server("ksr1", StackKind::EstellePS);
//! let client = world.add_client(&server, StackKind::EstellePS, vec![]);
//! world.start();
//! world.client_op(&client, McamOp::Associate { user: "demo".into() });
//! world.client_op(&client, McamOp::CreateMovie {
//!     title: "Fragile".into(),
//!     format: "XMovie-24".into(),
//!     frame_rate: 25,
//!     frame_count: 400,
//! });
//! let params = match world.client_op(&client, McamOp::SelectMovie { title: "Fragile".into() }) {
//!     Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
//!     other => panic!("select failed: {other:?}"),
//! };
//! let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(50));
//! world.client_op(&client, McamOp::Play { speed_pct: 100 });
//! world.run_for(SimDuration::from_secs(1));
//!
//! // One spindle dies under the running stream.
//! let (lost, reserve_bps) = world.fail_disk(&server, 0);
//! assert!(lost > 0, "the dead arm held blocks");
//! assert!(reserve_bps > 0, "reconstruction admitted");
//! world.run_for(SimDuration::from_secs(20));
//! assert!(!server.services.store.rebuild_active(), "rebuild completed");
//! assert_eq!(receiver.poll(world.net.now()).len(), 400, "the viewer survived the spindle");
//! let journal = world.journal();
//! journal.verify().expect("hash chain intact across the fault");
//! assert_eq!(journal.count(journal::kind::DISK_FAILED), 1);
//! assert_eq!(journal.count(journal::kind::REBUILD_COMPLETED), 1);
//! ```
//!
//! [`World::crash_server`] kills a whole machine: its streams die,
//! the cluster registry marks the location crashed (routing,
//! placement, referral, and re-dials all skip it), clients homed
//! there get a provider abort — referral-capable ones fail over to a
//! cached candidate and replay their session up to the last played
//! frame (journaled as `StreamFailedOver`) — and the rebalance
//! controller re-replicates the titles the crash left
//! under-replicated:
//!
//! ```
//! use directory::MovieEntry;
//! use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
//!
//! let mut world = World::builder(43).build();
//! let cluster = world.add_cluster(ClusterSpec::new("vod", 2, StackKind::EstellePS, Placement::round_robin(2)));
//! let client = world.add_client(&cluster.servers[1], StackKind::EstellePS, vec![]);
//! world.start();
//! world.publish_replicated(&cluster, &MovieEntry::new("Durable", "pending"));
//! world.client_op(&client, McamOp::Associate { user: "demo".into() });
//!
//! world.crash_server(&cluster.servers[0]);
//! // The survivor still serves the title; the dead replica is skipped.
//! let params = match world.client_op(&client, McamOp::SelectMovie { title: "Durable".into() }) {
//!     Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
//!     other => panic!("select failed: {other:?}"),
//! };
//! let survivor = cluster.servers[1].services.sps.location();
//! assert_eq!(format!("node-{}", params.provider_addr), survivor);
//! assert_eq!(world.journal().count(journal::kind::SERVER_CRASHED), 1);
//! world.journal().verify().expect("chain intact across the crash");
//! ```

#![warn(missing_docs)]

pub mod agents;
mod app;
mod mca;
mod pdus;
pub mod server;
mod service;
mod sps;
mod stacks;
pub mod wall_clock;
mod world;

pub use agents::{ClusterController, SpsRegistry};
pub use app::{AppMachine, TO_MCA as APP_TO_MCA, TO_ROOT as APP_TO_ROOT};
pub use cluster::{
    ControlBalancer, DrainError, Placement, PlacementStrategy, RebalanceConfig, RebalanceStats,
};
pub use mca::{ClientMca, CONNECTING, CTRL, DOWN, P_RELEASING, READY, UNBOUND, UP, WAITING};
pub use pdus::{McamPdu, MovieDesc, StreamParams};
pub use server::{ServerMca, ServerRoot, ServerServices};
pub use service::{
    AssocSettled, DirOp, DirOutcome, DirRequest, DirResponse, EquipOp, EquipOutcome, EquipRequest,
    EquipResponse, McamCnf, McamOp, McamReq, ReferralSignal, ReferralStale, StartAssociate,
    StreamOp, StreamOutcome, StreamRequest, StreamResponse,
};
pub use share::{ShareConfig, ShareStats};
pub use sps::{RecordedMovie, SpsError, StreamProviderSystem};
pub use stacks::{
    wire_lower_stack, wire_lower_stack_tagged, ClientRoot, ControlDial, ReferralEnd,
    ReferralFollower, StackKind, ERR_REFERRAL, ROOT_TO_APP, ROOT_TO_MCA,
};
pub use world::{ClientHandle, ClusterHandle, ClusterSpec, ServerHandle, World, WorldBuilder};
