//! The server-side MCAM entity: server MCA with DUA/SUA/EUA child
//! agents, and the server root module that spawns one entity per
//! incoming connection (paper §4.1: "a protocol entity implemented as
//! a process can accept a new CONNECT request and then create a new
//! child module to handle the new connection").

use crate::agents::{
    source_for_entry, source_for_title, ClusterController, DuaAgent, EuaAgent, SpsRegistry,
    SuaAgent, AGENT_IP,
};
use crate::pdus::{McamPdu, MovieDesc, StreamParams};
use crate::service::{
    DirOp, DirOutcome, DirRequest, DirResponse, EquipOp, EquipOutcome, EquipRequest, EquipResponse,
    StreamOp, StreamOutcome, StreamRequest, StreamResponse,
};
use crate::sps::StreamProviderSystem;
use crate::stacks::{wire_lower_stack_tagged, StackKind};
use directory::{Dn, Dua, MovieEntry};
use equipment::Eua;
use estelle::{
    downcast, ip, Ctx, Interaction, IpIndex, ModuleKind, ModuleLabels, StateId, StateMachine,
    Transition,
};
use netsim::{Medium, SimDuration};
use parking_lot::Mutex;
use presentation::service::{PAbortInd, PConInd, PConRsp, PDataInd, PDataReq, PRelInd, PRelRsp};
use std::collections::HashMap;
use std::sync::Arc;

/// Interaction point to the presentation service.
pub const DOWN: IpIndex = IpIndex(0);
/// Interaction point to the DUA child agent.
pub const TO_DUA: IpIndex = IpIndex(1);
/// Interaction point to the SUA child agent.
pub const TO_SUA: IpIndex = IpIndex(2);
/// Interaction point to the EUA child agent.
pub const TO_EUA: IpIndex = IpIndex(3);

/// Awaiting an association.
pub const IDLE: StateId = StateId(0);
/// Associated; no server-side operation outstanding.
pub const READY: StateId = StateId(1);
/// An agent round-trip is outstanding.
pub const BUSY: StateId = StateId(2);

const COST_REQ: SimDuration = SimDuration::from_micros(250);

/// How long a referred-away entity survives before the root reaps it:
/// long enough for the referral reply to drain through its stack
/// modules (whose per-transition costs are microseconds) and onto the
/// wire.
const REAP_GRACE: SimDuration = SimDuration::from_millis(20);

/// MCAM error code for disk-bandwidth admission rejection (server
/// saturated; retry later or elsewhere).
pub const ERR_ADMISSION: u32 = 503;

fn is<T: Interaction>(msg: Option<&dyn Interaction>) -> bool {
    msg.is_some_and(|m| m.is::<T>())
}

/// Shared handles every server entity needs.
#[derive(Debug, Clone)]
pub struct ServerServices {
    /// Directory client.
    pub dua: Dua,
    /// Directory subtree holding the movies.
    pub base: Dn,
    /// Stream provider of this server machine.
    pub sps: Arc<StreamProviderSystem>,
    /// The machine's continuous-media block store (disk stripes,
    /// buffer cache, admission control) feeding the stream provider.
    pub store: Arc<store::BlockStore>,
    /// The machine's stream-sharing merge engine (leader/follower
    /// flash-crowd batching). Inspect its groups and counters here;
    /// whether it merges at all is the world's `share_config` knob.
    pub share: Arc<share::ShareManager>,
    /// The cluster's stream providers by location: `SelectMovie`
    /// routing resolves a movie's replica locations here and probes
    /// each replica's admission load. A standalone server registers
    /// only itself.
    pub peers: Arc<SpsRegistry>,
    /// The cluster's control plane, shared across its servers and
    /// with the world's publish path: it owns replica placement,
    /// adopts finished recordings (replicating them to `k - 1`
    /// peers), grows hot titles onto idle servers, and drains
    /// servers out of service.
    pub rebalancer: Arc<ClusterController>,
    /// The cluster's control-association balancer: every accepted
    /// association is accounted here, and an incoming association
    /// (or a `SelectMovie` on a draining member) consults it to
    /// decide whether the client should be *referred* to a
    /// less-loaded member instead of served locally.
    pub control: Arc<cluster::ControlBalancer>,
    /// Server entities whose client was referred away: the client
    /// abandons the connection without a release handshake, so the
    /// entity reports itself here (with the instant it may be
    /// collected) and the [`ServerRoot`] reaps it — MCA plus lower
    /// stack — once the grace period has let the referral reply
    /// drain through the stack.
    pub reaper: Arc<Mutex<Vec<(estelle::ModuleId, netsim::SimTime)>>>,
    /// Frame rate cameras capture at (the world's record knob).
    pub record_frame_rate: u32,
    /// Equipment client for the server site.
    pub eua: Eua,
    /// The site's equipment control agent (for direct inspection and
    /// competing reservations in tests).
    pub eca: Arc<equipment::Eca>,
    /// Equipment site name.
    pub site: String,
    /// The world's event journal: route decisions, failovers,
    /// referrals, and admission outcomes are chained here under this
    /// server's location.
    pub journal: Arc<journal::Journal>,
}

impl ServerServices {
    /// The stream provider at `location`, or the local one when the
    /// location is not registered (single-server worlds, seeded
    /// entries with symbolic locations).
    pub fn sps_at(&self, location: &str) -> Arc<StreamProviderSystem> {
        self.peers
            .get(location)
            .unwrap_or_else(|| Arc::clone(&self.sps))
    }
}

/// The stream a server entity currently has selected, with the
/// replica location hosting it.
#[derive(Debug, Clone)]
struct Selected {
    params: StreamParams,
    location: String,
}

#[derive(Debug, Clone)]
enum Pending {
    Create,
    Delete,
    List,
    Query,
    Modify,
    SelectLookup {
        client_addr: u32,
    },
    SelectOpen {
        entry: MovieEntry,
        client_addr: u32,
        /// Replica location currently being tried (for the journal's
        /// failover trail).
        current: String,
        /// Replica locations still untried, best-first; `SelectMovie`
        /// falls over to the next one when a replica rejects.
        remaining: Vec<String>,
        /// Replicas attempted so far (for the final error report).
        tried: usize,
    },
    Deselect,
    Play,
    Pause,
    Stop,
    Seek,
    RecordAcquire {
        title: String,
        frames: u64,
    },
    /// Recording admission outstanding at the SUA.
    RecordOpen {
        title: String,
    },
    /// Capture in progress: the MCA waits (spontaneously polled) for
    /// the SPS to finish capturing and persisting.
    RecordCapture {
        title: String,
        stream_id: u32,
    },
    /// Finalize/replicate outstanding at the SUA.
    RecordClose {
        title: String,
    },
    RecordAdd,
    RecordRelease {
        verdict: RecordVerdict,
    },
}

/// How a record attempt ended, carried across the camera-release
/// round-trip so the reply matches the failure.
#[derive(Debug, Clone)]
enum RecordVerdict {
    Ok,
    Failed,
    /// Write-bandwidth admission refused the recording.
    Saturated {
        demanded_bps: u64,
        available_bps: u64,
    },
}

/// The server-side Movie Control Agent.
#[derive(Debug)]
pub struct ServerMca {
    services: ServerServices,
    /// Associated user, when bound.
    pub user: Option<String>,
    /// The associated client advertised referral support.
    client_referral_capable: bool,
    /// This entity's association is counted in the control balancer.
    counted: bool,
    selected: Option<Selected>,
    /// Recording session in progress on the local provider, if any.
    recording: Option<u32>,
    pending: Option<Pending>,
    /// Requests processed.
    pub requests: u64,
    /// Protocol/decode errors observed.
    pub protocol_errors: u64,
    /// Labels inherited by the child agents.
    labels: ModuleLabels,
}

impl ServerMca {
    /// Creates a server MCA over the shared services.
    pub fn new(services: ServerServices, labels: ModuleLabels) -> Self {
        ServerMca {
            services,
            user: None,
            client_referral_capable: false,
            counted: false,
            selected: None,
            recording: None,
            pending: None,
            requests: 0,
            protocol_errors: 0,
            labels,
        }
    }

    /// Records an event under this server's hash chain.
    fn journal(&self, kind: journal::EventKind) {
        self.services
            .journal
            .record(&self.services.sps.location(), kind);
    }

    /// Stops counting this entity's association against the local
    /// server (released, aborted, or referred away).
    fn drop_association(&mut self) {
        if self.counted {
            self.services
                .control
                .disconnected(&self.services.sps.location());
            self.counted = false;
        }
        self.user = None;
    }

    /// Closes the selected stream, if any, on whichever replica hosts
    /// it, and aborts an in-progress recording (the association died
    /// under it; its bandwidth and blocks are reclaimed).
    fn close_selected(&mut self) {
        if let Some(sel) = self.selected.take() {
            let _ = self
                .services
                .sps_at(&sel.location)
                .close(sel.params.stream_id);
        }
        if let Some(id) = self.recording.take() {
            let _ = self.services.sps.close(id);
        }
    }

    fn reply(&self, ctx: &mut Ctx<'_>, pdu: McamPdu) {
        ctx.output(
            DOWN,
            PDataReq {
                context_id: 1,
                user_data: pdu.encode(),
            },
        );
    }

    fn error(&self, ctx: &mut Ctx<'_>, code: u32, message: &str) {
        self.reply(
            ctx,
            McamPdu::ErrorRsp {
                code,
                message: message.into(),
            },
        );
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, pdu: McamPdu) {
        use McamPdu::*;
        self.requests += 1;
        match pdu {
            AssociateReq { .. } => {
                // Association is carried in the P-CONNECT exchange;
                // a second one inside the data phase is an error.
                self.protocol_errors += 1;
                self.error(ctx, 902, "already associated");
            }
            ReleaseReq => {
                // Tear down any CM stream, then confirm.
                self.close_selected();
                self.reply(ctx, ReleaseRsp);
            }
            CreateMovieReq {
                title,
                format,
                frame_rate,
                frame_count,
            } => {
                let mut entry =
                    MovieEntry::new(title, format!("node-{}", self.services.sps.addr().0));
                entry.format = format;
                entry.frame_rate = frame_rate.clamp(1, 120);
                entry.frame_count = frame_count;
                self.pending = Some(Pending::Create);
                ctx.output(TO_DUA, DirRequest(DirOp::Add { entry }));
                ctx.goto(BUSY);
            }
            DeleteMovieReq { title } => {
                self.pending = Some(Pending::Delete);
                ctx.output(TO_DUA, DirRequest(DirOp::Remove { title }));
                ctx.goto(BUSY);
            }
            SelectMovieReq { title, client_addr } => {
                // Drain-away: a draining (or operator-pinned) server
                // hands its capable clients to a live member at their
                // next select, so control associations leave well
                // before decommission — and a server that already
                // decommissioned (drained instantly, with clients
                // still attached) refers them the same way instead of
                // serving as a zombie. The client replays the select
                // at the target; this entity's association is over.
                if self.client_referral_capable {
                    let local = self.services.sps.location();
                    if self.services.peers.is_draining(&local)
                        || self.services.peers.get(&local).is_none()
                        || self.services.control.is_pinned(&local)
                    {
                        let loads = self.services.peers.loads();
                        if let Some(target) = self.services.control.refer_target(&local, &loads) {
                            self.journal(journal::EventKind::ReferralIssued {
                                target: target.clone(),
                            });
                            let candidates = self.services.control.candidates(&loads);
                            self.reply(ctx, McamPdu::ReferralRsp { target, candidates });
                            self.close_selected();
                            self.drop_association();
                            // The client is gone for good: schedule
                            // this whole entity for reaping.
                            self.services
                                .reaper
                                .lock()
                                .push((ctx.self_ip(DOWN).module, ctx.now() + REAP_GRACE));
                            ctx.goto(IDLE);
                            return;
                        }
                    }
                }
                self.pending = Some(Pending::SelectLookup { client_addr });
                ctx.output(TO_DUA, DirRequest(DirOp::Lookup { title }));
                ctx.goto(BUSY);
            }
            DeselectMovieReq => match self.selected.take() {
                Some(sel) => {
                    self.pending = Some(Pending::Deselect);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Close {
                            stream_id: sel.params.stream_id,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            ListMoviesReq { title_contains } => {
                self.pending = Some(Pending::List);
                ctx.output(
                    TO_DUA,
                    DirRequest(DirOp::List {
                        contains: title_contains,
                    }),
                );
                ctx.goto(BUSY);
            }
            QueryAttrsReq { title, attrs } => {
                self.pending = Some(Pending::Query);
                ctx.output(TO_DUA, DirRequest(DirOp::Query { title, attrs }));
                ctx.goto(BUSY);
            }
            ModifyAttrsReq { title, puts } => {
                self.pending = Some(Pending::Modify);
                ctx.output(TO_DUA, DirRequest(DirOp::Modify { title, puts }));
                ctx.goto(BUSY);
            }
            PlayReq { speed_pct } => match &self.selected {
                Some(sel) => {
                    self.pending = Some(Pending::Play);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Play {
                            stream_id: sel.params.stream_id,
                            speed_pct,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            PauseReq => match &self.selected {
                Some(sel) => {
                    self.pending = Some(Pending::Pause);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Pause {
                            stream_id: sel.params.stream_id,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            StopReq => match &self.selected {
                Some(sel) => {
                    self.pending = Some(Pending::Stop);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Stop {
                            stream_id: sel.params.stream_id,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            SeekReq { frame } => match &self.selected {
                Some(sel) => {
                    self.pending = Some(Pending::Seek);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Seek {
                            stream_id: sel.params.stream_id,
                            frame,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            RecordReq { title, frames } => {
                self.pending = Some(Pending::RecordAcquire { title, frames });
                ctx.output(
                    TO_EUA,
                    EquipRequest(EquipOp::AcquireClass(equipment::EquipmentClass::Camera)),
                );
                ctx.goto(BUSY);
            }
            other => {
                self.protocol_errors += 1;
                self.error(ctx, 903, &format!("unexpected PDU {other:?}"));
            }
        }
    }

    fn on_dir_response(&mut self, ctx: &mut Ctx<'_>, outcome: DirOutcome) {
        let pending = self.pending.take();
        match pending {
            Some(Pending::Create) => {
                self.reply(
                    ctx,
                    McamPdu::CreateMovieRsp {
                        ok: outcome == DirOutcome::Done,
                    },
                );
                ctx.goto(READY);
            }
            Some(Pending::Delete) => {
                self.reply(
                    ctx,
                    McamPdu::DeleteMovieRsp {
                        ok: outcome == DirOutcome::Done,
                    },
                );
                ctx.goto(READY);
            }
            Some(Pending::List) => {
                let titles = match outcome {
                    DirOutcome::Titles(t) => t,
                    _ => Vec::new(),
                };
                self.reply(ctx, McamPdu::ListMoviesRsp { titles });
                ctx.goto(READY);
            }
            Some(Pending::Query) => {
                let attrs = match outcome {
                    DirOutcome::Attrs(a) => Some(a),
                    _ => None,
                };
                self.reply(ctx, McamPdu::QueryAttrsRsp { attrs });
                ctx.goto(READY);
            }
            Some(Pending::Modify) => {
                self.reply(
                    ctx,
                    McamPdu::ModifyAttrsRsp {
                        ok: outcome == DirOutcome::Done,
                    },
                );
                ctx.goto(READY);
            }
            Some(Pending::SelectLookup { client_addr }) => match outcome {
                DirOutcome::Movie(entry) => {
                    let movie = source_for_entry(&entry);
                    // Routing step: order the movie's replicas by the
                    // disk bandwidth their admission controllers still
                    // have uncommitted — breaking ties towards a
                    // replica already streaming the title in a merge
                    // group, where this viewer is likely admitted for
                    // free — and try the best first. With no
                    // registered replica (seeded entries with
                    // symbolic locations, or every replica dead or
                    // draining), fall back to the cluster's live
                    // servers: the local one first (unless it is
                    // itself draining — a new stream must not land on
                    // it), then the peers most-available-first, so a
                    // momentarily busy local store fails over instead
                    // of refusing while a peer idles.
                    let mut candidates: Vec<String> = self
                        .services
                        .peers
                        .route_by(&entry.replicas, |sps| sps.shares_source(&movie))
                        .into_iter()
                        .map(|(location, _)| location)
                        .collect();
                    if candidates.is_empty() {
                        let local = self.services.sps.location();
                        let mut fallback: Vec<(u64, String)> = self
                            .services
                            .peers
                            .loads()
                            .into_iter()
                            .filter(|s| !s.draining && !s.crashed && s.location != local)
                            .map(|s| (s.load.available_bps, s.location))
                            .collect();
                        fallback.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                        // Local service only while the server is in
                        // the cluster: draining and decommissioned
                        // machines must not host new streams.
                        if self.services.peers.get(&local).is_some()
                            && !self.services.peers.is_draining(&local)
                        {
                            candidates.push(local);
                        }
                        candidates.extend(fallback.into_iter().map(|(_, l)| l));
                    }
                    let considered = candidates.len().max(1) as u32;
                    let location = if candidates.is_empty() {
                        // Nothing live anywhere: last-resort local
                        // service keeps single-server worlds working.
                        None
                    } else {
                        Some(candidates.remove(0))
                    };
                    let current = location
                        .clone()
                        .unwrap_or_else(|| self.services.sps.location());
                    self.journal(journal::EventKind::RouteDecision {
                        title: entry.title.clone(),
                        target: current.clone(),
                        candidates: considered,
                    });
                    self.pending = Some(Pending::SelectOpen {
                        entry,
                        client_addr,
                        current,
                        remaining: candidates,
                        tried: 1,
                    });
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Open {
                            movie,
                            dest: client_addr,
                            location,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                _ => {
                    self.reply(ctx, McamPdu::SelectMovieRsp { params: None });
                    ctx.goto(READY);
                }
            },
            Some(Pending::RecordAdd) => {
                let verdict = if outcome == DirOutcome::Done {
                    RecordVerdict::Ok
                } else {
                    RecordVerdict::Failed
                };
                self.pending = Some(Pending::RecordRelease { verdict });
                ctx.output(TO_EUA, EquipRequest(EquipOp::ReleaseAll));
                ctx.goto(BUSY);
            }
            other => {
                self.protocol_errors += 1;
                self.pending = other;
                ctx.goto(READY);
            }
        }
    }

    fn on_stream_response(&mut self, ctx: &mut Ctx<'_>, outcome: StreamOutcome) {
        let pending = self.pending.take();
        match pending {
            Some(Pending::SelectOpen {
                entry,
                client_addr,
                current,
                mut remaining,
                tried,
            }) => match outcome {
                StreamOutcome::Opened {
                    stream_id,
                    provider_addr,
                    location,
                } => {
                    let params = StreamParams {
                        provider_addr,
                        stream_id,
                        movie: MovieDesc {
                            title: entry.title.clone(),
                            format: entry.format.clone(),
                            frame_rate: entry.frame_rate,
                            frame_count: entry.frame_count,
                        },
                    };
                    self.selected = Some(Selected {
                        params: params.clone(),
                        location,
                    });
                    self.reply(
                        ctx,
                        McamPdu::SelectMovieRsp {
                            params: Some(params),
                        },
                    );
                    ctx.goto(READY);
                }
                StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                } => {
                    if remaining.is_empty() {
                        self.error(
                            ctx,
                            ERR_ADMISSION,
                            &format!(
                                "admission rejected on all {tried} replica(s): stream \
                                 needs {demanded_bps} bps, {available_bps} bps of disk \
                                 bandwidth available on the last one tried"
                            ),
                        );
                        ctx.goto(READY);
                    } else {
                        // Failover: the chosen replica filled up (or
                        // was already fuller than its load snapshot
                        // said); try the next-best one.
                        let next = remaining.remove(0);
                        self.journal(journal::EventKind::Failover {
                            title: entry.title.clone(),
                            from: current,
                            to: next.clone(),
                        });
                        let movie = source_for_entry(&entry);
                        let location = Some(next.clone());
                        self.pending = Some(Pending::SelectOpen {
                            entry,
                            client_addr,
                            current: next,
                            remaining,
                            tried: tried + 1,
                        });
                        ctx.output(
                            TO_SUA,
                            StreamRequest(StreamOp::Open {
                                movie,
                                dest: client_addr,
                                location,
                            }),
                        );
                        ctx.goto(BUSY);
                    }
                }
                _ => {
                    self.reply(ctx, McamPdu::SelectMovieRsp { params: None });
                    ctx.goto(READY);
                }
            },
            Some(Pending::RecordOpen { title }) => match outcome {
                StreamOutcome::RecordStarted { stream_id } => {
                    // Capture runs on the virtual clock; the MCA holds
                    // the association BUSY and a spontaneous
                    // transition fires when the SPS reports the
                    // recording captured and durable.
                    self.recording = Some(stream_id);
                    self.pending = Some(Pending::RecordCapture { title, stream_id });
                    ctx.goto(BUSY);
                }
                StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                } => {
                    // The disks cannot absorb the recording next to
                    // the admitted streams: give the camera back and
                    // report saturation, not failure.
                    self.pending = Some(Pending::RecordRelease {
                        verdict: RecordVerdict::Saturated {
                            demanded_bps,
                            available_bps,
                        },
                    });
                    ctx.output(TO_EUA, EquipRequest(EquipOp::ReleaseAll));
                    ctx.goto(BUSY);
                }
                _ => {
                    self.pending = Some(Pending::RecordRelease {
                        verdict: RecordVerdict::Failed,
                    });
                    ctx.output(TO_EUA, EquipRequest(EquipOp::ReleaseAll));
                    ctx.goto(BUSY);
                }
            },
            Some(Pending::RecordClose { title }) => {
                self.recording = None;
                match outcome {
                    StreamOutcome::Recorded {
                        frame_count,
                        frame_rate,
                        bitrate_bps,
                        replicas,
                    } => {
                        // Finalize the directory entry with what was
                        // actually captured and where it now lives.
                        let primary = replicas
                            .first()
                            .cloned()
                            .unwrap_or_else(|| self.services.sps.location());
                        let mut entry = MovieEntry::new(title, primary);
                        entry.frame_count = frame_count;
                        entry.frame_rate = frame_rate.clamp(1, 120);
                        entry.bitrate_bps = bitrate_bps;
                        if !replicas.is_empty() {
                            entry.set_replicas(replicas);
                        }
                        self.pending = Some(Pending::RecordAdd);
                        ctx.output(TO_DUA, DirRequest(DirOp::Add { entry }));
                        ctx.goto(BUSY);
                    }
                    _ => {
                        self.pending = Some(Pending::RecordRelease {
                            verdict: RecordVerdict::Failed,
                        });
                        ctx.output(TO_EUA, EquipRequest(EquipOp::ReleaseAll));
                        ctx.goto(BUSY);
                    }
                }
            }
            Some(Pending::Deselect) => {
                self.reply(ctx, McamPdu::DeselectMovieRsp);
                ctx.goto(READY);
            }
            Some(Pending::Play) => {
                if let StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                } = outcome
                {
                    self.error(
                        ctx,
                        ERR_ADMISSION,
                        &format!(
                            "admission rejected: speed-up needs {demanded_bps} bps, \
                             {available_bps} bps of disk bandwidth available"
                        ),
                    );
                } else {
                    self.reply(
                        ctx,
                        McamPdu::PlayRsp {
                            ok: outcome == StreamOutcome::Done,
                        },
                    );
                }
                ctx.goto(READY);
            }
            Some(Pending::Pause) => {
                // A shared follower pausing out of its merge group
                // needs a full disk stream of its own; when admission
                // cannot take it the pause is refused honestly and the
                // viewer keeps riding the group.
                if let StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                } = outcome
                {
                    self.error(
                        ctx,
                        ERR_ADMISSION,
                        &format!(
                            "admission rejected: leaving the merge group needs \
                             {demanded_bps} bps, {available_bps} bps of disk \
                             bandwidth available"
                        ),
                    );
                } else {
                    self.reply(ctx, McamPdu::PauseRsp);
                }
                ctx.goto(READY);
            }
            Some(Pending::Stop) => {
                self.reply(ctx, McamPdu::StopRsp);
                ctx.goto(READY);
            }
            Some(Pending::Seek) => {
                // Same honesty for seeks: a group member that cannot
                // re-admit its own stream stays merged at its old
                // position and the client is told why.
                if let StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                } = outcome
                {
                    self.error(
                        ctx,
                        ERR_ADMISSION,
                        &format!(
                            "admission rejected: leaving the merge group needs \
                             {demanded_bps} bps, {available_bps} bps of disk \
                             bandwidth available"
                        ),
                    );
                } else {
                    self.reply(
                        ctx,
                        McamPdu::SeekRsp {
                            ok: outcome == StreamOutcome::Done,
                        },
                    );
                }
                ctx.goto(READY);
            }
            other => {
                self.protocol_errors += 1;
                self.pending = other;
                ctx.goto(READY);
            }
        }
    }

    fn on_equip_response(&mut self, ctx: &mut Ctx<'_>, outcome: EquipOutcome) {
        let pending = self.pending.take();
        match pending {
            Some(Pending::RecordAcquire { title, frames }) => match outcome {
                EquipOutcome::Acquired(_) => {
                    // Camera in hand: ask the stream provider to open
                    // the admission-controlled recording session.
                    let movie = source_for_title(
                        &title,
                        self.services.record_frame_rate.clamp(1, 120),
                        frames,
                    );
                    self.pending = Some(Pending::RecordOpen { title });
                    ctx.output(TO_SUA, StreamRequest(StreamOp::OpenRecord { movie }));
                    ctx.goto(BUSY);
                }
                _ => {
                    self.reply(ctx, McamPdu::RecordRsp { ok: false });
                    ctx.goto(READY);
                }
            },
            Some(Pending::RecordRelease { verdict }) => {
                match verdict {
                    RecordVerdict::Ok => self.reply(ctx, McamPdu::RecordRsp { ok: true }),
                    RecordVerdict::Failed => self.reply(ctx, McamPdu::RecordRsp { ok: false }),
                    RecordVerdict::Saturated {
                        demanded_bps,
                        available_bps,
                    } => self.error(
                        ctx,
                        ERR_ADMISSION,
                        &format!(
                            "admission rejected: recording needs {demanded_bps} bps, \
                             {available_bps} bps of disk bandwidth available"
                        ),
                    ),
                }
                ctx.goto(READY);
            }
            other => {
                self.protocol_errors += 1;
                self.pending = other;
                ctx.goto(READY);
            }
        }
    }
}

impl StateMachine for ServerMca {
    fn num_ips(&self) -> usize {
        4
    }

    fn initial_state(&self) -> StateId {
        IDLE
    }

    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        // Fig. 3: the MCA's three sibling agents with external bodies.
        let dua = ctx.create_child(
            "dua",
            ModuleKind::Process,
            self.labels,
            DuaAgent::new(self.services.dua.clone(), self.services.base.clone()),
        );
        let sua = ctx.create_child(
            "sua",
            ModuleKind::Process,
            self.labels,
            SuaAgent::new(
                Arc::clone(&self.services.sps),
                Arc::clone(&self.services.peers),
                Arc::clone(&self.services.rebalancer),
            ),
        );
        let eua = ctx.create_child(
            "eua",
            ModuleKind::Process,
            self.labels,
            EuaAgent::new(self.services.eua.clone(), self.services.site.clone()),
        );
        ctx.connect(ctx.self_ip(TO_DUA), ip(dua, AGENT_IP));
        ctx.connect(ctx.self_ip(TO_SUA), ip(sua, AGENT_IP));
        ctx.connect(ctx.self_ip(TO_EUA), ip(eua, AGENT_IP));
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on("assoc-ind", IDLE, DOWN, |m: &mut Self, ctx, msg| {
                let ind = downcast::<PConInd>(msg.unwrap()).unwrap();
                match McamPdu::decode(&ind.user_data) {
                    Ok(McamPdu::AssociateReq {
                        user,
                        referral_capable,
                    }) => {
                        // Control-plane balancing: a capable client
                        // is referred to a less-loaded (or simply
                        // non-draining) cluster member instead of
                        // piling onto this one. Legacy clients are
                        // always served locally.
                        if referral_capable {
                            let local = m.services.sps.location();
                            let loads = m.services.peers.loads();
                            if let Some(target) = m.services.control.refer_target(&local, &loads) {
                                m.journal(journal::EventKind::ReferralIssued {
                                    target: target.clone(),
                                });
                                let referral = McamPdu::ReferralRsp {
                                    target,
                                    candidates: m.services.control.candidates(&loads),
                                };
                                ctx.output(
                                    DOWN,
                                    PConRsp {
                                        accept: false,
                                        user_data: referral.encode(),
                                    },
                                );
                                // The refused client re-dials another
                                // server; this entity will never see
                                // another PDU — reap it.
                                m.services
                                    .reaper
                                    .lock()
                                    .push((ctx.self_ip(DOWN).module, ctx.now() + REAP_GRACE));
                                return;
                            }
                        }
                        m.user = Some(user);
                        m.client_referral_capable = referral_capable;
                        m.services.control.connected(&m.services.sps.location());
                        m.counted = true;
                        let aare = McamPdu::AssociateRsp { accepted: true };
                        ctx.output(
                            DOWN,
                            PConRsp {
                                accept: true,
                                user_data: aare.encode(),
                            },
                        );
                        ctx.goto(READY);
                    }
                    _ => {
                        m.protocol_errors += 1;
                        ctx.output(
                            DOWN,
                            PConRsp {
                                accept: false,
                                user_data: Vec::new(),
                            },
                        );
                    }
                }
            })
            .provided(|_, msg| is::<PConInd>(msg))
            .cost(COST_REQ),
            Transition::on("request", READY, DOWN, |m: &mut Self, ctx, msg| {
                let ind = downcast::<PDataInd>(msg.unwrap()).unwrap();
                match McamPdu::decode(&ind.user_data) {
                    Ok(pdu) if pdu.is_request() => m.dispatch(ctx, pdu),
                    Ok(_) | Err(_) => {
                        m.protocol_errors += 1;
                        m.error(ctx, 904, "malformed request");
                    }
                }
            })
            .provided(|_, msg| is::<PDataInd>(msg))
            .cost(COST_REQ),
            Transition::on("dua-rsp", BUSY, TO_DUA, |m: &mut Self, ctx, msg| {
                let rsp = downcast::<DirResponse>(msg.unwrap()).unwrap();
                m.on_dir_response(ctx, rsp.0);
            })
            .cost(COST_REQ),
            Transition::on("sua-rsp", BUSY, TO_SUA, |m: &mut Self, ctx, msg| {
                let rsp = downcast::<StreamResponse>(msg.unwrap()).unwrap();
                m.on_stream_response(ctx, rsp.0);
            })
            .cost(COST_REQ),
            Transition::on("eua-rsp", BUSY, TO_EUA, |m: &mut Self, ctx, msg| {
                let rsp = downcast::<EquipResponse>(msg.unwrap()).unwrap();
                m.on_equip_response(ctx, rsp.0);
            })
            .cost(COST_REQ),
            // Capture completion is a state of the stream provider,
            // not a message: poll it spontaneously while a recording
            // is pending and finalize once every frame is captured
            // and every block durable.
            Transition::spontaneous("record-done", BUSY, |m: &mut Self, ctx, _| {
                let Some(Pending::RecordCapture { title, stream_id }) = m.pending.take() else {
                    unreachable!("guarded by the provided clause");
                };
                m.pending = Some(Pending::RecordClose {
                    title: title.clone(),
                });
                ctx.output(
                    TO_SUA,
                    StreamRequest(StreamOp::CloseRecord { stream_id, title }),
                );
            })
            .provided(|m, _| {
                matches!(
                    &m.pending,
                    Some(Pending::RecordCapture { stream_id, .. })
                        if m.services.sps.recording_finished(*stream_id)
                )
            })
            .cost(COST_REQ),
            Transition::on("rel-ind", READY, DOWN, |m: &mut Self, ctx, msg| {
                let _ = downcast::<PRelInd>(msg.unwrap()).unwrap();
                m.close_selected();
                m.drop_association();
                ctx.output(DOWN, PRelRsp);
            })
            .provided(|_, msg| is::<PRelInd>(msg))
            .to(IDLE)
            .cost(COST_REQ),
            Transition::on("abort-ind", IDLE, DOWN, |m: &mut Self, ctx, msg| {
                let _ = downcast::<PAbortInd>(msg.unwrap()).unwrap();
                m.close_selected();
                m.drop_association();
                let _ = ctx;
            })
            .any_state()
            .provided(|_, msg| is::<PAbortInd>(msg))
            .priority(1)
            .to(IDLE)
            .cost(COST_REQ),
        ]
    }
}

/// The server root: one per server machine. Spawns a complete server
/// entity (MCA + lower stack) for every connection medium handed to
/// it — the dynamic child-creation pattern of §4.
pub struct ServerRoot {
    services: ServerServices,
    stack: StackKind,
    /// Connection media awaiting a server entity, with their
    /// connection index.
    pub pending_media: Vec<(Box<dyn Medium>, u16)>,
    /// MCA module ids of spawned entities.
    pub entities: Vec<estelle::ModuleId>,
    /// Lower-stack modules per entity, so reaping an abandoned
    /// entity releases its whole connection subtree.
    stacks: Vec<(estelle::ModuleId, Vec<estelle::ModuleId>)>,
    /// Entities spawned per connection index (referral re-dials
    /// reuse the index; later incarnations get a name suffix).
    spawned: HashMap<u16, u32>,
    /// Entities reaped after their client was referred away.
    pub reaped: u64,
}

impl std::fmt::Debug for ServerRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerRoot")
            .field("stack", &self.stack)
            .field("pending", &self.pending_media.len())
            .field("entities", &self.entities.len())
            .finish_non_exhaustive()
    }
}

impl ServerRoot {
    /// Creates a server root spawning entities of the given stack
    /// flavour.
    pub fn new(services: ServerServices, stack: StackKind) -> Self {
        ServerRoot {
            services,
            stack,
            pending_media: Vec::new(),
            entities: Vec::new(),
            stacks: Vec::new(),
            spawned: HashMap::new(),
            reaped: 0,
        }
    }
}

impl StateMachine for ServerRoot {
    fn num_ips(&self) -> usize {
        0
    }

    fn initial_state(&self) -> StateId {
        StateId(0)
    }

    fn transitions() -> Vec<Transition<Self>> {
        // Two states: RUN (0) accepts connections; REAPING (1) is a
        // bounce the root takes when referred-away entities await
        // collection — the state *change* re-arms the delay clause
        // (delays are measured from state entry), so the grace period
        // is real and the referral reply drains through the doomed
        // stack before it is released.
        const RUN: StateId = StateId(0);
        const REAPING: StateId = StateId(1);
        vec![
            Transition::spontaneous("accept", RUN, |m: &mut Self, ctx, _| {
                let (medium, conn) = m.pending_media.remove(0);
                let labels = ModuleLabels::layer_conn(0, conn);
                let incarnation = m.spawned.entry(conn).or_insert(0);
                let tag = if *incarnation == 0 {
                    conn.to_string()
                } else {
                    format!("{conn}r{incarnation}")
                };
                *incarnation += 1;
                let mca = ctx.create_child(
                    format!("server-mca-{tag}"),
                    ModuleKind::Process,
                    labels,
                    ServerMca::new(m.services.clone(), labels),
                );
                let stack = wire_lower_stack_tagged(ctx, mca, DOWN, m.stack, medium, conn, &tag);
                m.entities.push(mca);
                m.stacks.push((mca, stack));
            })
            .any_state()
            .provided(|m, _| !m.pending_media.is_empty())
            .cost(SimDuration::from_micros(400)),
            Transition::spontaneous("reap-arm", RUN, |_m: &mut Self, _ctx, _| {})
                .provided(|m, _| !m.services.reaper.lock().is_empty())
                .to(REAPING)
                .cost(SimDuration::from_micros(10)),
            // Release entities whose client was referred to another
            // server: the client never releases the association (it
            // re-dialed), so the entity and its stack would otherwise
            // accumulate forever. Only entries past their grace
            // deadline are collected; the rest re-arm the bounce.
            Transition::spontaneous("reap", REAPING, |m: &mut Self, ctx, _| {
                let now = ctx.now();
                let due: Vec<estelle::ModuleId> = {
                    let mut reaper = m.services.reaper.lock();
                    let ripe: Vec<estelle::ModuleId> = reaper
                        .iter()
                        .filter(|(_, at)| *at <= now)
                        .map(|(mca, _)| *mca)
                        .collect();
                    reaper.retain(|(_, at)| *at > now);
                    ripe
                };
                for mca in due {
                    m.entities.retain(|e| *e != mca);
                    let Some(idx) = m.stacks.iter().position(|(e, _)| *e == mca) else {
                        continue; // already collected
                    };
                    let (_, stack) = m.stacks.swap_remove(idx);
                    ctx.release_child(mca);
                    for module in stack {
                        ctx.release_child(module);
                    }
                    m.reaped += 1;
                }
            })
            .delay(REAP_GRACE)
            .to(RUN)
            .cost(SimDuration::from_micros(100)),
        ]
    }
}
