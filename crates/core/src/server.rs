//! The server-side MCAM entity: server MCA with DUA/SUA/EUA child
//! agents, and the server root module that spawns one entity per
//! incoming connection (paper §4.1: "a protocol entity implemented as
//! a process can accept a new CONNECT request and then create a new
//! child module to handle the new connection").

use crate::agents::{
    source_for_entry, source_for_title, ClusterController, DuaAgent, EuaAgent, SpsRegistry,
    SuaAgent, AGENT_IP,
};
use crate::pdus::{McamPdu, MovieDesc, StreamParams};
use crate::service::{
    DirOp, DirOutcome, DirRequest, DirResponse, EquipOp, EquipOutcome, EquipRequest, EquipResponse,
    StreamOp, StreamOutcome, StreamRequest, StreamResponse,
};
use crate::sps::StreamProviderSystem;
use crate::stacks::{wire_lower_stack, StackKind};
use directory::{Dn, Dua, MovieEntry};
use equipment::Eua;
use estelle::{
    downcast, ip, Ctx, Interaction, IpIndex, ModuleKind, ModuleLabels, StateId, StateMachine,
    Transition,
};
use netsim::{Medium, SimDuration};
use presentation::service::{PAbortInd, PConInd, PConRsp, PDataInd, PDataReq, PRelInd, PRelRsp};
use std::sync::Arc;

/// Interaction point to the presentation service.
pub const DOWN: IpIndex = IpIndex(0);
/// Interaction point to the DUA child agent.
pub const TO_DUA: IpIndex = IpIndex(1);
/// Interaction point to the SUA child agent.
pub const TO_SUA: IpIndex = IpIndex(2);
/// Interaction point to the EUA child agent.
pub const TO_EUA: IpIndex = IpIndex(3);

/// Awaiting an association.
pub const IDLE: StateId = StateId(0);
/// Associated; no server-side operation outstanding.
pub const READY: StateId = StateId(1);
/// An agent round-trip is outstanding.
pub const BUSY: StateId = StateId(2);

const COST_REQ: SimDuration = SimDuration::from_micros(250);

/// MCAM error code for disk-bandwidth admission rejection (server
/// saturated; retry later or elsewhere).
pub const ERR_ADMISSION: u32 = 503;

fn is<T: Interaction>(msg: Option<&dyn Interaction>) -> bool {
    msg.is_some_and(|m| m.is::<T>())
}

/// Shared handles every server entity needs.
#[derive(Debug, Clone)]
pub struct ServerServices {
    /// Directory client.
    pub dua: Dua,
    /// Directory subtree holding the movies.
    pub base: Dn,
    /// Stream provider of this server machine.
    pub sps: Arc<StreamProviderSystem>,
    /// The machine's continuous-media block store (disk stripes,
    /// buffer cache, admission control) feeding the stream provider.
    pub store: Arc<store::BlockStore>,
    /// The cluster's stream providers by location: `SelectMovie`
    /// routing resolves a movie's replica locations here and probes
    /// each replica's admission load. A standalone server registers
    /// only itself.
    pub peers: Arc<SpsRegistry>,
    /// The cluster's control plane, shared across its servers and
    /// with the world's publish path: it owns replica placement,
    /// adopts finished recordings (replicating them to `k - 1`
    /// peers), grows hot titles onto idle servers, and drains
    /// servers out of service.
    pub rebalancer: Arc<ClusterController>,
    /// Frame rate cameras capture at (the world's record knob).
    pub record_frame_rate: u32,
    /// Equipment client for the server site.
    pub eua: Eua,
    /// The site's equipment control agent (for direct inspection and
    /// competing reservations in tests).
    pub eca: Arc<equipment::Eca>,
    /// Equipment site name.
    pub site: String,
}

impl ServerServices {
    /// The stream provider at `location`, or the local one when the
    /// location is not registered (single-server worlds, seeded
    /// entries with symbolic locations).
    pub fn sps_at(&self, location: &str) -> Arc<StreamProviderSystem> {
        self.peers
            .get(location)
            .unwrap_or_else(|| Arc::clone(&self.sps))
    }
}

/// The stream a server entity currently has selected, with the
/// replica location hosting it.
#[derive(Debug, Clone)]
struct Selected {
    params: StreamParams,
    location: String,
}

#[derive(Debug, Clone)]
enum Pending {
    Create,
    Delete,
    List,
    Query,
    Modify,
    SelectLookup {
        client_addr: u32,
    },
    SelectOpen {
        entry: MovieEntry,
        client_addr: u32,
        /// Replica locations still untried, best-first; `SelectMovie`
        /// falls over to the next one when a replica rejects.
        remaining: Vec<String>,
        /// Replicas attempted so far (for the final error report).
        tried: usize,
    },
    Deselect,
    Play,
    Pause,
    Stop,
    Seek,
    RecordAcquire {
        title: String,
        frames: u64,
    },
    /// Recording admission outstanding at the SUA.
    RecordOpen {
        title: String,
    },
    /// Capture in progress: the MCA waits (spontaneously polled) for
    /// the SPS to finish capturing and persisting.
    RecordCapture {
        title: String,
        stream_id: u32,
    },
    /// Finalize/replicate outstanding at the SUA.
    RecordClose {
        title: String,
    },
    RecordAdd,
    RecordRelease {
        verdict: RecordVerdict,
    },
}

/// How a record attempt ended, carried across the camera-release
/// round-trip so the reply matches the failure.
#[derive(Debug, Clone)]
enum RecordVerdict {
    Ok,
    Failed,
    /// Write-bandwidth admission refused the recording.
    Saturated {
        demanded_bps: u64,
        available_bps: u64,
    },
}

/// The server-side Movie Control Agent.
#[derive(Debug)]
pub struct ServerMca {
    services: ServerServices,
    /// Associated user, when bound.
    pub user: Option<String>,
    selected: Option<Selected>,
    /// Recording session in progress on the local provider, if any.
    recording: Option<u32>,
    pending: Option<Pending>,
    /// Requests processed.
    pub requests: u64,
    /// Protocol/decode errors observed.
    pub protocol_errors: u64,
    /// `SelectMovie` routing decisions taken (one per successful
    /// directory lookup of a replicated title).
    pub route_decisions: u64,
    /// `SelectMovie` opens that fell over to another replica after a
    /// rejection.
    pub failovers: u64,
    /// Labels inherited by the child agents.
    labels: ModuleLabels,
}

impl ServerMca {
    /// Creates a server MCA over the shared services.
    pub fn new(services: ServerServices, labels: ModuleLabels) -> Self {
        ServerMca {
            services,
            user: None,
            selected: None,
            recording: None,
            pending: None,
            requests: 0,
            protocol_errors: 0,
            route_decisions: 0,
            failovers: 0,
            labels,
        }
    }

    /// Closes the selected stream, if any, on whichever replica hosts
    /// it, and aborts an in-progress recording (the association died
    /// under it; its bandwidth and blocks are reclaimed).
    fn close_selected(&mut self) {
        if let Some(sel) = self.selected.take() {
            let _ = self
                .services
                .sps_at(&sel.location)
                .close(sel.params.stream_id);
        }
        if let Some(id) = self.recording.take() {
            let _ = self.services.sps.close(id);
        }
    }

    fn reply(&self, ctx: &mut Ctx<'_>, pdu: McamPdu) {
        ctx.output(
            DOWN,
            PDataReq {
                context_id: 1,
                user_data: pdu.encode(),
            },
        );
    }

    fn error(&self, ctx: &mut Ctx<'_>, code: u32, message: &str) {
        self.reply(
            ctx,
            McamPdu::ErrorRsp {
                code,
                message: message.into(),
            },
        );
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, pdu: McamPdu) {
        use McamPdu::*;
        self.requests += 1;
        match pdu {
            AssociateReq { .. } => {
                // Association is carried in the P-CONNECT exchange;
                // a second one inside the data phase is an error.
                self.protocol_errors += 1;
                self.error(ctx, 902, "already associated");
            }
            ReleaseReq => {
                // Tear down any CM stream, then confirm.
                self.close_selected();
                self.reply(ctx, ReleaseRsp);
            }
            CreateMovieReq {
                title,
                format,
                frame_rate,
                frame_count,
            } => {
                let mut entry =
                    MovieEntry::new(title, format!("node-{}", self.services.sps.addr().0));
                entry.format = format;
                entry.frame_rate = frame_rate.clamp(1, 120);
                entry.frame_count = frame_count;
                self.pending = Some(Pending::Create);
                ctx.output(TO_DUA, DirRequest(DirOp::Add { entry }));
                ctx.goto(BUSY);
            }
            DeleteMovieReq { title } => {
                self.pending = Some(Pending::Delete);
                ctx.output(TO_DUA, DirRequest(DirOp::Remove { title }));
                ctx.goto(BUSY);
            }
            SelectMovieReq { title, client_addr } => {
                self.pending = Some(Pending::SelectLookup { client_addr });
                ctx.output(TO_DUA, DirRequest(DirOp::Lookup { title }));
                ctx.goto(BUSY);
            }
            DeselectMovieReq => match self.selected.take() {
                Some(sel) => {
                    self.pending = Some(Pending::Deselect);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Close {
                            stream_id: sel.params.stream_id,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            ListMoviesReq { title_contains } => {
                self.pending = Some(Pending::List);
                ctx.output(
                    TO_DUA,
                    DirRequest(DirOp::List {
                        contains: title_contains,
                    }),
                );
                ctx.goto(BUSY);
            }
            QueryAttrsReq { title, attrs } => {
                self.pending = Some(Pending::Query);
                ctx.output(TO_DUA, DirRequest(DirOp::Query { title, attrs }));
                ctx.goto(BUSY);
            }
            ModifyAttrsReq { title, puts } => {
                self.pending = Some(Pending::Modify);
                ctx.output(TO_DUA, DirRequest(DirOp::Modify { title, puts }));
                ctx.goto(BUSY);
            }
            PlayReq { speed_pct } => match &self.selected {
                Some(sel) => {
                    self.pending = Some(Pending::Play);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Play {
                            stream_id: sel.params.stream_id,
                            speed_pct,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            PauseReq => match &self.selected {
                Some(sel) => {
                    self.pending = Some(Pending::Pause);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Pause {
                            stream_id: sel.params.stream_id,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            StopReq => match &self.selected {
                Some(sel) => {
                    self.pending = Some(Pending::Stop);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Stop {
                            stream_id: sel.params.stream_id,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            SeekReq { frame } => match &self.selected {
                Some(sel) => {
                    self.pending = Some(Pending::Seek);
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Seek {
                            stream_id: sel.params.stream_id,
                            frame,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                None => self.error(ctx, 404, "no movie selected"),
            },
            RecordReq { title, frames } => {
                self.pending = Some(Pending::RecordAcquire { title, frames });
                ctx.output(
                    TO_EUA,
                    EquipRequest(EquipOp::AcquireClass(equipment::EquipmentClass::Camera)),
                );
                ctx.goto(BUSY);
            }
            other => {
                self.protocol_errors += 1;
                self.error(ctx, 903, &format!("unexpected PDU {other:?}"));
            }
        }
    }

    fn on_dir_response(&mut self, ctx: &mut Ctx<'_>, outcome: DirOutcome) {
        let pending = self.pending.take();
        match pending {
            Some(Pending::Create) => {
                self.reply(
                    ctx,
                    McamPdu::CreateMovieRsp {
                        ok: outcome == DirOutcome::Done,
                    },
                );
                ctx.goto(READY);
            }
            Some(Pending::Delete) => {
                self.reply(
                    ctx,
                    McamPdu::DeleteMovieRsp {
                        ok: outcome == DirOutcome::Done,
                    },
                );
                ctx.goto(READY);
            }
            Some(Pending::List) => {
                let titles = match outcome {
                    DirOutcome::Titles(t) => t,
                    _ => Vec::new(),
                };
                self.reply(ctx, McamPdu::ListMoviesRsp { titles });
                ctx.goto(READY);
            }
            Some(Pending::Query) => {
                let attrs = match outcome {
                    DirOutcome::Attrs(a) => Some(a),
                    _ => None,
                };
                self.reply(ctx, McamPdu::QueryAttrsRsp { attrs });
                ctx.goto(READY);
            }
            Some(Pending::Modify) => {
                self.reply(
                    ctx,
                    McamPdu::ModifyAttrsRsp {
                        ok: outcome == DirOutcome::Done,
                    },
                );
                ctx.goto(READY);
            }
            Some(Pending::SelectLookup { client_addr }) => match outcome {
                DirOutcome::Movie(entry) => {
                    let movie = source_for_entry(&entry);
                    // Routing step: order the movie's replicas by the
                    // disk bandwidth their admission controllers still
                    // have uncommitted, and try the best first. With
                    // no registered replica (seeded entries with
                    // symbolic locations, or every replica dead or
                    // draining), serve from the local store — unless
                    // the local server is itself draining, in which
                    // case a new stream must not land on it: pick the
                    // most-available live peer instead.
                    let mut candidates: Vec<String> = self
                        .services
                        .peers
                        .route(&entry.replicas)
                        .into_iter()
                        .map(|(location, _)| location)
                        .collect();
                    let location = if candidates.is_empty() {
                        let local = self.services.sps.location();
                        if self.services.peers.is_draining(&local) {
                            self.services
                                .peers
                                .loads()
                                .into_iter()
                                .filter(|s| !s.draining)
                                .max_by_key(|s| {
                                    (s.load.available_bps, std::cmp::Reverse(s.location.clone()))
                                })
                                .map(|s| s.location)
                        } else {
                            None
                        }
                    } else {
                        Some(candidates.remove(0))
                    };
                    self.route_decisions += 1;
                    self.pending = Some(Pending::SelectOpen {
                        entry,
                        client_addr,
                        remaining: candidates,
                        tried: 1,
                    });
                    ctx.output(
                        TO_SUA,
                        StreamRequest(StreamOp::Open {
                            movie,
                            dest: client_addr,
                            location,
                        }),
                    );
                    ctx.goto(BUSY);
                }
                _ => {
                    self.reply(ctx, McamPdu::SelectMovieRsp { params: None });
                    ctx.goto(READY);
                }
            },
            Some(Pending::RecordAdd) => {
                let verdict = if outcome == DirOutcome::Done {
                    RecordVerdict::Ok
                } else {
                    RecordVerdict::Failed
                };
                self.pending = Some(Pending::RecordRelease { verdict });
                ctx.output(TO_EUA, EquipRequest(EquipOp::ReleaseAll));
                ctx.goto(BUSY);
            }
            other => {
                self.protocol_errors += 1;
                self.pending = other;
                ctx.goto(READY);
            }
        }
    }

    fn on_stream_response(&mut self, ctx: &mut Ctx<'_>, outcome: StreamOutcome) {
        let pending = self.pending.take();
        match pending {
            Some(Pending::SelectOpen {
                entry,
                client_addr,
                mut remaining,
                tried,
            }) => match outcome {
                StreamOutcome::Opened {
                    stream_id,
                    provider_addr,
                    location,
                } => {
                    let params = StreamParams {
                        provider_addr,
                        stream_id,
                        movie: MovieDesc {
                            title: entry.title.clone(),
                            format: entry.format.clone(),
                            frame_rate: entry.frame_rate,
                            frame_count: entry.frame_count,
                        },
                    };
                    self.selected = Some(Selected {
                        params: params.clone(),
                        location,
                    });
                    self.reply(
                        ctx,
                        McamPdu::SelectMovieRsp {
                            params: Some(params),
                        },
                    );
                    ctx.goto(READY);
                }
                StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                } => {
                    if remaining.is_empty() {
                        self.error(
                            ctx,
                            ERR_ADMISSION,
                            &format!(
                                "admission rejected on all {tried} replica(s): stream \
                                 needs {demanded_bps} bps, {available_bps} bps of disk \
                                 bandwidth available on the last one tried"
                            ),
                        );
                        ctx.goto(READY);
                    } else {
                        // Failover: the chosen replica filled up (or
                        // was already fuller than its load snapshot
                        // said); try the next-best one.
                        self.failovers += 1;
                        let movie = source_for_entry(&entry);
                        let location = Some(remaining.remove(0));
                        self.pending = Some(Pending::SelectOpen {
                            entry,
                            client_addr,
                            remaining,
                            tried: tried + 1,
                        });
                        ctx.output(
                            TO_SUA,
                            StreamRequest(StreamOp::Open {
                                movie,
                                dest: client_addr,
                                location,
                            }),
                        );
                        ctx.goto(BUSY);
                    }
                }
                _ => {
                    self.reply(ctx, McamPdu::SelectMovieRsp { params: None });
                    ctx.goto(READY);
                }
            },
            Some(Pending::RecordOpen { title }) => match outcome {
                StreamOutcome::RecordStarted { stream_id } => {
                    // Capture runs on the virtual clock; the MCA holds
                    // the association BUSY and a spontaneous
                    // transition fires when the SPS reports the
                    // recording captured and durable.
                    self.recording = Some(stream_id);
                    self.pending = Some(Pending::RecordCapture { title, stream_id });
                    ctx.goto(BUSY);
                }
                StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                } => {
                    // The disks cannot absorb the recording next to
                    // the admitted streams: give the camera back and
                    // report saturation, not failure.
                    self.pending = Some(Pending::RecordRelease {
                        verdict: RecordVerdict::Saturated {
                            demanded_bps,
                            available_bps,
                        },
                    });
                    ctx.output(TO_EUA, EquipRequest(EquipOp::ReleaseAll));
                    ctx.goto(BUSY);
                }
                _ => {
                    self.pending = Some(Pending::RecordRelease {
                        verdict: RecordVerdict::Failed,
                    });
                    ctx.output(TO_EUA, EquipRequest(EquipOp::ReleaseAll));
                    ctx.goto(BUSY);
                }
            },
            Some(Pending::RecordClose { title }) => {
                self.recording = None;
                match outcome {
                    StreamOutcome::Recorded {
                        frame_count,
                        frame_rate,
                        bitrate_bps,
                        replicas,
                    } => {
                        // Finalize the directory entry with what was
                        // actually captured and where it now lives.
                        let primary = replicas
                            .first()
                            .cloned()
                            .unwrap_or_else(|| self.services.sps.location());
                        let mut entry = MovieEntry::new(title, primary);
                        entry.frame_count = frame_count;
                        entry.frame_rate = frame_rate.clamp(1, 120);
                        entry.bitrate_bps = bitrate_bps;
                        if !replicas.is_empty() {
                            entry.set_replicas(replicas);
                        }
                        self.pending = Some(Pending::RecordAdd);
                        ctx.output(TO_DUA, DirRequest(DirOp::Add { entry }));
                        ctx.goto(BUSY);
                    }
                    _ => {
                        self.pending = Some(Pending::RecordRelease {
                            verdict: RecordVerdict::Failed,
                        });
                        ctx.output(TO_EUA, EquipRequest(EquipOp::ReleaseAll));
                        ctx.goto(BUSY);
                    }
                }
            }
            Some(Pending::Deselect) => {
                self.reply(ctx, McamPdu::DeselectMovieRsp);
                ctx.goto(READY);
            }
            Some(Pending::Play) => {
                if let StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                } = outcome
                {
                    self.error(
                        ctx,
                        ERR_ADMISSION,
                        &format!(
                            "admission rejected: speed-up needs {demanded_bps} bps, \
                             {available_bps} bps of disk bandwidth available"
                        ),
                    );
                } else {
                    self.reply(
                        ctx,
                        McamPdu::PlayRsp {
                            ok: outcome == StreamOutcome::Done,
                        },
                    );
                }
                ctx.goto(READY);
            }
            Some(Pending::Pause) => {
                self.reply(ctx, McamPdu::PauseRsp);
                ctx.goto(READY);
            }
            Some(Pending::Stop) => {
                self.reply(ctx, McamPdu::StopRsp);
                ctx.goto(READY);
            }
            Some(Pending::Seek) => {
                self.reply(
                    ctx,
                    McamPdu::SeekRsp {
                        ok: outcome == StreamOutcome::Done,
                    },
                );
                ctx.goto(READY);
            }
            other => {
                self.protocol_errors += 1;
                self.pending = other;
                ctx.goto(READY);
            }
        }
    }

    fn on_equip_response(&mut self, ctx: &mut Ctx<'_>, outcome: EquipOutcome) {
        let pending = self.pending.take();
        match pending {
            Some(Pending::RecordAcquire { title, frames }) => match outcome {
                EquipOutcome::Acquired(_) => {
                    // Camera in hand: ask the stream provider to open
                    // the admission-controlled recording session.
                    let movie = source_for_title(
                        &title,
                        self.services.record_frame_rate.clamp(1, 120),
                        frames,
                    );
                    self.pending = Some(Pending::RecordOpen { title });
                    ctx.output(TO_SUA, StreamRequest(StreamOp::OpenRecord { movie }));
                    ctx.goto(BUSY);
                }
                _ => {
                    self.reply(ctx, McamPdu::RecordRsp { ok: false });
                    ctx.goto(READY);
                }
            },
            Some(Pending::RecordRelease { verdict }) => {
                match verdict {
                    RecordVerdict::Ok => self.reply(ctx, McamPdu::RecordRsp { ok: true }),
                    RecordVerdict::Failed => self.reply(ctx, McamPdu::RecordRsp { ok: false }),
                    RecordVerdict::Saturated {
                        demanded_bps,
                        available_bps,
                    } => self.error(
                        ctx,
                        ERR_ADMISSION,
                        &format!(
                            "admission rejected: recording needs {demanded_bps} bps, \
                             {available_bps} bps of disk bandwidth available"
                        ),
                    ),
                }
                ctx.goto(READY);
            }
            other => {
                self.protocol_errors += 1;
                self.pending = other;
                ctx.goto(READY);
            }
        }
    }
}

impl StateMachine for ServerMca {
    fn num_ips(&self) -> usize {
        4
    }

    fn initial_state(&self) -> StateId {
        IDLE
    }

    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        // Fig. 3: the MCA's three sibling agents with external bodies.
        let dua = ctx.create_child(
            "dua",
            ModuleKind::Process,
            self.labels,
            DuaAgent::new(self.services.dua.clone(), self.services.base.clone()),
        );
        let sua = ctx.create_child(
            "sua",
            ModuleKind::Process,
            self.labels,
            SuaAgent::new(
                Arc::clone(&self.services.sps),
                Arc::clone(&self.services.peers),
                Arc::clone(&self.services.rebalancer),
            ),
        );
        let eua = ctx.create_child(
            "eua",
            ModuleKind::Process,
            self.labels,
            EuaAgent::new(self.services.eua.clone(), self.services.site.clone()),
        );
        ctx.connect(ctx.self_ip(TO_DUA), ip(dua, AGENT_IP));
        ctx.connect(ctx.self_ip(TO_SUA), ip(sua, AGENT_IP));
        ctx.connect(ctx.self_ip(TO_EUA), ip(eua, AGENT_IP));
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on("assoc-ind", IDLE, DOWN, |m: &mut Self, ctx, msg| {
                let ind = downcast::<PConInd>(msg.unwrap()).unwrap();
                match McamPdu::decode(&ind.user_data) {
                    Ok(McamPdu::AssociateReq { user }) => {
                        m.user = Some(user);
                        let aare = McamPdu::AssociateRsp { accepted: true };
                        ctx.output(
                            DOWN,
                            PConRsp {
                                accept: true,
                                user_data: aare.encode(),
                            },
                        );
                        ctx.goto(READY);
                    }
                    _ => {
                        m.protocol_errors += 1;
                        ctx.output(
                            DOWN,
                            PConRsp {
                                accept: false,
                                user_data: Vec::new(),
                            },
                        );
                    }
                }
            })
            .provided(|_, msg| is::<PConInd>(msg))
            .cost(COST_REQ),
            Transition::on("request", READY, DOWN, |m: &mut Self, ctx, msg| {
                let ind = downcast::<PDataInd>(msg.unwrap()).unwrap();
                match McamPdu::decode(&ind.user_data) {
                    Ok(pdu) if pdu.is_request() => m.dispatch(ctx, pdu),
                    Ok(_) | Err(_) => {
                        m.protocol_errors += 1;
                        m.error(ctx, 904, "malformed request");
                    }
                }
            })
            .provided(|_, msg| is::<PDataInd>(msg))
            .cost(COST_REQ),
            Transition::on("dua-rsp", BUSY, TO_DUA, |m: &mut Self, ctx, msg| {
                let rsp = downcast::<DirResponse>(msg.unwrap()).unwrap();
                m.on_dir_response(ctx, rsp.0);
            })
            .cost(COST_REQ),
            Transition::on("sua-rsp", BUSY, TO_SUA, |m: &mut Self, ctx, msg| {
                let rsp = downcast::<StreamResponse>(msg.unwrap()).unwrap();
                m.on_stream_response(ctx, rsp.0);
            })
            .cost(COST_REQ),
            Transition::on("eua-rsp", BUSY, TO_EUA, |m: &mut Self, ctx, msg| {
                let rsp = downcast::<EquipResponse>(msg.unwrap()).unwrap();
                m.on_equip_response(ctx, rsp.0);
            })
            .cost(COST_REQ),
            // Capture completion is a state of the stream provider,
            // not a message: poll it spontaneously while a recording
            // is pending and finalize once every frame is captured
            // and every block durable.
            Transition::spontaneous("record-done", BUSY, |m: &mut Self, ctx, _| {
                let Some(Pending::RecordCapture { title, stream_id }) = m.pending.take() else {
                    unreachable!("guarded by the provided clause");
                };
                m.pending = Some(Pending::RecordClose {
                    title: title.clone(),
                });
                ctx.output(
                    TO_SUA,
                    StreamRequest(StreamOp::CloseRecord { stream_id, title }),
                );
            })
            .provided(|m, _| {
                matches!(
                    &m.pending,
                    Some(Pending::RecordCapture { stream_id, .. })
                        if m.services.sps.recording_finished(*stream_id)
                )
            })
            .cost(COST_REQ),
            Transition::on("rel-ind", READY, DOWN, |m: &mut Self, ctx, msg| {
                let _ = downcast::<PRelInd>(msg.unwrap()).unwrap();
                m.close_selected();
                m.user = None;
                ctx.output(DOWN, PRelRsp);
            })
            .provided(|_, msg| is::<PRelInd>(msg))
            .to(IDLE)
            .cost(COST_REQ),
            Transition::on("abort-ind", IDLE, DOWN, |m: &mut Self, ctx, msg| {
                let _ = downcast::<PAbortInd>(msg.unwrap()).unwrap();
                m.close_selected();
                m.user = None;
                let _ = ctx;
            })
            .any_state()
            .provided(|_, msg| is::<PAbortInd>(msg))
            .priority(1)
            .to(IDLE)
            .cost(COST_REQ),
        ]
    }
}

/// The server root: one per server machine. Spawns a complete server
/// entity (MCA + lower stack) for every connection medium handed to
/// it — the dynamic child-creation pattern of §4.
pub struct ServerRoot {
    services: ServerServices,
    stack: StackKind,
    /// Connection media awaiting a server entity, with their
    /// connection index.
    pub pending_media: Vec<(Box<dyn Medium>, u16)>,
    /// MCA module ids of spawned entities.
    pub entities: Vec<estelle::ModuleId>,
}

impl std::fmt::Debug for ServerRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerRoot")
            .field("stack", &self.stack)
            .field("pending", &self.pending_media.len())
            .field("entities", &self.entities.len())
            .finish_non_exhaustive()
    }
}

impl ServerRoot {
    /// Creates a server root spawning entities of the given stack
    /// flavour.
    pub fn new(services: ServerServices, stack: StackKind) -> Self {
        ServerRoot {
            services,
            stack,
            pending_media: Vec::new(),
            entities: Vec::new(),
        }
    }
}

impl StateMachine for ServerRoot {
    fn num_ips(&self) -> usize {
        0
    }

    fn initial_state(&self) -> StateId {
        StateId(0)
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::spontaneous("accept", StateId(0), |m: &mut Self, ctx, _| {
                let (medium, conn) = m.pending_media.remove(0);
                let labels = ModuleLabels::layer_conn(0, conn);
                let mca = ctx.create_child(
                    format!("server-mca-{conn}"),
                    ModuleKind::Process,
                    labels,
                    ServerMca::new(m.services.clone(), labels),
                );
                wire_lower_stack(ctx, mca, DOWN, m.stack, medium, conn);
                m.entities.push(mca);
            })
            .provided(|m, _| !m.pending_media.is_empty())
            .cost(SimDuration::from_micros(400)),
        ]
    }
}
