//! MCAM PDUs, specified in ASN.1 and encoded with BER (paper §4.2).
//!
//! The operation set follows the MCAM companion paper (Keller &
//! Effelsberg, ACM Multimedia'93): *access* (create, delete, select,
//! deselect), *management* (list, query and modify attributes), and
//! *control* (play, pause, stop, seek, speed, record), plus
//! association management and error reporting.

use asn1::ber::{self, Reader};
use asn1::{Asn1Error, Tag, Value};

/// Description of a movie carried in create/select responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovieDesc {
    /// Movie title.
    pub title: String,
    /// Image format name.
    pub format: String,
    /// Frames per second.
    pub frame_rate: u32,
    /// Total frames.
    pub frame_count: u64,
}

/// Stream rendezvous parameters returned by a successful select.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamParams {
    /// Datagram address of the stream provider.
    pub provider_addr: u32,
    /// Stream identifier to expect in MTP packets.
    pub stream_id: u32,
    /// Movie description.
    pub movie: MovieDesc,
}

/// A complete MCAM protocol data unit.
#[derive(Debug, Clone, PartialEq)]
pub enum McamPdu {
    /// Open an MCAM association.
    AssociateReq {
        /// User name for accounting.
        user: String,
        /// The client understands [`McamPdu::ReferralRsp`] and will
        /// follow a redirect to another cluster server. Encoded only
        /// when true, so pre-referral clients produce (and servers
        /// accept) the original two-field form; a server never refers
        /// a client that did not advertise the capability.
        referral_capable: bool,
    },
    /// Association response.
    AssociateRsp {
        /// Whether the association was admitted.
        accepted: bool,
    },
    /// Orderly association release.
    ReleaseReq,
    /// Release confirmation.
    ReleaseRsp,
    /// Create a movie entry (access service).
    CreateMovieReq {
        /// Title (also the directory RDN).
        title: String,
        /// Image format.
        format: String,
        /// Frames per second.
        frame_rate: u32,
        /// Total frames.
        frame_count: u64,
    },
    /// Create response.
    CreateMovieRsp {
        /// Success flag.
        ok: bool,
    },
    /// Delete a movie entry.
    DeleteMovieReq {
        /// Title of the movie to delete.
        title: String,
    },
    /// Delete response.
    DeleteMovieRsp {
        /// Success flag.
        ok: bool,
    },
    /// Select a movie for playback (binds a CM stream).
    SelectMovieReq {
        /// Title of the movie to select.
        title: String,
        /// Datagram address the client will listen on.
        client_addr: u32,
    },
    /// Select response with stream rendezvous parameters.
    SelectMovieRsp {
        /// Stream parameters; `None` when selection failed.
        params: Option<StreamParams>,
    },
    /// Release the selected movie and its stream.
    DeselectMovieReq,
    /// Deselect response.
    DeselectMovieRsp,
    /// List movies whose title contains a substring (management).
    ListMoviesReq {
        /// Case-insensitive substring; empty lists everything.
        title_contains: String,
    },
    /// Listing response.
    ListMoviesRsp {
        /// Matching titles.
        titles: Vec<String>,
    },
    /// Query attributes of a movie (management).
    QueryAttrsReq {
        /// Movie title.
        title: String,
        /// Attribute names to fetch; empty fetches all.
        attrs: Vec<String>,
    },
    /// Query response.
    QueryAttrsRsp {
        /// Attribute name/value pairs, or `None` if the movie is
        /// unknown.
        attrs: Option<Vec<(String, Value)>>,
    },
    /// Modify attributes of a movie (management).
    ModifyAttrsReq {
        /// Movie title.
        title: String,
        /// Attributes to set.
        puts: Vec<(String, Value)>,
    },
    /// Modify response.
    ModifyAttrsRsp {
        /// Success flag.
        ok: bool,
    },
    /// Start or resume playback (control).
    PlayReq {
        /// Playback speed in percent of nominal.
        speed_pct: u32,
    },
    /// Play response.
    PlayRsp {
        /// Success flag.
        ok: bool,
    },
    /// Pause playback.
    PauseReq,
    /// Pause response.
    PauseRsp,
    /// Stop playback and rewind.
    StopReq,
    /// Stop response.
    StopRsp,
    /// Seek to an absolute frame.
    SeekReq {
        /// Target frame index.
        frame: u64,
    },
    /// Seek response.
    SeekRsp {
        /// Success flag.
        ok: bool,
    },
    /// Record a new movie from CM equipment (control).
    RecordReq {
        /// Title of the new movie.
        title: String,
        /// Recording length in frames.
        frames: u64,
    },
    /// Record response.
    RecordRsp {
        /// Success flag.
        ok: bool,
    },
    /// Error report for a failed operation.
    ErrorRsp {
        /// Numeric error code.
        code: u32,
        /// Human-readable message.
        message: String,
    },
    /// Referral: the server declines to carry this client's control
    /// association (it is overloaded or draining) and names a better
    /// cluster member. Sent only to clients that advertised
    /// `referral_capable`, either as the connect-refusal user data of
    /// an association open or in place of a `SelectMovieRsp`; the
    /// client re-opens its control connection at `target` (falling
    /// back across `candidates` when the target is gone) and replays
    /// the interrupted operation there.
    ReferralRsp {
        /// Location name (`"node-<n>"`) of the server to reconnect to.
        target: String,
        /// The cluster's current live servers with a load hint —
        /// `(location, available disk bandwidth in bits/second)`,
        /// best candidate first.
        candidates: Vec<(String, u64)>,
    },
}

const T_ASSOC_REQ: u32 = 0;
const T_ASSOC_RSP: u32 = 1;
const T_RELEASE_REQ: u32 = 2;
const T_RELEASE_RSP: u32 = 3;
const T_CREATE_REQ: u32 = 4;
const T_CREATE_RSP: u32 = 5;
const T_DELETE_REQ: u32 = 6;
const T_DELETE_RSP: u32 = 7;
const T_SELECT_REQ: u32 = 8;
const T_SELECT_RSP: u32 = 9;
const T_DESELECT_REQ: u32 = 10;
const T_DESELECT_RSP: u32 = 11;
const T_LIST_REQ: u32 = 12;
const T_LIST_RSP: u32 = 13;
const T_QUERY_REQ: u32 = 14;
const T_QUERY_RSP: u32 = 15;
const T_MODIFY_REQ: u32 = 16;
const T_MODIFY_RSP: u32 = 17;
const T_PLAY_REQ: u32 = 18;
const T_PLAY_RSP: u32 = 19;
const T_PAUSE_REQ: u32 = 20;
const T_PAUSE_RSP: u32 = 21;
const T_STOP_REQ: u32 = 22;
const T_STOP_RSP: u32 = 23;
const T_SEEK_REQ: u32 = 24;
const T_SEEK_RSP: u32 = 25;
const T_RECORD_REQ: u32 = 26;
const T_RECORD_RSP: u32 = 27;
const T_ERROR_RSP: u32 = 28;
const T_REFERRAL_RSP: u32 = 29;

fn write_attr_list(attrs: &[(String, Value)], out: &mut Vec<u8>) {
    ber::write_constructed(Tag::SEQUENCE, out, |c| {
        for (name, value) in attrs {
            ber::write_constructed(Tag::SEQUENCE, c, |item| {
                ber::write_string(name, item);
                value.encode_into(item);
            });
        }
    });
}

fn read_attr_list(r: &mut Reader<'_>) -> Result<Vec<(String, Value)>, Asn1Error> {
    let list = r.read_expect(Tag::SEQUENCE)?;
    let mut lr = r.descend(list)?;
    let mut out = Vec::new();
    while !lr.is_empty() {
        let item = lr.read_expect(Tag::SEQUENCE)?;
        let mut ir = lr.descend(item)?;
        let name = ber::read_string(&mut ir)?;
        let value = Value::decode(&mut ir)?;
        ir.expect_end()?;
        out.push((name, value));
    }
    Ok(out)
}

impl McamPdu {
    /// True for request-type PDUs (the server-processed kind).
    pub fn is_request(&self) -> bool {
        use McamPdu::*;
        matches!(
            self,
            AssociateReq { .. }
                | ReleaseReq
                | CreateMovieReq { .. }
                | DeleteMovieReq { .. }
                | SelectMovieReq { .. }
                | DeselectMovieReq
                | ListMoviesReq { .. }
                | QueryAttrsReq { .. }
                | ModifyAttrsReq { .. }
                | PlayReq { .. }
                | PauseReq
                | StopReq
                | SeekReq { .. }
                | RecordReq { .. }
        )
    }

    /// Serializes the PDU as BER.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Serializes the PDU as BER into `out` (cleared first),
    /// preserving the buffer's capacity for reuse across PDUs.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let write = |n: u32, out: &mut Vec<u8>, f: &dyn Fn(&mut Vec<u8>)| {
            ber::write_constructed(Tag::application(n), out, |c| f(c));
        };
        match self {
            McamPdu::AssociateReq {
                user,
                referral_capable,
            } => write(T_ASSOC_REQ, out, &|c| {
                ber::write_string(user, c);
                // Omitted when false: the original two-field form,
                // byte-identical to what pre-referral clients send.
                if *referral_capable {
                    ber::write_bool(true, c);
                }
            }),
            McamPdu::AssociateRsp { accepted } => write(T_ASSOC_RSP, out, &|c| {
                ber::write_bool(*accepted, c);
            }),
            McamPdu::ReleaseReq => write(T_RELEASE_REQ, out, &|_| {}),
            McamPdu::ReleaseRsp => write(T_RELEASE_RSP, out, &|_| {}),
            McamPdu::CreateMovieReq {
                title,
                format,
                frame_rate,
                frame_count,
            } => {
                write(T_CREATE_REQ, out, &|c| {
                    ber::write_string(title, c);
                    ber::write_string(format, c);
                    ber::write_integer(i64::from(*frame_rate), c);
                    ber::write_integer(*frame_count as i64, c);
                });
            }
            McamPdu::CreateMovieRsp { ok } => write(T_CREATE_RSP, out, &|c| {
                ber::write_bool(*ok, c);
            }),
            McamPdu::DeleteMovieReq { title } => write(T_DELETE_REQ, out, &|c| {
                ber::write_string(title, c);
            }),
            McamPdu::DeleteMovieRsp { ok } => write(T_DELETE_RSP, out, &|c| {
                ber::write_bool(*ok, c);
            }),
            McamPdu::SelectMovieReq { title, client_addr } => {
                write(T_SELECT_REQ, out, &|c| {
                    ber::write_string(title, c);
                    ber::write_integer(i64::from(*client_addr), c);
                });
            }
            McamPdu::SelectMovieRsp { params } => write(T_SELECT_RSP, out, &|c| match params {
                None => ber::write_bool(false, c),
                Some(p) => {
                    ber::write_bool(true, c);
                    ber::write_integer(i64::from(p.provider_addr), c);
                    ber::write_integer(i64::from(p.stream_id), c);
                    ber::write_string(&p.movie.title, c);
                    ber::write_string(&p.movie.format, c);
                    ber::write_integer(i64::from(p.movie.frame_rate), c);
                    ber::write_integer(p.movie.frame_count as i64, c);
                }
            }),
            McamPdu::DeselectMovieReq => write(T_DESELECT_REQ, out, &|_| {}),
            McamPdu::DeselectMovieRsp => write(T_DESELECT_RSP, out, &|_| {}),
            McamPdu::ListMoviesReq { title_contains } => write(T_LIST_REQ, out, &|c| {
                ber::write_string(title_contains, c);
            }),
            McamPdu::ListMoviesRsp { titles } => write(T_LIST_RSP, out, &|c| {
                ber::write_constructed(Tag::SEQUENCE, c, |list| {
                    for t in titles {
                        ber::write_string(t, list);
                    }
                });
            }),
            McamPdu::QueryAttrsReq { title, attrs } => write(T_QUERY_REQ, out, &|c| {
                ber::write_string(title, c);
                ber::write_constructed(Tag::SEQUENCE, c, |list| {
                    for a in attrs {
                        ber::write_string(a, list);
                    }
                });
            }),
            McamPdu::QueryAttrsRsp { attrs } => write(T_QUERY_RSP, out, &|c| match attrs {
                None => ber::write_bool(false, c),
                Some(list) => {
                    ber::write_bool(true, c);
                    write_attr_list(list, c);
                }
            }),
            McamPdu::ModifyAttrsReq { title, puts } => write(T_MODIFY_REQ, out, &|c| {
                ber::write_string(title, c);
                write_attr_list(puts, c);
            }),
            McamPdu::ModifyAttrsRsp { ok } => write(T_MODIFY_RSP, out, &|c| {
                ber::write_bool(*ok, c);
            }),
            McamPdu::PlayReq { speed_pct } => write(T_PLAY_REQ, out, &|c| {
                ber::write_integer(i64::from(*speed_pct), c);
            }),
            McamPdu::PlayRsp { ok } => write(T_PLAY_RSP, out, &|c| {
                ber::write_bool(*ok, c);
            }),
            McamPdu::PauseReq => write(T_PAUSE_REQ, out, &|_| {}),
            McamPdu::PauseRsp => write(T_PAUSE_RSP, out, &|_| {}),
            McamPdu::StopReq => write(T_STOP_REQ, out, &|_| {}),
            McamPdu::StopRsp => write(T_STOP_RSP, out, &|_| {}),
            McamPdu::SeekReq { frame } => write(T_SEEK_REQ, out, &|c| {
                ber::write_integer(*frame as i64, c);
            }),
            McamPdu::SeekRsp { ok } => write(T_SEEK_RSP, out, &|c| {
                ber::write_bool(*ok, c);
            }),
            McamPdu::RecordReq { title, frames } => write(T_RECORD_REQ, out, &|c| {
                ber::write_string(title, c);
                ber::write_integer(*frames as i64, c);
            }),
            McamPdu::RecordRsp { ok } => write(T_RECORD_RSP, out, &|c| {
                ber::write_bool(*ok, c);
            }),
            McamPdu::ErrorRsp { code, message } => write(T_ERROR_RSP, out, &|c| {
                ber::write_integer(i64::from(*code), c);
                ber::write_string(message, c);
            }),
            McamPdu::ReferralRsp { target, candidates } => write(T_REFERRAL_RSP, out, &|c| {
                ber::write_string(target, c);
                ber::write_constructed(Tag::SEQUENCE, c, |list| {
                    for (location, available_bps) in candidates {
                        ber::write_constructed(Tag::SEQUENCE, list, |item| {
                            ber::write_string(location, item);
                            ber::write_integer(*available_bps as i64, item);
                        });
                    }
                });
            }),
        }
    }

    /// Parses a PDU.
    ///
    /// # Errors
    ///
    /// Returns an [`Asn1Error`] on malformed BER or unknown tags.
    pub fn decode(data: &[u8]) -> Result<McamPdu, Asn1Error> {
        let mut r = Reader::new(data);
        let (tag, content) = r.read_tlv()?;
        if tag.class != asn1::TagClass::Application || !tag.constructed {
            return Err(Asn1Error::UnknownVariant {
                what: "McamPdu",
                value: i64::from(tag.number),
            });
        }
        let mut c = r.descend(content)?;
        let pdu = match tag.number {
            T_ASSOC_REQ => {
                let user = ber::read_string(&mut c)?;
                // The capability flag is a trailing addition: absent
                // in pre-referral encodings, which decode as false.
                let referral_capable = if c.is_empty() {
                    false
                } else {
                    ber::read_bool(&mut c)?
                };
                McamPdu::AssociateReq {
                    user,
                    referral_capable,
                }
            }
            T_ASSOC_RSP => McamPdu::AssociateRsp {
                accepted: ber::read_bool(&mut c)?,
            },
            T_RELEASE_REQ => McamPdu::ReleaseReq,
            T_RELEASE_RSP => McamPdu::ReleaseRsp,
            T_CREATE_REQ => McamPdu::CreateMovieReq {
                title: ber::read_string(&mut c)?,
                format: ber::read_string(&mut c)?,
                frame_rate: ber::read_integer(&mut c)?.clamp(0, i64::from(u32::MAX)) as u32,
                frame_count: ber::read_integer(&mut c)?.max(0) as u64,
            },
            T_CREATE_RSP => McamPdu::CreateMovieRsp {
                ok: ber::read_bool(&mut c)?,
            },
            T_DELETE_REQ => McamPdu::DeleteMovieReq {
                title: ber::read_string(&mut c)?,
            },
            T_DELETE_RSP => McamPdu::DeleteMovieRsp {
                ok: ber::read_bool(&mut c)?,
            },
            T_SELECT_REQ => McamPdu::SelectMovieReq {
                title: ber::read_string(&mut c)?,
                client_addr: ber::read_integer(&mut c)?.clamp(0, i64::from(u32::MAX)) as u32,
            },
            T_SELECT_RSP => {
                let ok = ber::read_bool(&mut c)?;
                let params = if ok {
                    Some(StreamParams {
                        provider_addr: ber::read_integer(&mut c)?.clamp(0, i64::from(u32::MAX))
                            as u32,
                        stream_id: ber::read_integer(&mut c)?.clamp(0, i64::from(u32::MAX)) as u32,
                        movie: MovieDesc {
                            title: ber::read_string(&mut c)?,
                            format: ber::read_string(&mut c)?,
                            frame_rate: ber::read_integer(&mut c)?.clamp(0, 120) as u32,
                            frame_count: ber::read_integer(&mut c)?.max(0) as u64,
                        },
                    })
                } else {
                    None
                };
                McamPdu::SelectMovieRsp { params }
            }
            T_DESELECT_REQ => McamPdu::DeselectMovieReq,
            T_DESELECT_RSP => McamPdu::DeselectMovieRsp,
            T_LIST_REQ => McamPdu::ListMoviesReq {
                title_contains: ber::read_string(&mut c)?,
            },
            T_LIST_RSP => {
                let list = c.read_expect(Tag::SEQUENCE)?;
                let mut lr = c.descend(list)?;
                let mut titles = Vec::new();
                while !lr.is_empty() {
                    titles.push(ber::read_string(&mut lr)?);
                }
                McamPdu::ListMoviesRsp { titles }
            }
            T_QUERY_REQ => {
                let title = ber::read_string(&mut c)?;
                let list = c.read_expect(Tag::SEQUENCE)?;
                let mut lr = c.descend(list)?;
                let mut attrs = Vec::new();
                while !lr.is_empty() {
                    attrs.push(ber::read_string(&mut lr)?);
                }
                McamPdu::QueryAttrsReq { title, attrs }
            }
            T_QUERY_RSP => {
                let ok = ber::read_bool(&mut c)?;
                let attrs = if ok {
                    Some(read_attr_list(&mut c)?)
                } else {
                    None
                };
                McamPdu::QueryAttrsRsp { attrs }
            }
            T_MODIFY_REQ => McamPdu::ModifyAttrsReq {
                title: ber::read_string(&mut c)?,
                puts: read_attr_list(&mut c)?,
            },
            T_MODIFY_RSP => McamPdu::ModifyAttrsRsp {
                ok: ber::read_bool(&mut c)?,
            },
            T_PLAY_REQ => McamPdu::PlayReq {
                speed_pct: ber::read_integer(&mut c)?.clamp(1, 1000) as u32,
            },
            T_PLAY_RSP => McamPdu::PlayRsp {
                ok: ber::read_bool(&mut c)?,
            },
            T_PAUSE_REQ => McamPdu::PauseReq,
            T_PAUSE_RSP => McamPdu::PauseRsp,
            T_STOP_REQ => McamPdu::StopReq,
            T_STOP_RSP => McamPdu::StopRsp,
            T_SEEK_REQ => McamPdu::SeekReq {
                frame: ber::read_integer(&mut c)?.max(0) as u64,
            },
            T_SEEK_RSP => McamPdu::SeekRsp {
                ok: ber::read_bool(&mut c)?,
            },
            T_RECORD_REQ => McamPdu::RecordReq {
                title: ber::read_string(&mut c)?,
                frames: ber::read_integer(&mut c)?.max(0) as u64,
            },
            T_RECORD_RSP => McamPdu::RecordRsp {
                ok: ber::read_bool(&mut c)?,
            },
            T_ERROR_RSP => McamPdu::ErrorRsp {
                code: ber::read_integer(&mut c)?.clamp(0, i64::from(u32::MAX)) as u32,
                message: ber::read_string(&mut c)?,
            },
            T_REFERRAL_RSP => {
                let target = ber::read_string(&mut c)?;
                let list = c.read_expect(Tag::SEQUENCE)?;
                let mut lr = c.descend(list)?;
                let mut candidates = Vec::new();
                while !lr.is_empty() {
                    let item = lr.read_expect(Tag::SEQUENCE)?;
                    let mut ir = lr.descend(item)?;
                    let location = ber::read_string(&mut ir)?;
                    let available_bps = ber::read_integer(&mut ir)?.max(0) as u64;
                    ir.expect_end()?;
                    candidates.push((location, available_bps));
                }
                McamPdu::ReferralRsp { target, candidates }
            }
            other => {
                return Err(Asn1Error::UnknownVariant {
                    what: "McamPdu",
                    value: i64::from(other),
                })
            }
        };
        c.expect_end()?;
        r.expect_end()?;
        Ok(pdu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<McamPdu> {
        vec![
            McamPdu::AssociateReq {
                user: "keller".into(),
                referral_capable: false,
            },
            McamPdu::AssociateReq {
                user: "effelsberg".into(),
                referral_capable: true,
            },
            McamPdu::AssociateRsp { accepted: true },
            McamPdu::ReleaseReq,
            McamPdu::ReleaseRsp,
            McamPdu::CreateMovieReq {
                title: "Star Wars".into(),
                format: "XMovie-24".into(),
                frame_rate: 25,
                frame_count: 150_000,
            },
            McamPdu::CreateMovieRsp { ok: true },
            McamPdu::DeleteMovieReq {
                title: "Old".into(),
            },
            McamPdu::DeleteMovieRsp { ok: false },
            McamPdu::SelectMovieReq {
                title: "Star Wars".into(),
                client_addr: 12,
            },
            McamPdu::SelectMovieRsp {
                params: Some(StreamParams {
                    provider_addr: 3,
                    stream_id: 77,
                    movie: MovieDesc {
                        title: "Star Wars".into(),
                        format: "XMovie-24".into(),
                        frame_rate: 25,
                        frame_count: 150_000,
                    },
                }),
            },
            McamPdu::SelectMovieRsp { params: None },
            McamPdu::DeselectMovieReq,
            McamPdu::DeselectMovieRsp,
            McamPdu::ListMoviesReq {
                title_contains: "star".into(),
            },
            McamPdu::ListMoviesRsp {
                titles: vec!["Star Wars".into(), "Star Trek".into()],
            },
            McamPdu::QueryAttrsReq {
                title: "X".into(),
                attrs: vec!["framerate".into()],
            },
            McamPdu::QueryAttrsRsp {
                attrs: Some(vec![("framerate".into(), Value::Int(25))]),
            },
            McamPdu::QueryAttrsRsp { attrs: None },
            McamPdu::ModifyAttrsReq {
                title: "X".into(),
                puts: vec![("framerate".into(), Value::Int(30))],
            },
            McamPdu::ModifyAttrsRsp { ok: true },
            McamPdu::PlayReq { speed_pct: 100 },
            McamPdu::PlayRsp { ok: true },
            McamPdu::PauseReq,
            McamPdu::PauseRsp,
            McamPdu::StopReq,
            McamPdu::StopRsp,
            McamPdu::SeekReq { frame: 1234 },
            McamPdu::SeekRsp { ok: true },
            McamPdu::RecordReq {
                title: "Lecture".into(),
                frames: 500,
            },
            McamPdu::RecordRsp { ok: true },
            McamPdu::ErrorRsp {
                code: 42,
                message: "no such movie".into(),
            },
            McamPdu::ReferralRsp {
                target: "node-3".into(),
                candidates: vec![("node-3".into(), 8_000_000), ("node-2".into(), 2_000_000)],
            },
            McamPdu::ReferralRsp {
                target: "node-1".into(),
                candidates: vec![],
            },
        ]
    }

    #[test]
    fn every_pdu_roundtrips() {
        for pdu in samples() {
            let enc = pdu.encode();
            let dec = McamPdu::decode(&enc).unwrap_or_else(|e| panic!("{pdu:?}: {e}"));
            assert_eq!(dec, pdu);
        }
    }

    #[test]
    fn request_classification() {
        assert!(McamPdu::PlayReq { speed_pct: 100 }.is_request());
        assert!(!McamPdu::PlayRsp { ok: true }.is_request());
        assert!(McamPdu::ReleaseReq.is_request());
        assert!(!McamPdu::ErrorRsp {
            code: 0,
            message: String::new()
        }
        .is_request());
    }

    #[test]
    fn malformed_rejected() {
        assert!(McamPdu::decode(&[]).is_err());
        assert!(McamPdu::decode(&[0x02, 0x01, 0x00]).is_err());
        let mut enc = McamPdu::PauseReq.encode();
        enc[0] = 0x7f; // unknown application tag (high form)
        assert!(McamPdu::decode(&enc).is_err());
        // Truncated content.
        let enc = McamPdu::AssociateReq {
            user: "u".into(),
            referral_capable: false,
        }
        .encode();
        assert!(McamPdu::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn old_form_associate_req_decodes_without_capability() {
        // A pre-referral client encodes only the user name; such
        // PDUs must keep decoding (capability false), and the
        // capable=false encoding must be byte-identical to it.
        let mut old = Vec::new();
        ber::write_constructed(Tag::application(T_ASSOC_REQ), &mut old, |c| {
            ber::write_string("legacy", c);
        });
        assert_eq!(
            McamPdu::decode(&old).unwrap(),
            McamPdu::AssociateReq {
                user: "legacy".into(),
                referral_capable: false,
            }
        );
        assert_eq!(
            McamPdu::AssociateReq {
                user: "legacy".into(),
                referral_capable: false,
            }
            .encode(),
            old
        );
    }

    #[test]
    fn referral_is_unknown_to_old_decoders() {
        // Tag 29 did not exist before the referral extension: an old
        // decoder's `other =>` arm reported it as an unknown variant,
        // which is why servers only refer capable clients. Sanity:
        // the tag is what we claim.
        let enc = McamPdu::ReferralRsp {
            target: "node-2".into(),
            candidates: vec![],
        }
        .encode();
        let (tag, _) = asn1::Tag::decode(&enc).unwrap();
        assert_eq!(tag.number, T_REFERRAL_RSP);
        assert!(!McamPdu::ReferralRsp {
            target: String::new(),
            candidates: vec![]
        }
        .is_request());
    }
}
