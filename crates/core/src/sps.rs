//! The Stream Provider System (SPS): manages MTP senders for a server
//! machine.
//!
//! The paper separates the CM-stream level from the control level
//! (Table 1); accordingly the SPS is plain hand-written code (like the
//! XMovie service it stands in for), controlled *by* the Estelle
//! specification through the SUA/SPA agent but paced by the simulation
//! driver.

use mtp::{MovieSource, MtpSender, StreamState};
use netsim::{DatagramNet, DatagramSocket, NetAddr, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Stream-provider errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpsError {
    /// Unknown stream id.
    NoSuchStream(u32),
}

impl fmt::Display for SpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpsError::NoSuchStream(id) => write!(f, "no such stream {id}"),
        }
    }
}
impl std::error::Error for SpsError {}

/// The per-server stream provider: a registry of paced MTP senders
/// sharing one datagram socket.
pub struct StreamProviderSystem {
    socket: DatagramSocket,
    addr: NetAddr,
    senders: Mutex<HashMap<u32, MtpSender>>,
    next_stream: AtomicU32,
}

impl fmt::Debug for StreamProviderSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamProviderSystem")
            .field("addr", &self.addr)
            .field("streams", &self.senders.lock().len())
            .finish_non_exhaustive()
    }
}

impl StreamProviderSystem {
    /// Binds the provider to `addr` on the datagram network.
    ///
    /// # Panics
    ///
    /// Panics if the address is already bound (deployment error).
    pub fn new(dg: &Arc<DatagramNet>, addr: NetAddr) -> Arc<Self> {
        let socket = dg.bind(addr).expect("SPS address available");
        Arc::new(StreamProviderSystem {
            socket,
            addr,
            senders: Mutex::new(HashMap::new()),
            next_stream: AtomicU32::new(1),
        })
    }

    /// The provider's datagram address.
    pub fn addr(&self) -> NetAddr {
        self.addr
    }

    /// Opens a stream of `movie` towards `dest`, returning its id.
    pub fn open(&self, movie: MovieSource, dest: NetAddr) -> u32 {
        let id = self.next_stream.fetch_add(1, Ordering::SeqCst);
        let sender = MtpSender::new(self.socket.clone(), dest, id, movie);
        self.senders.lock().insert(id, sender);
        id
    }

    /// Closes a stream.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids.
    pub fn close(&self, id: u32) -> Result<(), SpsError> {
        self.senders.lock().remove(&id).map(|_| ()).ok_or(SpsError::NoSuchStream(id))
    }

    fn with_sender<R>(
        &self,
        id: u32,
        f: impl FnOnce(&mut MtpSender) -> R,
    ) -> Result<R, SpsError> {
        let mut senders = self.senders.lock();
        senders.get_mut(&id).map(f).ok_or(SpsError::NoSuchStream(id))
    }

    /// Starts or resumes playback.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids.
    pub fn play(&self, id: u32, speed_pct: u32, now: SimTime) -> Result<(), SpsError> {
        self.with_sender(id, |s| {
            s.set_speed_pct(speed_pct);
            s.play(now);
        })
    }

    /// Pauses playback.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids.
    pub fn pause(&self, id: u32) -> Result<(), SpsError> {
        self.with_sender(id, MtpSender::pause)
    }

    /// Stops playback (rewinds).
    ///
    /// # Errors
    ///
    /// Fails for unknown ids.
    pub fn stop(&self, id: u32) -> Result<(), SpsError> {
        self.with_sender(id, MtpSender::stop)
    }

    /// Seeks to a frame.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids.
    pub fn seek(&self, id: u32, frame: u64) -> Result<(), SpsError> {
        self.with_sender(id, |s| s.seek(frame))
    }

    /// Current playback state of a stream.
    pub fn state(&self, id: u32) -> Option<StreamState> {
        self.senders.lock().get(&id).map(MtpSender::state)
    }

    /// Current frame position of a stream.
    pub fn position(&self, id: u32) -> Option<u64> {
        self.senders.lock().get(&id).map(MtpSender::position)
    }

    /// Emits all frames due at or before `now` across all streams and
    /// routes receiver feedback reports to their senders.
    pub fn pump(&self, now: SimTime) -> usize {
        let mut senders = self.senders.lock();
        while let Some(dg) = self.socket.recv() {
            if let Ok(fb) = mtp::MtpFeedback::decode(&dg.payload) {
                if let Some(sender) = senders.get_mut(&fb.stream_id) {
                    sender.handle_feedback(&fb);
                }
            }
        }
        senders.values_mut().map(|s| s.poll(now)).sum()
    }

    /// Earliest due instant across all playing streams.
    pub fn next_due(&self) -> Option<SimTime> {
        let senders = self.senders.lock();
        senders.values().filter_map(MtpSender::next_due).min()
    }

    /// Number of open streams.
    pub fn stream_count(&self) -> usize {
        self.senders.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkConfig, Network, SimDuration};

    fn rig() -> (Arc<Network>, Arc<DatagramNet>, Arc<StreamProviderSystem>) {
        let net = Arc::new(Network::new(0));
        let dg = DatagramNet::new(&net, LinkConfig::perfect(SimDuration::from_millis(1)), 0);
        let sps = StreamProviderSystem::new(&dg, NetAddr(100));
        (net, dg, sps)
    }

    #[test]
    fn open_play_pump_close() {
        let (net, dg, sps) = rig();
        let client = dg.bind(NetAddr(5)).unwrap();
        let id = sps.open(MovieSource::test_movie(1, 1), NetAddr(5));
        assert_eq!(sps.stream_count(), 1);
        sps.play(id, 100, net.now()).unwrap();
        assert_eq!(sps.state(id), Some(StreamState::Playing));
        // Pump one second of frames.
        net.run_until(SimTime::from_secs(1));
        let sent = sps.pump(net.now());
        assert!(sent >= 25, "sent={sent}");
        net.run_until_idle();
        assert!(client.pending() >= 25);
        sps.close(id).unwrap();
        assert_eq!(sps.close(id), Err(SpsError::NoSuchStream(id)));
    }

    #[test]
    fn control_ops_route_to_sender() {
        let (net, _dg, sps) = rig();
        let id = sps.open(MovieSource::test_movie(2, 1), NetAddr(5));
        sps.play(id, 200, net.now()).unwrap();
        sps.pause(id).unwrap();
        assert_eq!(sps.state(id), Some(StreamState::Paused));
        sps.seek(id, 30).unwrap();
        assert_eq!(sps.position(id), Some(30));
        sps.stop(id).unwrap();
        assert_eq!(sps.position(id), Some(0));
        assert!(sps.play(99, 100, net.now()).is_err());
    }

    #[test]
    fn next_due_tracks_playing_streams() {
        let (net, _dg, sps) = rig();
        assert!(sps.next_due().is_none());
        let a = sps.open(MovieSource::test_movie(1, 1), NetAddr(5));
        assert!(sps.next_due().is_none(), "ready but not playing");
        sps.play(a, 100, net.now()).unwrap();
        assert_eq!(sps.next_due(), Some(net.now()));
    }
}
