//! The Stream Provider System (SPS): manages MTP senders for a server
//! machine.
//!
//! The paper separates the CM-stream level from the control level
//! (Table 1); accordingly the SPS is plain hand-written code (like the
//! XMovie service it stands in for), controlled *by* the Estelle
//! specification through the SUA/SPA agent but paced by the simulation
//! driver.
//!
//! When built over a [`store::BlockStore`] the SPS pulls frames
//! through the continuous-media storage subsystem: every open passes
//! disk-bandwidth admission control, a per-stream prefetcher pipelines
//! block reads ahead of the sender's frame deadlines, and a frame
//! whose block has not yet arrived stalls (and is sent late) instead
//! of being synthesized out of thin air.
//!
//! The SPS also hosts *recording sessions* ([`StreamProviderSystem::
//! record_open`]): captured frames arrive at the camera's frame rate
//! on the virtual clock and are appended through the store's write
//! path, so a recording reserves and consumes real disk bandwidth and
//! can crowd out (or be refused like) a playback stream.

use mtp::{MovieSource, MtpSender, StreamState};
use netsim::{DatagramNet, DatagramSocket, NetAddr, SimDuration, SimTime};
use parking_lot::Mutex;
use share::{Departure, JoinPlan, ShareManager};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use store::{BlockStore, MovieId, PrefetchHint, StoreError};

/// A finished recording, as returned by
/// [`StreamProviderSystem::record_close`]: enough to finalize the
/// directory entry and to [`StreamProviderSystem::import_movie`] the
/// copy onto replica servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedMovie {
    /// The captured content (replayable source parameters).
    pub source: MovieSource,
    /// Mean bitrate measured over the captured frames, bits/second.
    pub bitrate_bps: u64,
}

/// A camera capture in progress: frames are appended to the store's
/// write path at the source's frame rate on the virtual clock.
#[derive(Debug)]
struct RecordingSession {
    source: MovieSource,
    captured: u64,
    next_frame_at: SimTime,
    sealed: bool,
}

/// Stream-provider errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpsError {
    /// Unknown stream id.
    NoSuchStream(u32),
    /// Admission control refused the stream's disk-bandwidth demand.
    AdmissionRejected {
        /// Bandwidth the stream would need, in bits/second.
        demanded_bps: u64,
        /// Bandwidth still uncommitted, in bits/second.
        available_bps: u64,
    },
    /// The storage subsystem failed the operation.
    StorageError(String),
}

impl fmt::Display for SpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpsError::NoSuchStream(id) => write!(f, "no such stream {id}"),
            SpsError::AdmissionRejected {
                demanded_bps,
                available_bps,
            } => write!(
                f,
                "admission rejected: stream needs {demanded_bps} bps, {available_bps} bps available"
            ),
            SpsError::StorageError(msg) => write!(f, "storage error: {msg}"),
        }
    }
}
impl std::error::Error for SpsError {}

impl From<StoreError> for SpsError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::AdmissionRejected {
                demanded_bps,
                available_bps,
            } => SpsError::AdmissionRejected {
                demanded_bps,
                available_bps,
            },
            other => SpsError::StorageError(other.to_string()),
        }
    }
}

/// The per-server stream provider: a registry of paced MTP senders
/// sharing one datagram socket, optionally fed by a block store.
pub struct StreamProviderSystem {
    socket: DatagramSocket,
    addr: NetAddr,
    senders: Mutex<HashMap<u32, MtpSender>>,
    movie_ids: Mutex<HashMap<u32, MovieId>>,
    recordings: Mutex<HashMap<u32, RecordingSession>>,
    /// Last *forward* seek delta (in blocks) per stream: two
    /// consecutive forward jumps of the same width are treated as a
    /// skimming pattern and turned into a strided prefetch hint.
    seek_deltas: Mutex<HashMap<u32, u64>>,
    store: Option<Arc<BlockStore>>,
    /// The stream-sharing merge engine, when the server runs with
    /// flash-crowd batching enabled (requires a store: followers are
    /// served from its interval cache).
    share: Option<Arc<ShareManager>>,
    next_stream: AtomicU32,
}

impl fmt::Debug for StreamProviderSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamProviderSystem")
            .field("addr", &self.addr)
            .field("streams", &self.senders.lock().len())
            .field("store", &self.store.is_some())
            .finish_non_exhaustive()
    }
}

impl StreamProviderSystem {
    /// Binds the provider to `addr` on the datagram network, streaming
    /// straight from synthetic sources (no storage model).
    ///
    /// # Panics
    ///
    /// Panics if the address is already bound (deployment error).
    pub fn new(dg: &Arc<DatagramNet>, addr: NetAddr) -> Arc<Self> {
        Self::build(dg, addr, None, None)
    }

    /// Binds the provider to `addr`, pulling every stream through
    /// `store` (admission control, cache, prefetch).
    ///
    /// # Panics
    ///
    /// Panics if the address is already bound (deployment error).
    pub fn with_store(dg: &Arc<DatagramNet>, addr: NetAddr, store: Arc<BlockStore>) -> Arc<Self> {
        Self::build(dg, addr, Some(store), None)
    }

    /// Binds the provider to `addr` over `store`, with `share` merging
    /// close-spaced viewers of one title into leader/follower groups:
    /// merged followers charge no disk bandwidth (they ride the pinned
    /// cache span behind their leader), fast-feeding followers charge
    /// only the catch-up delta until they converge.
    ///
    /// # Panics
    ///
    /// Panics if the address is already bound (deployment error).
    pub fn with_shared_store(
        dg: &Arc<DatagramNet>,
        addr: NetAddr,
        store: Arc<BlockStore>,
        share: Arc<ShareManager>,
    ) -> Arc<Self> {
        Self::build(dg, addr, Some(store), Some(share))
    }

    fn build(
        dg: &Arc<DatagramNet>,
        addr: NetAddr,
        store: Option<Arc<BlockStore>>,
        share: Option<Arc<ShareManager>>,
    ) -> Arc<Self> {
        let socket = dg.bind(addr).expect("SPS address available");
        // Stream ids are distinct across providers (the address seeds
        // the counter's high 16 bits), so clients and MCAs can tell
        // replicas' streams apart. `open` asserts the 16-bit
        // per-provider slice is never exhausted — wrapping into a
        // neighbour's range would make id-based bookkeeping ambiguous
        // (control-op routing itself resolves a stream's home by
        // asking the providers, not by decoding the id).
        Arc::new(StreamProviderSystem {
            socket,
            addr,
            senders: Mutex::new(HashMap::new()),
            movie_ids: Mutex::new(HashMap::new()),
            recordings: Mutex::new(HashMap::new()),
            seek_deltas: Mutex::new(HashMap::new()),
            store,
            share,
            next_stream: AtomicU32::new((addr.0 << 16) | 1),
        })
    }

    /// The provider's datagram address.
    pub fn addr(&self) -> NetAddr {
        self.addr
    }

    /// Allocates the next stream/recording id from this provider's
    /// 16-bit slice.
    fn alloc_stream_id(&self) -> u32 {
        let id = self.next_stream.fetch_add(1, Ordering::SeqCst);
        assert_eq!(
            id >> 16,
            self.addr.0,
            "stream-id slice exhausted: provider {} opened 2^16 streams",
            self.addr.0
        );
        id
    }

    /// The provider's location name as stored in directory entries.
    pub fn location(&self) -> String {
        format!("node-{}", self.addr.0)
    }

    /// The storage subsystem feeding this provider, if any.
    pub fn store(&self) -> Option<&Arc<BlockStore>> {
        self.store.as_ref()
    }

    /// The stream-sharing merge engine, if one is attached.
    pub fn share(&self) -> Option<&Arc<ShareManager>> {
        self.share.as_ref()
    }

    /// Whether a merge group on this provider is currently streaming
    /// `movie` — the `SelectMovie` routing tie-break: among equally
    /// loaded replicas, the one already sharing the title serves the
    /// next viewer (nearly) for free.
    pub fn shares_source(&self, movie: &MovieSource) -> bool {
        match (&self.share, &self.store) {
            (Some(share), Some(store)) => store
                .find_movie(movie)
                .is_some_and(|id| share.shares_movie(id)),
            _ => false,
        }
    }

    /// Opens a stream of `movie` towards `dest`, returning its id.
    ///
    /// With a merge engine attached the viewer is batched into an
    /// existing group when one streams the title close by: a merged
    /// follower charges **zero** disk bandwidth, a fast-feeding
    /// follower only the catch-up delta; only a fresh leader pays a
    /// full stream.
    ///
    /// # Errors
    ///
    /// [`SpsError::AdmissionRejected`] when the store's admission
    /// control cannot fit the stream's bandwidth demand.
    pub fn open(&self, movie: MovieSource, dest: NetAddr, now: SimTime) -> Result<u32, SpsError> {
        let id = self.alloc_stream_id();
        if let Some(store) = &self.store {
            let movie_id = store.register_movie(&movie);
            match self.share.as_ref().filter(|s| s.config().enabled) {
                None => store.open_stream(id, movie_id, 100, now)?,
                Some(share) => match share.plan_join(movie_id) {
                    JoinPlan::Lead => {
                        store.open_stream(id, movie_id, 100, now)?;
                        share.open_leader(id, movie_id);
                    }
                    JoinPlan::Merge { leader, .. } => {
                        store.open_stream_with_demand(id, movie_id, 100, 0, now)?;
                        share.open_merged(id, movie_id, leader);
                        store.set_pinned_ranges(&share.pinned_ranges());
                    }
                    JoinPlan::FastFeed { leader, .. } => {
                        let bitrate = store.demand_for(movie_id, 100).unwrap_or(0);
                        let delta = share.fast_feed_delta_bps(bitrate);
                        store.open_stream_with_demand(id, movie_id, 100, delta, now)?;
                        share.open_fast_feed(id, movie_id, leader, delta);
                        store.set_pinned_ranges(&share.pinned_ranges());
                    }
                },
            }
            self.movie_ids.lock().insert(id, movie_id);
        }
        let sender = MtpSender::new(self.socket.clone(), dest, id, movie);
        self.senders.lock().insert(id, sender);
        Ok(id)
    }

    /// Before a leader with followers departs its band (trick op), the
    /// replacement disk stream for the group must fit: the promotion
    /// candidate is re-charged one full stream here, and the trick op
    /// is refused when admission cannot take it — the leader may not
    /// strand its followers without bandwidth.
    fn charge_replacement_leader(
        &self,
        store: &Arc<BlockStore>,
        share: &Arc<ShareManager>,
        leader: u32,
    ) -> Result<(), SpsError> {
        let Some(candidate) = share.promotion_candidate(leader) else {
            return Ok(());
        };
        let movie = self.movie_ids.lock().get(&candidate).copied();
        let demand = movie.and_then(|m| store.demand_for(m, 100)).unwrap_or(0);
        store.recharge_stream(candidate, demand)?;
        Ok(())
    }

    /// Applies the sharing consequences of a trick operation on
    /// `stream` before the operation itself runs, with the stream
    /// landing at `target_block` afterwards.
    ///
    /// - A follower leaving its group must re-admit a full disk stream
    ///   of its own; rejection fails the operation (the follower stays
    ///   merged, untouched).
    /// - A leader with followers must first see its replacement leader
    ///   charged; then it departs into a standalone band (keeping its
    ///   own charge) and the nearest follower is promoted.
    fn share_departure(&self, stream: u32, target_block: u64) -> Result<(), SpsError> {
        let (Some(store), Some(share)) = (&self.store, &self.share) else {
            return Ok(());
        };
        if share.is_follower(stream) {
            let movie = self.movie_ids.lock().get(&stream).copied();
            let demand = movie.and_then(|m| store.demand_for(m, 100)).unwrap_or(0);
            store.recharge_stream(stream, demand)?;
            share.split_out(stream, target_block);
            self.reset_catch_up(stream);
            store.set_pinned_ranges(&share.pinned_ranges());
        } else if share.is_leader_with_followers(stream) {
            self.charge_replacement_leader(store, share, stream)?;
            if let Departure::Promoted { new_leader } =
                share.on_leader_departure(stream, target_block)
            {
                self.reset_catch_up(new_leader);
            }
            store.set_pinned_ranges(&share.pinned_ranges());
        }
        Ok(())
    }

    /// A fast-feeding follower that became a leader (or split out)
    /// returns to nominal playback rate.
    fn reset_catch_up(&self, stream: u32) {
        if let Some(sender) = self.senders.lock().get_mut(&stream) {
            sender.set_speed_pct(100);
        }
    }

    /// Opens a recording session capturing `movie.frame_count` frames
    /// of `movie` at its frame rate, starting at `now`, and returns
    /// the session's stream id. With a store attached the session
    /// passes write-bandwidth admission control and every captured
    /// frame goes through the striped write path.
    ///
    /// # Errors
    ///
    /// [`SpsError::AdmissionRejected`] when the write bandwidth does
    /// not fit next to the streams already admitted.
    pub fn record_open(&self, movie: MovieSource, now: SimTime) -> Result<u32, SpsError> {
        let id = self.alloc_stream_id();
        if let Some(store) = &self.store {
            store.open_recording(id, &movie)?;
        }
        self.recordings.lock().insert(
            id,
            RecordingSession {
                source: movie,
                captured: 0,
                next_frame_at: now,
                sealed: false,
            },
        );
        Ok(id)
    }

    /// Whether a recording has captured every frame and (with a store)
    /// persisted every block.
    pub fn recording_finished(&self, id: u32) -> bool {
        let recordings = self.recordings.lock();
        let Some(session) = recordings.get(&id) else {
            return false;
        };
        session.captured >= session.source.frame_count
            && self
                .store
                .as_ref()
                .is_none_or(|s| s.recording_durable(id) == Some(true))
    }

    /// Finalizes a finished recording: the store registers the
    /// captured blocks as a playable movie and the session closes.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, and with [`SpsError::StorageError`]
    /// while the recording is still capturing or persisting.
    pub fn record_close(&self, id: u32) -> Result<RecordedMovie, SpsError> {
        let mut recordings = self.recordings.lock();
        let Some(session) = recordings.get(&id) else {
            return Err(SpsError::NoSuchStream(id));
        };
        let bitrate_bps = match &self.store {
            Some(store) => store.finish_recording(id)?.bitrate_bps,
            None => session.source.mean_bitrate_bps().max(1),
        };
        let session = recordings.remove(&id).expect("checked above");
        Ok(RecordedMovie {
            source: session.source,
            bitrate_bps,
        })
    }

    /// Number of recording sessions in progress.
    pub fn recording_count(&self) -> usize {
        self.recordings.lock().len()
    }

    /// Copies a finished recording onto this provider's store (the
    /// replication path); a provider without a store has nothing to
    /// copy onto and ignores the request.
    pub fn import_movie(&self, source: &MovieSource, now: SimTime) {
        if let Some(store) = &self.store {
            store.import_movie(source, now);
        }
    }

    /// Tears the provider down as a machine crash: every live stream
    /// and in-progress recording is dropped without a release
    /// handshake, their admission bandwidth and partial blocks
    /// released. Returns the number of sessions killed. The datagram
    /// socket stays bound, so a later re-registration ("repair and
    /// reboot") reuses the provider.
    pub fn crash(&self) -> usize {
        let recordings: Vec<u32> = self.recordings.lock().keys().copied().collect();
        let streams: Vec<u32> = self.senders.lock().keys().copied().collect();
        let killed = recordings.len() + streams.len();
        for id in recordings {
            self.recordings.lock().remove(&id);
            if let Some(store) = &self.store {
                store.abort_recording(id);
            }
        }
        for id in streams {
            let _ = self.close(id);
        }
        killed
    }

    /// Closes a stream, releasing its storage bandwidth. Closing an
    /// in-progress recording aborts it (bandwidth released, blocks
    /// freed).
    ///
    /// # Errors
    ///
    /// Fails for unknown ids.
    pub fn close(&self, id: u32) -> Result<(), SpsError> {
        if self.recordings.lock().remove(&id).is_some() {
            if let Some(store) = &self.store {
                store.abort_recording(id);
            }
            return Ok(());
        }
        if let Some(store) = &self.store {
            store.close_stream(id);
            if let Some(share) = &self.share {
                if let Departure::Promoted { new_leader } = share.on_close(id) {
                    // The closing leader just released a full stream,
                    // so the promoted follower's re-charge always fits.
                    let movie = self.movie_ids.lock().get(&new_leader).copied();
                    let demand = movie.and_then(|m| store.demand_for(m, 100)).unwrap_or(0);
                    let _ = store.recharge_stream(new_leader, demand);
                    self.reset_catch_up(new_leader);
                }
                store.set_pinned_ranges(&share.pinned_ranges());
            }
        }
        self.movie_ids.lock().remove(&id);
        self.seek_deltas.lock().remove(&id);
        self.senders
            .lock()
            .remove(&id)
            .map(|_| ())
            .ok_or(SpsError::NoSuchStream(id))
    }

    fn with_sender<R>(&self, id: u32, f: impl FnOnce(&mut MtpSender) -> R) -> Result<R, SpsError> {
        let mut senders = self.senders.lock();
        senders
            .get_mut(&id)
            .map(f)
            .ok_or(SpsError::NoSuchStream(id))
    }

    /// Starts or resumes playback.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, and with [`SpsError::AdmissionRejected`]
    /// when a speed above nominal would exceed the store's remaining
    /// disk bandwidth (the stream then keeps its previous speed).
    pub fn play(&self, id: u32, speed_pct: u32, now: SimTime) -> Result<(), SpsError> {
        if !self.senders.lock().contains_key(&id) {
            return Err(SpsError::NoSuchStream(id));
        }
        if let Some(share) = &self.share {
            if speed_pct == 100 && share.is_follower(id) {
                // Nominal-rate playback inside a group: no admission
                // change. A still-converging follower keeps (or
                // resumes) the fast-feed rate, a merged one rides the
                // leader's pace exactly.
                let rate = if share.is_fast_feeding(id) {
                    share.config().catch_up_rate_pct
                } else {
                    100
                };
                return self.with_sender(id, |s| {
                    s.set_speed_pct(rate);
                    s.play(now);
                });
            }
            if speed_pct != 100 {
                // A trick-speed viewer leaves its band: a follower
                // re-admits, a leader hands the group over first.
                let block = self
                    .store
                    .as_ref()
                    .and_then(|s| s.stream_position_block(id))
                    .unwrap_or(0);
                self.share_departure(id, block)?;
            }
        }
        if let Some(store) = &self.store {
            store.set_speed(id, speed_pct)?;
            if speed_pct != 100 {
                // Trick-speed playback consumes forward, only faster:
                // widen the read-ahead horizon to the speed multiple
                // (and drop any stale rewind hint).
                let stride = (speed_pct / 100).clamp(1, 4);
                let _ = store.set_prefetch_hint(id, PrefetchHint::forward(stride));
            }
        }
        self.with_sender(id, |s| {
            s.set_speed_pct(speed_pct);
            s.play(now);
        })
    }

    /// Pauses playback. A shared follower pausing drifts out of its
    /// group: it must re-admit a full disk stream of its own, and a
    /// leader with followers hands the group to the nearest one.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, and with [`SpsError::AdmissionRejected`]
    /// when a group member's split-out stream does not fit (the member
    /// then stays in its group, still playing).
    pub fn pause(&self, id: u32) -> Result<(), SpsError> {
        if !self.senders.lock().contains_key(&id) {
            return Err(SpsError::NoSuchStream(id));
        }
        let block = self
            .store
            .as_ref()
            .and_then(|s| s.stream_position_block(id))
            .unwrap_or(0);
        self.share_departure(id, block)?;
        self.with_sender(id, MtpSender::pause)
    }

    /// Stops playback (rewinds; the prefetcher repositions to the
    /// movie's first block). Stopping is a seek to frame 0 for the
    /// sharing engine: group members split out or hand over first.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, and with [`SpsError::AdmissionRejected`]
    /// when a group member's split-out stream does not fit.
    pub fn stop(&self, id: u32, now: SimTime) -> Result<(), SpsError> {
        if !self.senders.lock().contains_key(&id) {
            return Err(SpsError::NoSuchStream(id));
        }
        self.share_departure(id, 0)?;
        self.with_sender(id, MtpSender::stop)?;
        if let Some(store) = &self.store {
            store.seek_stream(id, 0, now)?;
        }
        Ok(())
    }

    /// The prefetch prediction for a seek from block `cur` to block
    /// `target`: a backward jump hints a rewind storm (stride = jump
    /// width), and two consecutive forward jumps of the same width
    /// hint a skimming pattern (horizon widened to cover the next
    /// jump). A plain one-off forward seek carries no prediction.
    fn seek_hint(&self, id: u32, cur: u64, target: u64, readahead: u64) -> PrefetchHint {
        if target < cur {
            self.seek_deltas.lock().remove(&id);
            let stride = (cur - target).clamp(1, 64) as u32;
            PrefetchHint::backward(stride)
        } else if target > cur {
            let delta = target - cur;
            let repeated = self.seek_deltas.lock().insert(id, delta) == Some(delta);
            if repeated {
                let stride = delta.div_ceil(readahead.max(1)).clamp(1, 8) as u32;
                PrefetchHint::forward(stride)
            } else {
                PrefetchHint::default()
            }
        } else {
            PrefetchHint::default()
        }
    }

    /// Seeks to a frame (the prefetcher follows). A group member
    /// seeking out of its band splits out (follower) or hands the
    /// group over (leader) — both honestly re-admitted. The jump's
    /// direction and width are threaded into the store as a
    /// [`PrefetchHint`] so rewind storms and fixed-stride skimming
    /// land on prefetched ground.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids, and with [`SpsError::AdmissionRejected`]
    /// when a group member's split-out stream does not fit (the member
    /// then stays in its group at its old position).
    pub fn seek(&self, id: u32, frame: u64, now: SimTime) -> Result<(), SpsError> {
        if !self.senders.lock().contains_key(&id) {
            return Err(SpsError::NoSuchStream(id));
        }
        let block = self
            .store
            .as_ref()
            .and_then(|store| {
                let movie = self.movie_ids.lock().get(&id).copied()?;
                store.block_of_frame(movie, frame)
            })
            .unwrap_or(0);
        self.share_departure(id, block)?;
        self.with_sender(id, |s| s.seek(frame))?;
        if let Some(store) = &self.store {
            let cur = store.stream_position_block(id).unwrap_or(0);
            let readahead = u64::from(store.config().readahead_blocks);
            let hint = self.seek_hint(id, cur, block, readahead);
            store.seek_stream_with_hint(id, frame, hint, now)?;
        }
        Ok(())
    }

    /// Current playback state of a stream.
    pub fn state(&self, id: u32) -> Option<StreamState> {
        self.senders.lock().get(&id).map(MtpSender::state)
    }

    /// Current frame position of a stream.
    pub fn position(&self, id: u32) -> Option<u64> {
        self.senders.lock().get(&id).map(MtpSender::position)
    }

    /// Captures all recording frames due at or before `now`, feeding
    /// them through the store's write path; sessions that reach their
    /// frame target are sealed (tail flushed, bandwidth released).
    fn pump_recordings(&self, now: SimTime) {
        let mut recordings = self.recordings.lock();
        for (id, session) in recordings.iter_mut() {
            let interval = SimDuration::from_micros(session.source.frame_interval_us());
            while session.captured < session.source.frame_count && session.next_frame_at <= now {
                let at = session.next_frame_at;
                let size = session.source.frame(session.captured).map_or(0, |f| f.size);
                if let Some(store) = &self.store {
                    let _ = store.append_frame(*id, size, at);
                }
                session.captured += 1;
                session.next_frame_at = at + interval;
            }
            if session.captured >= session.source.frame_count && !session.sealed {
                session.sealed = true;
                if let Some(store) = &self.store {
                    let _ = store.seal_recording(*id, now);
                }
            }
        }
    }

    /// Emits all frames due at or before `now` across all streams
    /// (gated on storage delivery when a store is attached), captures
    /// due recording frames, and routes receiver feedback reports to
    /// their senders.
    pub fn pump(&self, now: SimTime) -> usize {
        self.pump_recordings(now);
        if let Some(store) = &self.store {
            store.pump(now);
        }
        let mut senders = self.senders.lock();
        while let Some(dg) = self.socket.recv() {
            if let Ok(fb) = mtp::MtpFeedback::decode(&dg.payload) {
                if let Some(sender) = senders.get_mut(&fb.stream_id) {
                    sender.handle_feedback(&fb);
                }
            }
        }
        let mut sent = 0;
        for (id, sender) in senders.iter_mut() {
            let ready = self
                .store
                .as_ref()
                .and_then(|s| s.frames_ready_through(*id));
            sent += sender.poll_gated(now, ready);
            if let Some(store) = &self.store {
                store.note_position(*id, sender.position());
                if let Some(share) = &self.share {
                    if let Some(block) = store.stream_position_block(*id) {
                        share.note_position(*id, block);
                    }
                }
            }
        }
        // Sharing maintenance: fast-feeds whose gap has closed to the
        // merge window release their delta reservation and drop back
        // to nominal rate; the pinned cache spans track every group's
        // current [trailing follower, leader] window.
        if let (Some(store), Some(share)) = (&self.store, &self.share) {
            for id in share.converged_fast_feeds() {
                let _ = store.recharge_stream(id, 0);
                if let Some(sender) = senders.get_mut(&id) {
                    sender.set_speed_pct(100);
                }
                share.mark_converged(id);
            }
            store.set_pinned_ranges(&share.pinned_ranges());
        }
        sent
    }

    /// Earliest instant at which any stream can make progress: the
    /// next frame deadline of a stream whose data is ready, or the
    /// next storage completion for stalled ones.
    pub fn next_due(&self) -> Option<SimTime> {
        let senders = self.senders.lock();
        let store_next = self.store.as_ref().and_then(|s| s.next_event());
        let sender_due = senders
            .iter()
            .filter_map(|(id, s)| {
                let due = s.next_due()?;
                if let Some(store) = &self.store {
                    let ready = store.frames_ready_through(*id).unwrap_or(u64::MAX);
                    let position = s.position();
                    if position < s.movie().frame_count && position >= ready {
                        // Stalled on storage: the store's next
                        // completion is the real wake-up point.
                        return None;
                    }
                }
                Some(due)
            })
            .min();
        // Recording sessions wake at their next frame-capture instant
        // (persistence completions are covered by `store_next`).
        let recording_due = self
            .recordings
            .lock()
            .values()
            .filter(|s| s.captured < s.source.frame_count)
            .map(|s| s.next_frame_at)
            .min();
        [store_next, sender_due, recording_due]
            .into_iter()
            .flatten()
            .min()
    }

    /// Number of open streams.
    pub fn stream_count(&self) -> usize {
        self.senders.lock().len()
    }

    /// Whether this provider hosts the stream (cluster routing asks
    /// every replica to find a stream's home for control operations).
    pub fn has_stream(&self, id: u32) -> bool {
        self.senders.lock().contains_key(&id)
    }
}

/// Load routing asks the provider's admission controller; a provider
/// without a storage model never saturates.
impl cluster::LoadProbe for StreamProviderSystem {
    fn load(&self) -> cluster::LoadSnapshot {
        match &self.store {
            Some(store) => cluster::LoadProbe::load(&**store),
            None => cluster::LoadSnapshot {
                available_bps: u64::MAX,
                committed_bps: 0,
                capacity_bps: u64::MAX,
                open_streams: self.stream_count(),
                cache_hit_permille: 0,
            },
        }
    }
}

/// The copy token a provider without a storage model hands out:
/// there is nothing to write, so the copy is complete on arrival.
const STORELESS_COPY: u64 = u64::MAX;

/// Migration copies land in the provider's block store through the
/// paced, admission-charged import path; a provider without a store
/// has nothing to copy onto and completes instantly.
impl cluster::MigrationHost for StreamProviderSystem {
    fn begin_copy(
        &self,
        source: &MovieSource,
        reserve_bps: u64,
        now: SimTime,
    ) -> Result<u64, cluster::CopyRejected> {
        match &self.store {
            Some(store) => cluster::MigrationHost::begin_copy(&**store, source, reserve_bps, now),
            None => Ok(STORELESS_COPY),
        }
    }
    fn copy_done(&self, token: u64) -> bool {
        match &self.store {
            Some(store) => {
                token != STORELESS_COPY && cluster::MigrationHost::copy_done(&**store, token)
            }
            None => token == STORELESS_COPY,
        }
    }
    fn finish_copy(&self, token: u64) -> bool {
        match &self.store {
            Some(store) => cluster::MigrationHost::finish_copy(&**store, token),
            None => token == STORELESS_COPY,
        }
    }
    fn abort_copy(&self, token: u64) {
        if let Some(store) = &self.store {
            cluster::MigrationHost::abort_copy(&**store, token);
        }
    }
    fn import_bulk(&self, source: &MovieSource, now: SimTime) {
        self.import_movie(source, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkConfig, Network, SimDuration};
    use store::StoreConfig;

    fn rig() -> (Arc<Network>, Arc<DatagramNet>, Arc<StreamProviderSystem>) {
        let net = Arc::new(Network::new(0));
        let dg = DatagramNet::new(&net, LinkConfig::perfect(SimDuration::from_millis(1)), 0);
        let sps = StreamProviderSystem::new(&dg, NetAddr(100));
        (net, dg, sps)
    }

    fn rig_with_store(
        config: StoreConfig,
    ) -> (Arc<Network>, Arc<DatagramNet>, Arc<StreamProviderSystem>) {
        let net = Arc::new(Network::new(0));
        let dg = DatagramNet::new(&net, LinkConfig::perfect(SimDuration::from_millis(1)), 0);
        let sps = StreamProviderSystem::with_store(&dg, NetAddr(100), BlockStore::new(config));
        (net, dg, sps)
    }

    #[test]
    fn open_play_pump_close() {
        let (net, dg, sps) = rig();
        let client = dg.bind(NetAddr(5)).unwrap();
        let id = sps
            .open(MovieSource::test_movie(1, 1), NetAddr(5), net.now())
            .unwrap();
        assert_eq!(sps.stream_count(), 1);
        sps.play(id, 100, net.now()).unwrap();
        assert_eq!(sps.state(id), Some(StreamState::Playing));
        // Pump one second of frames.
        net.run_until(SimTime::from_secs(1));
        let sent = sps.pump(net.now());
        assert!(sent >= 25, "sent={sent}");
        net.run_until_idle();
        assert!(client.pending() >= 25);
        sps.close(id).unwrap();
        assert_eq!(sps.close(id), Err(SpsError::NoSuchStream(id)));
    }

    #[test]
    fn control_ops_route_to_sender() {
        let (net, _dg, sps) = rig();
        let id = sps
            .open(MovieSource::test_movie(2, 1), NetAddr(5), net.now())
            .unwrap();
        sps.play(id, 200, net.now()).unwrap();
        sps.pause(id).unwrap();
        assert_eq!(sps.state(id), Some(StreamState::Paused));
        sps.seek(id, 30, net.now()).unwrap();
        assert_eq!(sps.position(id), Some(30));
        sps.stop(id, net.now()).unwrap();
        assert_eq!(sps.position(id), Some(0));
        assert!(sps.play(99, 100, net.now()).is_err());
    }

    #[test]
    fn next_due_tracks_playing_streams() {
        let (net, _dg, sps) = rig();
        assert!(sps.next_due().is_none());
        let a = sps
            .open(MovieSource::test_movie(1, 1), NetAddr(5), net.now())
            .unwrap();
        assert!(sps.next_due().is_none(), "ready but not playing");
        sps.play(a, 100, net.now()).unwrap();
        assert_eq!(sps.next_due(), Some(net.now()));
    }

    #[test]
    fn stored_stream_stalls_until_blocks_arrive() {
        let (net, dg, sps) = rig_with_store(StoreConfig::default());
        let client = dg.bind(NetAddr(5)).unwrap();
        let id = sps
            .open(MovieSource::test_movie(1, 1), NetAddr(5), net.now())
            .unwrap();
        sps.play(id, 100, net.now()).unwrap();
        // Nothing delivered from disk yet: the first poll stalls.
        assert_eq!(sps.pump(net.now()), 0);
        // The SPS points the driver at the first disk completion.
        let wake = sps.next_due().expect("disk read outstanding");
        assert!(wake > net.now());
        // After a generous second, frames flow.
        net.run_until(SimTime::from_secs(1));
        let sent = sps.pump(net.now());
        assert!(sent >= 25, "sent={sent}");
        net.run_until_idle();
        assert!(client.pending() >= 25);
    }

    #[test]
    fn recording_captures_on_the_clock_and_closes() {
        let (net, _dg, sps) = rig_with_store(StoreConfig::default());
        let source = MovieSource::test_movie(2, 9);
        let id = sps.record_open(source.clone(), net.now()).unwrap();
        assert_eq!(sps.recording_count(), 1);
        assert!(!sps.recording_finished(id), "nothing captured yet");
        // Half the movie's duration: capture is mid-flight.
        net.run_until(SimTime::from_secs(1));
        sps.pump(net.now());
        assert!(!sps.recording_finished(id));
        assert!(sps.record_close(id).is_err(), "cannot close mid-capture");
        // Past the end plus persistence: finished.
        let mut now = SimTime::from_secs(3);
        let mut guard = 0;
        while !sps.recording_finished(id) {
            sps.pump(now);
            if let Some(t) = sps.next_due() {
                now = now.max(t);
            } else {
                now += SimDuration::from_millis(100);
            }
            guard += 1;
            assert!(guard < 10_000, "recording never finished");
        }
        let recorded = sps.record_close(id).unwrap();
        assert_eq!(recorded.source, source);
        assert!(recorded.bitrate_bps > 0);
        assert_eq!(sps.recording_count(), 0);
        // The recorded movie is now streamable from this provider.
        let stream = sps.open(source, NetAddr(5), now).unwrap();
        assert!(sps.has_stream(stream));
    }

    #[test]
    fn close_aborts_an_open_recording() {
        let (net, _dg, sps) = rig_with_store(StoreConfig::default());
        let id = sps
            .record_open(MovieSource::test_movie(10, 4), net.now())
            .unwrap();
        net.run_until(SimTime::from_secs(1));
        sps.pump(net.now());
        sps.close(id).unwrap();
        assert_eq!(sps.recording_count(), 0);
        assert_eq!(
            sps.store().unwrap().stats().committed_bps,
            0,
            "aborted recording released its bandwidth"
        );
    }

    #[test]
    fn storeless_provider_records_on_timing_alone() {
        let (net, _dg, sps) = rig();
        let id = sps
            .record_open(MovieSource::test_movie(1, 2), net.now())
            .unwrap();
        assert!(!sps.recording_finished(id));
        sps.pump(SimTime::from_secs(2));
        assert!(sps.recording_finished(id));
        let recorded = sps.record_close(id).unwrap();
        assert_eq!(recorded.source.frame_count, 25);
        // Import on a storeless provider is a no-op, not a panic.
        sps.import_movie(&recorded.source, net.now());
    }

    #[test]
    fn shared_followers_ride_the_leader_free_and_split_honestly() {
        let net = Arc::new(Network::new(0));
        let dg = DatagramNet::new(&net, LinkConfig::perfect(SimDuration::from_millis(1)), 0);
        let store = BlockStore::new(StoreConfig::default());
        let share = Arc::new(share::ShareManager::new(share::ShareConfig::default()));
        let sps = StreamProviderSystem::with_shared_store(
            &dg,
            NetAddr(100),
            Arc::clone(&store),
            Arc::clone(&share),
        );
        let movie = MovieSource::test_movie(30, 1);
        let leader = sps.open(movie.clone(), NetAddr(5), net.now()).unwrap();
        let full = store.stats().committed_bps;
        assert!(full > 0, "the leader charges a full stream");
        // Both at block 0: the second viewer merges for free.
        let follower = sps.open(movie.clone(), NetAddr(6), net.now()).unwrap();
        assert_eq!(
            store.stats().committed_bps,
            full,
            "a merged follower charges nothing"
        );
        assert!(share.is_follower(follower));
        assert!(sps.shares_source(&movie));
        sps.play(leader, 100, net.now()).unwrap();
        sps.play(follower, 100, net.now()).unwrap();
        // The follower seeks far out of the band: it must re-admit a
        // full stream of its own.
        sps.seek(follower, movie.frame_count / 2, net.now())
            .unwrap();
        assert_eq!(store.stats().committed_bps, 2 * full);
        assert!(!share.is_follower(follower));
        assert_eq!(share.stats().splits, 1);
        // Closing the leader of a sole-member group just dissolves it.
        sps.close(leader).unwrap();
        assert_eq!(store.stats().committed_bps, full);
        sps.close(follower).unwrap();
        assert_eq!(store.stats().committed_bps, 0);
        assert_eq!(share.group_count(), 0);
    }

    #[test]
    fn leader_close_promotes_and_recharges_a_follower() {
        let net = Arc::new(Network::new(0));
        let dg = DatagramNet::new(&net, LinkConfig::perfect(SimDuration::from_millis(1)), 0);
        let store = BlockStore::new(StoreConfig::default());
        let share = Arc::new(share::ShareManager::new(share::ShareConfig::default()));
        let sps = StreamProviderSystem::with_shared_store(
            &dg,
            NetAddr(100),
            Arc::clone(&store),
            Arc::clone(&share),
        );
        let movie = MovieSource::test_movie(30, 1);
        let leader = sps.open(movie.clone(), NetAddr(5), net.now()).unwrap();
        let follower = sps.open(movie, NetAddr(6), net.now()).unwrap();
        let full = store.stats().committed_bps;
        sps.close(leader).unwrap();
        assert_eq!(
            store.stats().committed_bps,
            full,
            "the promoted follower inherits exactly the released charge"
        );
        assert!(share.is_leader_with_followers(follower) || share.group_count() == 1);
        assert_eq!(share.stats().promotions, 1);
        assert_eq!(store.stream_demand(follower), Some(full));
    }

    #[test]
    fn overload_rejected_and_released() {
        let config = StoreConfig {
            disks: 1,
            disk: store::DiskParams {
                transfer_bytes_per_sec: 500_000,
                ..store::DiskParams::default()
            },
            ..StoreConfig::default()
        };
        let (net, _dg, sps) = rig_with_store(config);
        let mut ids = Vec::new();
        let err = loop {
            match sps.open(MovieSource::test_movie(30, 1), NetAddr(5), net.now()) {
                Ok(id) => ids.push(id),
                Err(e) => break e,
            }
            assert!(ids.len() < 100, "slow disk must saturate eventually");
        };
        assert!(matches!(err, SpsError::AdmissionRejected { .. }), "{err}");
        // Closing one stream re-opens the door.
        sps.close(ids[0]).unwrap();
        sps.open(MovieSource::test_movie(30, 1), NetAddr(5), net.now())
            .unwrap();
    }
}
