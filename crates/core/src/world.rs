//! The experimental world: clients, servers, control pipes, the CM
//! datagram network, and the co-simulation driver — Fig. 2 in code.

use crate::agents::{source_for_entry, ClusterController, SpsRegistry};
use crate::app::AppMachine;
use crate::mca::DOWN as MCA_DOWN;
use crate::pdus::{McamPdu, StreamParams};
use crate::server::{ServerRoot, ServerServices};
use crate::service::McamOp;
use crate::sps::StreamProviderSystem;
use crate::stacks::{ClientRoot, ControlDial, StackKind};
use cluster::{ControlBalancer, DrainError, Placement, RebalanceConfig, RebalanceStats};
use directory::{attr, Dn, Dsa, Dua, MovieEntry, Rdn};
use equipment::{Eca, EquipmentClass, Eua};
use estelle::sched::{run_sequential, SeqOptions};
use estelle::{ip, ModuleId, ModuleKind, ModuleLabels, Runtime};
use journal::{EventKind, Journal};
use mtp::MtpReceiver;
use netsim::{
    DatagramNet, DatagramSocket, LinkConfig, Medium, NetAddr, Network, PipeMedium, SimBackend,
    SimDuration, SimTime, TransportBackend,
};
use parking_lot::Mutex;
use presentation::service::PAbortInd;
use std::collections::HashMap;
use std::sync::Arc;
use store::{BlockStore, StoreConfig, StoreStats};

/// The world's [`ControlDial`] implementation: opens a fresh control
/// pipe towards a server named by location. The pipe's client end is
/// returned immediately; its server end is queued here and handed to
/// the server's root module by the world's driver loop (a transition
/// must not reach back into the runtime it is executing on).
struct WorldDialer {
    backend: SimBackend,
    /// location → (server root, the registry that knows whether the
    /// location is still live).
    targets: Mutex<HashMap<String, (ModuleId, Arc<SpsRegistry>)>>,
    /// Server-side media awaiting hand-off.
    pending: Mutex<Vec<PendingDial>>,
}

/// A dialed control pipe's server end, waiting for the world's driver
/// to hand it to its server root: (root, medium, connection index).
type PendingDial = (ModuleId, Box<dyn Medium>, u16);

impl WorldDialer {
    fn new(backend: SimBackend) -> Self {
        WorldDialer {
            backend,
            targets: Mutex::new(HashMap::new()),
            pending: Mutex::new(Vec::new()),
        }
    }

    fn register(&self, location: String, root: ModuleId, peers: Arc<SpsRegistry>) {
        self.targets.lock().insert(location, (root, peers));
    }

    fn take_pending(&self) -> Vec<(ModuleId, Box<dyn Medium>, u16)> {
        std::mem::take(&mut *self.pending.lock())
    }
}

impl ControlDial for WorldDialer {
    fn dial(&self, location: &str, conn: u16) -> Option<Box<dyn Medium>> {
        let (root, peers) = {
            let targets = self.targets.lock();
            let (root, peers) = targets.get(location)?;
            (*root, Arc::clone(peers))
        };
        // Decommissioned servers leave the registry; draining and
        // crashed ones must not gain control associations either. All
        // look dead to the dialer, which makes the client fall back
        // across the referral's candidate list.
        if peers.get(location).is_none()
            || peers.is_draining(location)
            || peers.is_crashed(location)
        {
            return None;
        }
        let (client_medium, server_medium) = self.backend.connect();
        self.pending.lock().push((root, server_medium, conn));
        Some(client_medium)
    }
}

/// A server machine in the world.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    /// The server root module.
    pub root: ModuleId,
    /// The shared services of this server machine.
    pub services: ServerServices,
}

/// A group of server machines sharing one movie directory, one
/// replica registry, and one control plane: movies published through
/// [`World::publish_replicated`] land on K of them, any member routes
/// `SelectMovie` to the least-loaded replica, and the
/// [`cluster::RebalanceController`] grows hot titles onto idle members,
/// shrinks them back, and drains members out of service.
pub struct ClusterHandle {
    /// Cluster name (servers are `"<name>-<i>"`).
    pub name: String,
    /// The member servers.
    pub servers: Vec<ServerHandle>,
    /// The shared location → stream-provider registry.
    pub peers: Arc<SpsRegistry>,
    /// The cluster's control plane (ticked by the world's driver on
    /// the netsim clock).
    pub rebalancer: Arc<ClusterController>,
    /// The cluster's control-association balancer: accounts every
    /// member's live control associations and decides referrals
    /// (inspect it with [`ClusterHandle::control_connections`], steer
    /// it with [`cluster::ControlBalancer::pin`]).
    pub control: Arc<ControlBalancer>,
    /// The world's event journal (shared across clusters): every
    /// admission, routing, referral, and rebalance decision involving
    /// this cluster is chained here.
    pub journal: Arc<Journal>,
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHandle")
            .field("name", &self.name)
            .field("servers", &self.servers.len())
            .finish_non_exhaustive()
    }
}

impl ClusterHandle {
    /// Per-server storage statistics, as `(location, stats)` pairs in
    /// member order.
    pub fn store_stats(&self) -> Vec<(String, StoreStats)> {
        self.servers
            .iter()
            .map(|s| (s.services.sps.location(), s.services.store.stats()))
            .collect()
    }

    /// Streams currently open across all members.
    pub fn total_streams(&self) -> usize {
        self.servers
            .iter()
            .map(|s| s.services.sps.stream_count())
            .sum()
    }

    /// Cluster-wide committed and capacity bandwidth, bits/second.
    pub fn bandwidth(&self) -> (u64, u64) {
        self.servers.iter().fold((0, 0), |(c, t), s| {
            let stats = s.services.store.stats();
            (c + stats.committed_bps, t + stats.capacity_bps)
        })
    }

    /// Live control associations per member, sorted by location — the
    /// control-plane counterpart of [`ClusterHandle::store_stats`].
    pub fn control_connections(&self) -> Vec<(String, usize)> {
        self.control.snapshot()
    }

    /// Recording sessions in progress across all members.
    pub fn recordings(&self) -> usize {
        self.servers
            .iter()
            .map(|s| s.services.sps.recording_count())
            .sum()
    }

    /// Cluster-wide recorded-frame and recorded-block counters, as
    /// `(frames_recorded, blocks_recorded)`.
    pub fn recorded_totals(&self) -> (u64, u64) {
        self.servers.iter().fold((0, 0), |(f, b), s| {
            let stats = s.services.store.stats();
            (f + stats.frames_recorded, b + stats.blocks_recorded)
        })
    }

    /// Control-plane counters: samples taken, copies started /
    /// completed / aborted, shrinks, drains, directory rewrites.
    /// Derived from the world's event journal — the full step-by-step
    /// trail is in [`ClusterHandle::journal`] under the
    /// `rebalance-<name>` chain.
    pub fn rebalance_stats(&self) -> RebalanceStats {
        self.rebalancer.stats()
    }

    /// `SelectMovie` routing decisions taken across all members
    /// (journal-derived; one per successful directory lookup).
    pub fn route_decisions(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| {
                self.journal
                    .count_for(&s.services.sps.location(), journal::kind::ROUTE_DECISION)
            })
            .sum()
    }

    /// `SelectMovie` opens that fell over to another replica after an
    /// admission rejection, across all members (journal-derived).
    pub fn failovers(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| {
                self.journal
                    .count_for(&s.services.sps.location(), journal::kind::FAILOVER)
            })
            .sum()
    }

    /// Starts draining the member at `location`: sole-copy titles are
    /// migrated off, new `SelectMovie`s route elsewhere, and the
    /// server is decommissioned once its last stream closes (drive
    /// the world — e.g. [`World::run_for`] — to let it progress;
    /// completion is visible via
    /// [`cluster::RebalanceController::drain_complete`]).
    ///
    /// # Errors
    ///
    /// See [`cluster::RebalanceController::drain`] — notably, draining the
    /// last holder of a title is refused.
    pub fn drain(&self, location: &str) -> Result<(), DrainError> {
        self.rebalancer.drain(location)
    }
}

/// A client workstation in the world.
#[derive(Debug, Clone)]
pub struct ClientHandle {
    /// The client root module.
    pub root: ModuleId,
    /// The client's datagram address for CM streams.
    pub addr: NetAddr,
    /// The client's stream socket (clone to build receivers).
    pub socket: DatagramSocket,
    /// Connection index.
    pub conn: u16,
    /// Network endpoints of the control pipe (client side, server
    /// side) for traffic measurements.
    pub ctrl_endpoints: (netsim::EndpointId, netsim::EndpointId),
}

/// The complete experimental environment.
pub struct World {
    /// The discrete-event network core.
    pub net: Arc<Network>,
    /// The CM datagram service (UDP/FDDI substitute).
    pub dg: Arc<DatagramNet>,
    /// The Estelle runtime hosting all control modules.
    pub rt: Arc<Runtime>,
    /// One-way delay of control pipes.
    pub control_delay: SimDuration,
    /// The transport backend minting control-pipe conduits (the
    /// simulated, deterministic one — the world's Estelle driver runs
    /// on the virtual clock; see `wall_clock` for the threaded rig).
    backend: SimBackend,
    /// Storage configuration applied to every server added after this
    /// point (disk count, block size, cache size/policy, admission
    /// headroom).
    pub store_config: StoreConfig,
    /// Stream-sharing configuration applied to every server added
    /// after this point. Off by default: every viewer charges a full
    /// disk stream, exactly the pre-sharing behaviour. Set it through
    /// [`WorldBuilder::share`] to batch flash crowds into
    /// leader/follower merge groups.
    share_config: share::ShareConfig,
    /// Frame rate cameras capture at, applied to every server added
    /// after this point (the `Record` write path paces captured
    /// frames — and sizes its write-bandwidth demand — at this rate).
    pub record_frame_rate: u32,
    /// Referral hop budget handed to cluster-aware clients (the
    /// bounded hop count of the redirect protocol).
    pub referral_max_hops: u32,
    providers: Vec<Arc<StreamProviderSystem>>,
    /// Every client root added so far ([`World::crash_server`] aborts
    /// the control association of clients homed on the dead machine).
    clients: Vec<ModuleId>,
    /// Every cluster's control plane, ticked by the driver loop.
    rebalancers: Vec<Arc<ClusterController>>,
    /// Opens referral-target control pipes for cluster-aware clients.
    dialer: Arc<WorldDialer>,
    next_addr: u32,
    next_conn: u16,
    /// Scheduler options used by the driver.
    pub seq_options: SeqOptions,
    /// The world's event journal, stamped from the network clock.
    journal: Arc<Journal>,
    /// How often the driver snapshots every server's health into the
    /// journal while the world is active.
    pub health_interval: SimDuration,
    /// Per-server handles the health sampler reads.
    health_probes: Vec<HealthProbe>,
    /// Next health-snapshot deadline (armed on first driver activity).
    next_health: Mutex<Option<SimTime>>,
}

/// What the driver's health sampler reads for one server.
struct HealthProbe {
    location: String,
    sps: Arc<StreamProviderSystem>,
    store: Arc<BlockStore>,
    control: Arc<ControlBalancer>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("providers", &self.providers.len())
            .field("next_conn", &self.next_conn)
            .finish_non_exhaustive()
    }
}

/// Fluent constructor for [`World`]: every construction knob —
/// network link, storage, stream sharing, record rate, referral hop
/// budget, health-snapshot cadence — set in one chain, then
/// [`WorldBuilder::build`].
///
/// ```
/// use mcam::World;
/// use store::StoreConfig;
///
/// let world = World::builder(7)
///     .store(StoreConfig { disks: 8, ..StoreConfig::default() })
///     .share(share::ShareConfig::default())
///     .build();
/// # drop(world);
/// ```
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    seed: u64,
    stream_link: LinkConfig,
    store: StoreConfig,
    share: share::ShareConfig,
    record_frame_rate: u32,
    referral_max_hops: u32,
    health_interval: SimDuration,
}

impl WorldBuilder {
    fn new(seed: u64) -> Self {
        WorldBuilder {
            seed,
            // A mildly jittery, lossless CM network.
            stream_link: LinkConfig::lossy(
                SimDuration::from_millis(2),
                SimDuration::from_micros(500),
                0.0,
            ),
            store: StoreConfig::default(),
            share: share::ShareConfig::off(),
            record_frame_rate: 25,
            referral_max_hops: 4,
            health_interval: SimDuration::from_millis(250),
        }
    }

    /// Replaces the CM network's link model (delay, jitter, loss).
    pub fn stream_link(mut self, link: LinkConfig) -> Self {
        self.stream_link = link;
        self
    }

    /// Storage knobs applied to every server's block store.
    pub fn store(mut self, config: StoreConfig) -> Self {
        self.store = config;
        self
    }

    /// Stream-sharing knobs applied to every server's merge engine
    /// (off by default: every viewer charges a full disk stream).
    pub fn share(mut self, config: share::ShareConfig) -> Self {
        self.share = config;
        self
    }

    /// Frame rate cameras capture at (paces the `Record` write path).
    pub fn record_frame_rate(mut self, fps: u32) -> Self {
        self.record_frame_rate = fps;
        self
    }

    /// Referral hop budget handed to cluster-aware clients.
    pub fn referral_max_hops(mut self, hops: u32) -> Self {
        self.referral_max_hops = hops;
        self
    }

    /// How often the driver snapshots every server's health into the
    /// journal while the world is active.
    pub fn health_interval(mut self, every: SimDuration) -> Self {
        self.health_interval = every;
        self
    }

    /// Builds the world. Servers and clients are added afterwards
    /// ([`World::add_server`], [`World::add_cluster`],
    /// [`World::add_client`]).
    pub fn build(self) -> World {
        let net = Arc::new(Network::new(self.seed));
        let dg = DatagramNet::new(&net, self.stream_link, self.seed.wrapping_add(17));
        let rt = Arc::new(Runtime::with_virtual_clock(net.clock()));
        let control_delay = SimDuration::from_millis(1);
        let backend = SimBackend::new(&net, control_delay);
        let dialer = Arc::new(WorldDialer::new(backend.clone()));
        let journal = Arc::new(Journal::new(net.clock()));
        World {
            journal,
            net,
            dg,
            rt,
            control_delay,
            backend,
            store_config: self.store,
            share_config: self.share,
            record_frame_rate: self.record_frame_rate,
            referral_max_hops: self.referral_max_hops,
            providers: Vec::new(),
            clients: Vec::new(),
            rebalancers: Vec::new(),
            dialer,
            next_addr: 1,
            next_conn: 0,
            seq_options: SeqOptions::default(),
            health_interval: self.health_interval,
            health_probes: Vec::new(),
            next_health: Mutex::new(None),
        }
    }
}

/// One cluster's shape, passed to [`World::add_cluster`]: member
/// count, protocol stack, replica placement, and (optionally)
/// control-plane tuning.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    name: String,
    servers: usize,
    stack: StackKind,
    placement: Placement,
    rebalance: RebalanceConfig,
}

impl ClusterSpec {
    /// A cluster of `servers` members named `name-0..`, speaking
    /// `stack`, placing replicas per `placement`, with the default
    /// control plane.
    pub fn new(
        name: impl Into<String>,
        servers: usize,
        stack: StackKind,
        placement: Placement,
    ) -> Self {
        ClusterSpec {
            name: name.into(),
            servers,
            stack,
            placement,
            rebalance: RebalanceConfig::default(),
        }
    }

    /// Explicit control-plane tuning (sampling interval, copy speed,
    /// concurrency).
    pub fn rebalance(mut self, config: RebalanceConfig) -> Self {
        self.rebalance = config;
        self
    }
}

impl World {
    /// Starts a fluent [`WorldBuilder`] — the one construction entry
    /// point; seed fixed up front so every build is deterministic.
    pub fn builder(seed: u64) -> WorldBuilder {
        WorldBuilder::new(seed)
    }

    /// Creates a world whose CM network uses `stream_link`.
    #[deprecated(note = "use `World::builder(seed).stream_link(..).build()`")]
    pub fn with_stream_link(seed: u64, stream_link: LinkConfig) -> Self {
        Self::builder(seed).stream_link(stream_link).build()
    }

    /// Creates a world with explicit storage knobs: every server added
    /// gets a block store built from `store_config`.
    #[deprecated(note = "use `World::builder(seed).stream_link(..).store(..).build()`")]
    pub fn with_config(seed: u64, stream_link: LinkConfig, store_config: StoreConfig) -> Self {
        Self::builder(seed)
            .stream_link(stream_link)
            .store(store_config)
            .build()
    }

    /// The stream-sharing configuration servers are built with (set
    /// through [`WorldBuilder::share`]).
    pub fn share_config(&self) -> &share::ShareConfig {
        &self.share_config
    }

    /// The world's event journal: every admission decision, route,
    /// failover, referral, rebalance step, and health snapshot, hash-
    /// chained per server. Serialize it with [`Journal::to_jsonl`],
    /// check it with [`Journal::verify`].
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// The transport backend every control connection in this world is
    /// minted from. Always the simulated, deterministic backend: the
    /// world's Estelle driver advances the virtual clock. For
    /// wall-clock multi-core measurements see [`crate::wall_clock`].
    pub fn backend(&self) -> &SimBackend {
        &self.backend
    }

    /// Creates a world with a mildly jittery, lossless CM network.
    #[deprecated(note = "use `World::builder(seed).build()`")]
    pub fn new(seed: u64) -> Self {
        Self::builder(seed).build()
    }

    fn alloc_addr(&mut self) -> NetAddr {
        let a = NetAddr(self.next_addr);
        self.next_addr += 1;
        a
    }

    /// Adds a server machine: movie directory DSA, equipment site,
    /// stream provider, and the server root module. The server is its
    /// own one-member "cluster" (its registry holds only itself, its
    /// control plane has nowhere to migrate to).
    pub fn add_server(&mut self, name: &str, stack: StackKind) -> ServerHandle {
        let dsa = Dsa::new(format!("dsa-{name}"));
        let base: Dn = "o=movies".parse().expect("static DN");
        // The subtree root entry.
        dsa.add(base.clone(), directory::Attrs::new())
            .expect("fresh DSA");
        let peers = Arc::new(SpsRegistry::new());
        // A standalone server replicates recordings only to itself.
        let rebalancer = Arc::new(
            ClusterController::new(
                Arc::clone(&peers),
                Placement::round_robin(1),
                RebalanceConfig::default(),
            )
            .with_journal(Arc::clone(&self.journal), format!("rebalance-{name}")),
        );
        self.rebalancers.push(Arc::clone(&rebalancer));
        let control = Arc::new(ControlBalancer::new());
        self.build_server(name, stack, &dsa, base, &peers, &rebalancer, &control)
    }

    /// Like [`World::add_cluster`], with the shape spelled out as
    /// positional arguments.
    #[deprecated(note = "use `World::add_cluster(ClusterSpec::new(..).rebalance(..))`")]
    pub fn add_cluster_with(
        &mut self,
        name: &str,
        count: usize,
        stack: StackKind,
        placement: Placement,
        rebalance: RebalanceConfig,
    ) -> ClusterHandle {
        self.add_cluster(ClusterSpec::new(name, count, stack, placement).rebalance(rebalance))
    }

    /// Adds the server machines of one [`ClusterSpec`]: the members
    /// share one movie directory, one replica registry, and one
    /// control plane. Movies published with
    /// [`World::publish_replicated`] are placed on `placement.k()`
    /// of them; `SelectMovie` through any member routes the stream to
    /// the replica with the most uncommitted disk bandwidth, and the
    /// control plane rebalances replica sets as load shifts.
    pub fn add_cluster(&mut self, spec: ClusterSpec) -> ClusterHandle {
        let ClusterSpec {
            name,
            servers: count,
            stack,
            placement,
            rebalance,
        } = spec;
        let name = name.as_str();
        let dsa = Dsa::new(format!("dsa-{name}"));
        let base: Dn = "o=movies".parse().expect("static DN");
        dsa.add(base.clone(), directory::Attrs::new())
            .expect("fresh DSA");
        let peers = Arc::new(SpsRegistry::new());
        // Completed migrations rewrite the entry's replica list (and
        // its primary location) through this sink, so the very next
        // `SelectMovie` lookup routes to the new copy. A title whose
        // entry does not exist yet (a recording that has not
        // finalized) reports failure and is retried on a later tick.
        let sink_dua = Dua::new(&dsa);
        let sink_base = base.clone();
        let sink = Box::new(move |title: &str, replicas: &[String]| -> bool {
            let dn = sink_base.child(Rdn::new("cn", title));
            let mut puts = vec![directory::ModOp::Put(
                attr::REPLICAS.into(),
                MovieEntry::replicas_value(replicas),
            )];
            if let Some(primary) = replicas.first() {
                puts.push(directory::ModOp::Put(
                    attr::LOCATION.into(),
                    asn1::Value::Str(primary.clone()),
                ));
            }
            sink_dua.modify(&dn, &puts).is_ok()
        });
        let rebalancer = Arc::new(
            ClusterController::new(Arc::clone(&peers), placement, rebalance)
                .with_sink(sink)
                .with_journal(Arc::clone(&self.journal), format!("rebalance-{name}")),
        );
        self.rebalancers.push(Arc::clone(&rebalancer));
        let control = Arc::new(ControlBalancer::new());
        let servers = (0..count.max(1))
            .map(|i| {
                self.build_server(
                    &format!("{name}-{i}"),
                    stack,
                    &dsa,
                    base.clone(),
                    &peers,
                    &rebalancer,
                    &control,
                )
            })
            .collect();
        ClusterHandle {
            name: name.to_string(),
            servers,
            peers,
            rebalancer,
            control,
            journal: Arc::clone(&self.journal),
        }
    }

    /// Publishes `entry` into the cluster's shared directory, placed
    /// on K replica servers by the cluster's control plane (the
    /// entry's own location/replica fields are overwritten with the
    /// placement decision, and the title is tracked for later
    /// rebalancing). Returns the chosen replica locations.
    pub fn publish_replicated(&self, cluster: &ClusterHandle, entry: &MovieEntry) -> Vec<String> {
        let source = source_for_entry(entry);
        let replicas = cluster.rebalancer.place_title(&entry.title, &source);
        let mut entry = entry.clone();
        entry.set_replicas(replicas.clone());
        let lead = &cluster.servers[0];
        self.seed_movie(lead, &entry);
        replicas
    }

    #[allow(clippy::too_many_arguments)]
    fn build_server(
        &mut self,
        name: &str,
        stack: StackKind,
        dsa: &Arc<Dsa>,
        base: Dn,
        peers: &Arc<SpsRegistry>,
        rebalancer: &Arc<ClusterController>,
        control: &Arc<ControlBalancer>,
    ) -> ServerHandle {
        let dua = Dua::new(dsa);
        let eca = Eca::new(format!("site-{name}"));
        eca.register(EquipmentClass::Camera, "cam-0");
        eca.register(EquipmentClass::Microphone, "mic-0");
        eca.register(EquipmentClass::Speaker, "spk-0");
        eca.register(EquipmentClass::Display, "dsp-0");
        let mut eua = Eua::new(0);
        eua.add_site(&eca);
        let sps_addr = self.alloc_addr();
        let store = BlockStore::new(self.store_config);
        let share = Arc::new(share::ShareManager::new(self.share_config));
        let sps = StreamProviderSystem::with_shared_store(
            &self.dg,
            sps_addr,
            Arc::clone(&store),
            Arc::clone(&share),
        );
        self.providers.push(Arc::clone(&sps));
        peers.register(sps.location(), Arc::clone(&sps));
        store.attach_journal(Arc::clone(&self.journal), sps.location());
        share.attach_journal(Arc::clone(&self.journal), sps.location());
        self.health_probes.push(HealthProbe {
            location: sps.location(),
            sps: Arc::clone(&sps),
            store: Arc::clone(&store),
            control: Arc::clone(control),
        });
        let services = ServerServices {
            dua,
            base,
            sps,
            store,
            share,
            peers: Arc::clone(peers),
            rebalancer: Arc::clone(rebalancer),
            control: Arc::clone(control),
            reaper: Arc::new(Mutex::new(Vec::new())),
            record_frame_rate: self.record_frame_rate,
            eua,
            eca: Arc::clone(&eca),
            site: format!("site-{name}"),
            journal: Arc::clone(&self.journal),
        };
        let root = self
            .rt
            .add_module(
                None,
                format!("server-{name}"),
                ModuleKind::SystemProcess,
                ModuleLabels::default(),
                ServerRoot::new(services.clone(), stack),
            )
            .expect("world builds before start");
        self.dialer
            .register(services.sps.location(), root, Arc::clone(peers));
        ServerHandle { root, services }
    }

    /// Enables dynamic client generation (the ref \[2\] Estelle
    /// enhancement): [`World::add_client`] may then be called *after*
    /// [`World::start`], lifting the paper's §4.1 restriction that
    /// "the number of clients is fixed". The new client's modules are
    /// initialized immediately and join the next scheduling pass.
    pub fn enable_dynamic_clients(&self) {
        self.rt.enable_dynamic_systems();
    }

    /// Adds a cluster-aware client workstation connected to `server`
    /// by a control pipe, running `script` (first op must be
    /// `Associate` — or push operations later with [`World::push_op`]).
    /// The client advertises referral support: an overloaded or
    /// draining server may redirect its control association to
    /// another cluster member, which the client follows transparently
    /// (bounded by [`World::referral_max_hops`]). Use
    /// [`World::add_legacy_client`] for a pre-referral client.
    ///
    /// # Panics
    ///
    /// Panics if called after [`World::start`] without
    /// [`World::enable_dynamic_clients`] (base Estelle fixes the
    /// system-module population at start).
    pub fn add_client(
        &mut self,
        server: &ServerHandle,
        stack: StackKind,
        script: Vec<McamOp>,
    ) -> ClientHandle {
        self.build_client(server, stack, script, true)
    }

    /// Adds a client speaking the pre-referral protocol: it never
    /// advertises referral support, so every server keeps serving it
    /// locally — the back-compatibility contract of the referral
    /// extension.
    ///
    /// # Panics
    ///
    /// See [`World::add_client`].
    pub fn add_legacy_client(
        &mut self,
        server: &ServerHandle,
        stack: StackKind,
        script: Vec<McamOp>,
    ) -> ClientHandle {
        self.build_client(server, stack, script, false)
    }

    fn build_client(
        &mut self,
        server: &ServerHandle,
        stack: StackKind,
        script: Vec<McamOp>,
        cluster_aware: bool,
    ) -> ClientHandle {
        let conn = self.next_conn;
        self.next_conn += 1;
        let addr = self.alloc_addr();
        let socket = self.dg.bind(addr).expect("fresh client address");
        let (client_end, server_end) = self.backend.connect_pipe();
        let ctrl_endpoints = (client_end.endpoint(), server_end.endpoint());
        let server_medium: Box<dyn Medium> = Box::new(PipeMedium::new(server_end));
        // Hand the server side of the connection to the server root;
        // it will spawn a server entity for it (its "CONNECT request").
        self.rt
            .with_machine_mut::<ServerRoot, _>(server.root, |r| {
                r.pending_media.push((server_medium, conn));
            })
            .expect("server root exists");
        let app = AppMachine::with_script(script);
        let mut client_root = ClientRoot::new(
            Box::new(PipeMedium::new(client_end)),
            stack,
            conn,
            addr.0,
            app,
        );
        client_root.control_location = server.services.sps.location();
        client_root = client_root.with_journal(Arc::clone(&self.journal));
        if cluster_aware {
            client_root = client_root.with_referrals(
                Arc::clone(&self.dialer) as Arc<dyn crate::stacks::ControlDial>,
                server.services.sps.location(),
                self.referral_max_hops,
            );
        }
        let root = self
            .rt
            .add_module(
                None,
                format!("client-{conn}"),
                ModuleKind::SystemProcess,
                ModuleLabels::conn(conn),
                client_root,
            )
            .expect("before start, or with dynamic clients enabled (ref [2])");
        self.clients.push(root);
        ClientHandle {
            root,
            addr,
            socket,
            conn,
            ctrl_endpoints,
        }
    }

    /// Pre-loads a movie into a server's directory (bypassing the
    /// protocol; use `McamOp::CreateMovie` to exercise the wire path).
    pub fn seed_movie(&self, server: &ServerHandle, entry: &MovieEntry) {
        let dn = server
            .services
            .base
            .child(directory::Rdn::new("cn", entry.title.clone()));
        server
            .services
            .dua
            .add(dn, entry.to_attrs())
            .expect("seeding a fresh title");
    }

    /// Freezes the system-module population and runs all `initialize`
    /// blocks.
    pub fn start(&self) {
        self.rt.start().expect("valid specification");
    }

    /// Drives control plane, stream providers, and network until
    /// everything is idle or simulated time passes `limit`.
    pub fn run_until_quiet(&self, limit: SimTime) {
        self.drive(limit, |_| false);
    }

    /// The driver loop behind [`World::run_until_quiet`] and
    /// [`World::client_op`]: runs until idle, past `limit`, or until
    /// `done` returns true (checked between scheduler passes).
    fn drive(&self, limit: SimTime, mut done: impl FnMut(&Self) -> bool) {
        let mut opts = self.seq_options.clone();
        opts.advance_time = false;
        let mut guard = 0u32;
        loop {
            guard += 1;
            if guard > 2_000_000 {
                panic!("driver did not quiesce before iteration limit");
            }
            // Referral re-dials: hand queued server-side media to
            // their server roots (a client transition cannot reach
            // back into the runtime, so the dialer parks them here).
            for (server_root, medium, conn) in self.dialer.take_pending() {
                let _ = self.rt.with_machine_mut::<ServerRoot, _>(server_root, |r| {
                    r.pending_media.push((medium, conn));
                });
            }
            run_sequential(&self.rt, &opts);
            if done(self) {
                break;
            }
            let now = self.net.now();
            // Control-plane pass: poll migrations, advance drains,
            // sample loads at the configured interval. Ticking before
            // the wake-up computation guarantees every controller
            // deadline it reports lies strictly in the future.
            for rebalancer in &self.rebalancers {
                rebalancer.tick(now);
            }
            self.sample_health(now);
            let mut sent = 0;
            for sps in &self.providers {
                sent += sps.pump(now);
            }
            if sent > 0 {
                continue;
            }
            if self.rt.any_enabled(opts.dispatch) {
                continue;
            }
            let next_net = self.net.next_event_at();
            let next_delay = self.rt.next_deadline();
            let next_due = self.providers.iter().filter_map(|s| s.next_due()).min();
            let next_tick = self
                .rebalancers
                .iter()
                .filter_map(|r| r.next_tick_at())
                .min();
            let candidates = [next_net, next_delay, next_due, next_tick];
            let mut next = candidates.into_iter().flatten().min();
            // Health sampling piggybacks on real activity: the
            // snapshot deadline may pull an already-scheduled wake-up
            // earlier, but never keeps an otherwise idle world alive
            // (a quiet cluster's snapshots would carry no news).
            if let (Some(base), Some(health)) = (next, *self.next_health.lock()) {
                if health < base {
                    next = Some(health);
                }
            }
            match next {
                Some(t) if t <= limit => {
                    if next_net.is_some_and(|n| n <= t) {
                        self.net.step();
                    } else {
                        self.rt.advance_clock_to(t);
                    }
                }
                _ => break,
            }
        }
    }

    /// Emits one round of per-server health events when the snapshot
    /// deadline has passed: per-disk queue depths, a cache hit/miss
    /// summary, and the [`EventKind::HealthSnapshot`] roll-up. The
    /// first driver pass arms the deadline without emitting (a world
    /// that has not run yet has no health to report).
    fn sample_health(&self, now: SimTime) {
        let mut next = self.next_health.lock();
        match *next {
            None => {
                *next = Some(now + self.health_interval);
                return;
            }
            Some(due) if now >= due => {
                *next = Some(now + self.health_interval);
            }
            Some(_) => return,
        }
        drop(next);
        for probe in &self.health_probes {
            let stats = probe.store.stats();
            let depths = probe.store.disk_queue_depths();
            for (disk, depth) in depths.iter().enumerate() {
                self.journal.record(
                    &probe.location,
                    EventKind::DiskQueueSample {
                        disk: disk as u32,
                        depth: *depth,
                    },
                );
            }
            self.journal.record(
                &probe.location,
                EventKind::CacheSummary {
                    hits: stats.cache.hits,
                    misses: stats.cache.misses,
                },
            );
            self.journal.record(
                &probe.location,
                EventKind::HealthSnapshot {
                    streams: probe.sps.stream_count() as u32,
                    control_assocs: probe.control.connections(&probe.location) as u32,
                    available_bps: probe.store.available_bps(),
                    cache_hit_permille: (stats.service_hit_ratio() * 1000.0) as u32,
                    queue_depth_max: depths.iter().copied().max().unwrap_or(0),
                },
            );
        }
    }

    /// Lets simulated time progress by `d` (streams keep flowing, the
    /// control plane keeps sampling).
    pub fn run_for(&self, d: SimDuration) {
        let limit = self.net.now() + d;
        self.run_until_quiet(limit);
        self.rt.advance_clock_to(limit);
        // A quiet world still reaches the boundary instant: give the
        // control plane its sample there so saturation that built up
        // during the interval is acted on.
        for rebalancer in &self.rebalancers {
            rebalancer.tick(limit);
        }
    }

    /// Fails one spindle of `server`'s striped store mid-flight and
    /// starts the paced reconstruction of every block lost with it:
    /// capacity shrinks to the survivors' share, in-flight reads on
    /// the dead arm are unwound (their streams stall at the lost
    /// block and resume as the rebuild sweeps past it), and the
    /// rebuild reserves half the remaining uncommitted bandwidth —
    /// charged through the same admission controller playback draws
    /// on, so reconstruction never over-commits the survivors.
    ///
    /// Returns `(lost_blocks, rebuild_reserve_bps)`. A reserve of 0
    /// means the store was fully committed and no rebuild could be
    /// admitted (retry [`store::BlockStore::begin_rebuild`] after
    /// viewers release bandwidth). Drive the world (e.g.
    /// [`World::run_for`]) to let the rebuild progress; completion is
    /// visible via [`store::BlockStore::rebuild_active`] and the
    /// journal's `RebuildCompleted` event.
    pub fn fail_disk(&self, server: &ServerHandle, disk: usize) -> (u64, u64) {
        let now = self.net.now();
        let store = &server.services.store;
        let lost = store.fail_disk(disk, now);
        if lost == 0 {
            return (0, 0);
        }
        let reserve = (store.available_bps() / 2).max(1);
        match store.begin_rebuild(reserve, now) {
            Ok(_) => (lost, reserve),
            Err(_) => (lost, 0),
        }
    }

    /// Crashes `server` mid-stream: every open stream and recording
    /// dies with the machine, the cluster registry marks the location
    /// crashed (routing, placement, referral, and the world's dialer
    /// all skip it until it re-registers), and every client whose
    /// control association was homed there receives a provider abort.
    /// Referral-capable clients fail over to a cached candidate and
    /// replay their session (select, seek to the last played frame,
    /// play) — journaled as `StreamFailedOver`; legacy clients see
    /// `ErrorRsp 999`. The cluster's rebalance controller notices the
    /// under-replicated titles on its next sample tick and
    /// re-replicates them onto survivors.
    ///
    /// Returns the number of streams and recordings killed.
    pub fn crash_server(&self, server: &ServerHandle) -> usize {
        let location = server.services.sps.location();
        server.services.peers.set_crashed(&location, true);
        let killed = server.services.sps.crash();
        self.journal.record(
            &location,
            EventKind::ServerCrashed {
                location: location.clone(),
            },
        );
        // Clients homed on the dead machine learn of it the way a real
        // stack would: a P-ABORT indication surfacing from below.
        for &client_root in &self.clients {
            let mca = self
                .rt
                .with_machine::<ClientRoot, _>(client_root, |r| {
                    if r.control_location == location {
                        r.mca
                    } else {
                        None
                    }
                })
                .flatten();
            if let Some(mca) = mca {
                let _ = self
                    .rt
                    .inject(ip(mca, MCA_DOWN), Box::new(PAbortInd { reason: 0 }));
            }
        }
        killed
    }

    fn app_of(&self, client: &ClientHandle) -> ModuleId {
        self.rt
            .with_machine::<ClientRoot, _>(client.root, |r| r.app)
            .flatten()
            .expect("client root has an app after start")
    }

    /// Pushes an operation into a client's application queue without
    /// waiting.
    pub fn push_op(&self, client: &ClientHandle, op: McamOp) {
        let app = self.app_of(client);
        self.rt
            .with_machine_mut::<AppMachine, _>(app, |a| a.queued.push_back(op))
            .expect("app module exists");
    }

    /// The location currently carrying a client's control
    /// association: the server it was attached to, or wherever the
    /// last referral re-homed it.
    pub fn client_control_location(&self, client: &ClientHandle) -> String {
        self.rt
            .with_machine::<ClientRoot, _>(client.root, |r| r.control_location.clone())
            .expect("client root exists")
    }

    /// Referral statistics of one client, as `(followed, failed)`.
    pub fn client_referrals(&self, client: &ClientHandle) -> (u64, u64) {
        self.rt
            .with_machine::<ClientRoot, _>(client.root, |r| {
                (r.referrals_followed, r.referral_failures)
            })
            .expect("client root exists")
    }

    /// The referral target a client has cached, if any (`None` after
    /// an `ErrorRsp 503` or an abort invalidated it).
    pub fn client_referral_cache(&self, client: &ClientHandle) -> Option<String> {
        self.rt
            .with_machine::<ClientRoot, _>(client.root, |r| r.cached_referral())
            .expect("client root exists")
    }

    /// All confirmations the client's application has received so far.
    pub fn replies(&self, client: &ClientHandle) -> Vec<McamPdu> {
        let app = self.app_of(client);
        self.rt
            .with_machine::<AppMachine, _>(app, |a| a.replies.clone())
            .expect("app module exists")
    }

    /// Executes one operation synchronously: pushes it, drives the
    /// world until the confirmation arrives (ongoing streams keep
    /// flowing but do not delay the return), and returns the
    /// confirmation (or `None` on a stall).
    pub fn client_op(&self, client: &ClientHandle, op: McamOp) -> Option<McamPdu> {
        let before = self.replies(client).len();
        self.push_op(client, op);
        self.drive(SimTime::MAX, |w| w.replies(client).len() > before);
        self.replies(client).get(before).cloned()
    }

    /// Builds an MTP receiver for a stream the client selected.
    pub fn receiver_for(
        &self,
        client: &ClientHandle,
        params: &StreamParams,
        playout_delay: SimDuration,
    ) -> MtpReceiver {
        MtpReceiver::new(client.socket.clone(), params.stream_id, playout_delay)
    }
}
