//! The MCA's child agents (Fig. 3): DUA, SUA/SPA and EUA as Estelle
//! modules whose bodies are `external` — thin wrappers over the
//! directory, stream-provider, and equipment services.

use crate::service::{
    DirOp, DirOutcome, DirRequest, DirResponse, EquipOp, EquipOutcome, EquipRequest, EquipResponse,
    StreamOp, StreamOutcome, StreamRequest, StreamResponse,
};
use crate::sps::{SpsError, StreamProviderSystem};
use directory::{attr, Dn, Dua, Filter, ModOp, MovieEntry, Rdn, Scope};
use equipment::{EquipmentId, Eua};
use estelle::{downcast, Ctx, IpIndex, StateId, StateMachine, Transition};
use netsim::SimDuration;
use std::sync::Arc;

/// Every agent exposes one interaction point to its MCA parent.
pub const AGENT_IP: IpIndex = IpIndex(0);

const RUN: StateId = StateId(0);
const AGENT_COST: SimDuration = SimDuration::from_micros(120);

/// Directory User Agent: executes [`DirOp`]s against the movie
/// directory.
#[derive(Debug)]
pub struct DuaAgent {
    dua: Dua,
    base: Dn,
    /// Operations served.
    pub ops: u64,
}

impl DuaAgent {
    /// Creates an agent querying through `dua` under `base`.
    pub fn new(dua: Dua, base: Dn) -> Self {
        DuaAgent { dua, base, ops: 0 }
    }

    fn movie_dn(&self, title: &str) -> Dn {
        self.base.child(Rdn::new("cn", title))
    }

    fn execute(&mut self, op: DirOp) -> DirOutcome {
        self.ops += 1;
        match op {
            DirOp::Add { entry } => {
                let dn = self.movie_dn(&entry.title);
                match self.dua.add(dn, entry.to_attrs()) {
                    Ok(()) => DirOutcome::Done,
                    Err(e) => DirOutcome::Failed(e.to_string()),
                }
            }
            DirOp::Remove { title } => match self.dua.remove(&self.movie_dn(&title)) {
                Ok(_) => DirOutcome::Done,
                Err(e) => DirOutcome::Failed(e.to_string()),
            },
            DirOp::Lookup { title } => match self.dua.read(&self.movie_dn(&title)) {
                Ok(attrs) => match MovieEntry::from_attrs(&attrs) {
                    Ok(entry) => DirOutcome::Movie(entry),
                    Err(e) => DirOutcome::Failed(e.to_string()),
                },
                Err(e) => DirOutcome::Failed(e.to_string()),
            },
            DirOp::List { contains } => {
                let filter = if contains.is_empty() {
                    Filter::eq_str(attr::OBJECT_CLASS, "movie")
                } else {
                    Filter::And(vec![
                        Filter::eq_str(attr::OBJECT_CLASS, "movie"),
                        Filter::Contains(attr::TITLE.into(), contains),
                    ])
                };
                match self.dua.search(&self.base, Scope::Subtree, &filter) {
                    Ok(hits) => DirOutcome::Titles(
                        hits.iter()
                            .filter_map(|(_, a)| {
                                a.get(attr::TITLE)
                                    .and_then(|v| v.as_str())
                                    .map(str::to_owned)
                            })
                            .collect(),
                    ),
                    Err(e) => DirOutcome::Failed(e.to_string()),
                }
            }
            DirOp::Query { title, attrs } => match self.dua.read(&self.movie_dn(&title)) {
                Ok(all) => {
                    let selected: Vec<(String, asn1::Value)> = all
                        .into_iter()
                        .filter(|(k, _)| {
                            attrs.is_empty() || attrs.iter().any(|a| a.eq_ignore_ascii_case(k))
                        })
                        .collect();
                    DirOutcome::Attrs(selected)
                }
                Err(e) => DirOutcome::Failed(e.to_string()),
            },
            DirOp::Modify { title, puts } => {
                let mods: Vec<ModOp> = puts.into_iter().map(|(k, v)| ModOp::Put(k, v)).collect();
                match self.dua.modify(&self.movie_dn(&title), &mods) {
                    Ok(()) => DirOutcome::Done,
                    Err(e) => DirOutcome::Failed(e.to_string()),
                }
            }
        }
    }
}

impl StateMachine for DuaAgent {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        RUN
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on("dir-op", RUN, AGENT_IP, |m: &mut Self, ctx, msg| {
                let req = downcast::<DirRequest>(msg.expect("when clause"))
                    .expect("DUA agents receive DirRequest only");
                let outcome = m.execute(req.0);
                ctx.output(AGENT_IP, DirResponse(outcome));
            })
            .cost(AGENT_COST),
        ]
    }
    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Stream agent (SPA on the server): executes [`StreamOp`]s against
/// the stream provider system — the local one, or a replica peer's
/// when the MCA's routing step named one.
#[derive(Debug)]
pub struct SuaAgent {
    sps: Arc<StreamProviderSystem>,
    peers: Arc<SpsRegistry>,
    /// The cluster control plane shared with the publish path:
    /// closing a recording hands the title to it for replication to
    /// `k - 1` peers and for later grow/shrink/drain decisions.
    rebalancer: Arc<ClusterController>,
    /// Operations served.
    pub ops: u64,
}

/// The cluster registry of stream providers, keyed by their
/// `"node-<n>"` location names.
pub type SpsRegistry = cluster::ReplicaDirectory<Arc<StreamProviderSystem>>;

/// The cluster control plane over the stream providers.
pub type ClusterController = cluster::RebalanceController<Arc<StreamProviderSystem>>;

impl SuaAgent {
    /// Creates an agent controlling `sps`, with `peers` resolving the
    /// replica locations named in routed open requests and
    /// `rebalancer` adopting finished recordings.
    pub fn new(
        sps: Arc<StreamProviderSystem>,
        peers: Arc<SpsRegistry>,
        rebalancer: Arc<ClusterController>,
    ) -> Self {
        SuaAgent {
            sps,
            peers,
            rebalancer,
            ops: 0,
        }
    }

    /// The provider hosting `stream_id`: the local one when it holds
    /// the stream (or when nobody does — unknown ids then fail with
    /// the local provider's error), else the registered peer hosting
    /// it. Asking the providers instead of caching an id → provider
    /// map keeps the agent stateless across stream lifetimes — the
    /// MCA may close a routed stream through any path (release,
    /// abort) without the agent leaking or misrouting stale entries.
    fn provider_of(&self, stream_id: u32) -> Arc<StreamProviderSystem> {
        if self.sps.has_stream(stream_id) {
            return Arc::clone(&self.sps);
        }
        self.peers
            .find(|sps| sps.has_stream(stream_id))
            .unwrap_or_else(|| Arc::clone(&self.sps))
    }

    fn execute(&mut self, op: StreamOp, now: netsim::SimTime) -> StreamOutcome {
        self.ops += 1;
        let done = |r: Result<(), SpsError>| match r {
            Ok(()) => StreamOutcome::Done,
            Err(SpsError::AdmissionRejected {
                demanded_bps,
                available_bps,
            }) => StreamOutcome::Rejected {
                demanded_bps,
                available_bps,
            },
            Err(e) => StreamOutcome::Failed(e.to_string()),
        };
        match op {
            StreamOp::Open {
                movie,
                dest,
                location,
            } => {
                let target = match &location {
                    None => Arc::clone(&self.sps),
                    Some(loc) => match self.peers.get(loc) {
                        Some(sps) => sps,
                        None => {
                            return StreamOutcome::Failed(format!("unknown replica location {loc}"))
                        }
                    },
                };
                match target.open(movie, netsim::NetAddr(dest), now) {
                    Ok(id) => StreamOutcome::Opened {
                        stream_id: id,
                        provider_addr: target.addr().0,
                        location: target.location(),
                    },
                    Err(SpsError::AdmissionRejected {
                        demanded_bps,
                        available_bps,
                    }) => StreamOutcome::Rejected {
                        demanded_bps,
                        available_bps,
                    },
                    Err(e) => StreamOutcome::Failed(e.to_string()),
                }
            }
            StreamOp::Close { stream_id } => done(self.provider_of(stream_id).close(stream_id)),
            StreamOp::OpenRecord { movie } => match self.sps.record_open(movie, now) {
                Ok(id) => StreamOutcome::RecordStarted { stream_id: id },
                Err(SpsError::AdmissionRejected {
                    demanded_bps,
                    available_bps,
                }) => StreamOutcome::Rejected {
                    demanded_bps,
                    available_bps,
                },
                Err(e) => StreamOutcome::Failed(e.to_string()),
            },
            StreamOp::CloseRecord { stream_id, title } => match self.sps.record_close(stream_id) {
                Ok(recorded) => {
                    // Replicate like a published movie: the control
                    // plane keeps the original on the recorder, picks
                    // k - 1 peers (never a draining server), fans the
                    // copy out through their write paths, and tracks
                    // the title for later rebalancing.
                    let replicas = self.rebalancer.adopt_recording(
                        &title,
                        &recorded.source,
                        &self.sps.location(),
                        now,
                    );
                    StreamOutcome::Recorded {
                        frame_count: recorded.source.frame_count,
                        frame_rate: recorded.source.frame_rate,
                        bitrate_bps: recorded.bitrate_bps,
                        replicas,
                    }
                }
                Err(e) => StreamOutcome::Failed(e.to_string()),
            },
            StreamOp::Play {
                stream_id,
                speed_pct,
            } => done(self.provider_of(stream_id).play(stream_id, speed_pct, now)),
            StreamOp::Pause { stream_id } => done(self.provider_of(stream_id).pause(stream_id)),
            StreamOp::Stop { stream_id } => done(self.provider_of(stream_id).stop(stream_id, now)),
            StreamOp::Seek { stream_id, frame } => {
                done(self.provider_of(stream_id).seek(stream_id, frame, now))
            }
        }
    }
}

impl StateMachine for SuaAgent {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        RUN
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on("stream-op", RUN, AGENT_IP, |m: &mut Self, ctx, msg| {
                let req = downcast::<StreamRequest>(msg.expect("when clause"))
                    .expect("SUA agents receive StreamRequest only");
                let outcome = m.execute(req.0, ctx.now());
                ctx.output(AGENT_IP, StreamResponse(outcome));
            })
            .cost(AGENT_COST),
        ]
    }
    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Equipment agent: executes [`EquipOp`]s against the site's ECS.
#[derive(Debug)]
pub struct EuaAgent {
    eua: Eua,
    site: String,
    held: Vec<EquipmentId>,
    /// Operations served.
    pub ops: u64,
}

impl EuaAgent {
    /// Creates an agent for `site` using `eua`.
    pub fn new(eua: Eua, site: impl Into<String>) -> Self {
        EuaAgent {
            eua,
            site: site.into(),
            held: Vec::new(),
            ops: 0,
        }
    }

    fn execute(&mut self, op: EquipOp) -> EquipOutcome {
        self.ops += 1;
        match op {
            EquipOp::AcquireClass(class) => {
                let list = match self.eua.list(&self.site, Some(class)) {
                    Ok(l) => l,
                    Err(e) => return EquipOutcome::Failed(e.to_string()),
                };
                for desc in list {
                    if self.eua.reserve(&self.site, desc.id).is_ok() {
                        if let Err(e) = self.eua.activate(&self.site, desc.id) {
                            let _ = self.eua.release(&self.site, desc.id);
                            return EquipOutcome::Failed(e.to_string());
                        }
                        self.held.push(desc.id);
                        return EquipOutcome::Acquired(desc.id);
                    }
                }
                EquipOutcome::Failed(format!("no free {class} at {}", self.site))
            }
            EquipOp::ReleaseAll => {
                for id in self.held.drain(..) {
                    let _ = self.eua.release(&self.site, id);
                }
                EquipOutcome::Done
            }
        }
    }
}

impl StateMachine for EuaAgent {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        RUN
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on("equip-op", RUN, AGENT_IP, |m: &mut Self, ctx, msg| {
                let req = downcast::<EquipRequest>(msg.expect("when clause"))
                    .expect("EUA agents receive EquipRequest only");
                let outcome = m.execute(req.0);
                ctx.output(AGENT_IP, EquipResponse(outcome));
            })
            .cost(AGENT_COST),
        ]
    }
    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Derives the synthetic stream source for a directory movie entry.
/// The per-title seed keeps frame sizes stable across selects.
pub fn source_for_entry(entry: &MovieEntry) -> mtp::MovieSource {
    source_for_title(&entry.title, entry.frame_rate, entry.frame_count)
}

/// Derives the synthetic source for `title` directly — the record
/// path uses it before any directory entry exists, and because the
/// seed depends only on the title, a later `SelectMovie` of the
/// finalized entry reproduces the same source and finds the recorded
/// blocks in the store.
pub fn source_for_title(title: &str, frame_rate: u32, frame_count: u64) -> mtp::MovieSource {
    let seed = title.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    mtp::MovieSource {
        frame_count,
        frame_rate,
        i_size: 12_000,
        p_size: 5_000,
        b_size: 1_800,
        gop: 12,
        seed,
    }
}
