//! MCAM service primitives: the interactions between the application
//! module and the Movie Control Agent, and between the MCA and its
//! DUA/SUA/EUA child agents.

use crate::pdus::McamPdu;
use directory::MovieEntry;
use estelle::impl_interaction;
use mtp::MovieSource;

/// An application-level MCAM operation (what a button click in the
/// paper's generated X interface would emit).
#[derive(Debug, Clone, PartialEq)]
pub enum McamOp {
    /// Open the association (creates the protocol stack on demand).
    Associate {
        /// User name.
        user: String,
    },
    /// Release the association.
    Release,
    /// Create a movie entry.
    CreateMovie {
        /// Title.
        title: String,
        /// Image format.
        format: String,
        /// Frame rate.
        frame_rate: u32,
        /// Total frames.
        frame_count: u64,
    },
    /// Delete a movie entry.
    DeleteMovie {
        /// Title.
        title: String,
    },
    /// Select a movie for streaming.
    SelectMovie {
        /// Title.
        title: String,
    },
    /// Deselect the current movie.
    Deselect,
    /// List movies by title substring.
    List {
        /// Substring (empty = all).
        contains: String,
    },
    /// Query movie attributes.
    Query {
        /// Title.
        title: String,
        /// Attribute names (empty = all).
        attrs: Vec<String>,
    },
    /// Modify movie attributes.
    Modify {
        /// Title.
        title: String,
        /// Attributes to set.
        puts: Vec<(String, asn1::Value)>,
    },
    /// Start/resume playback.
    Play {
        /// Speed in percent of nominal.
        speed_pct: u32,
    },
    /// Pause playback.
    Pause,
    /// Stop playback.
    Stop,
    /// Seek to a frame.
    Seek {
        /// Frame index.
        frame: u64,
    },
    /// Record a new movie from equipment.
    Record {
        /// New title.
        title: String,
        /// Length in frames.
        frames: u64,
    },
}

/// Application request to the MCA.
#[derive(Debug)]
pub struct McamReq(pub McamOp);

/// MCA confirmation to the application: the response PDU received
/// from the peer (or synthesized locally for connection failures).
#[derive(Debug)]
pub struct McamCnf(pub McamPdu);

/// Root-to-MCA instruction to start association establishment (sent
/// after the client root has created the stack on demand, paper §4.1
/// — and again, on a fresh stack, each time a referral re-homes the
/// control connection).
#[derive(Debug)]
pub struct StartAssociate {
    /// User name for the AssociateReq.
    pub user: String,
    /// Deliver the association confirmation to the application. True
    /// on the application's own Associate (even across connect-time
    /// referral hops); false when the root re-associates
    /// transparently to follow a mid-session referral — the
    /// application is then waiting for `resume`'s confirmation, not
    /// another AssociateRsp.
    pub announce: bool,
    /// Operations to replay, in order, once the association is up:
    /// the single request a referral interrupted, or — after a server
    /// crash — the whole session re-establishment sequence (select,
    /// seek to the resume point, play).
    pub resume: Vec<McamOp>,
}

/// MCA-to-root notification: the peer referred this association to
/// another cluster server. The root decides whether and where to
/// re-dial (hop budget, loop detection, candidate fallback) and
/// rebuilds the MCA with a fresh stack there.
#[derive(Debug)]
pub struct ReferralSignal {
    /// Target the peer named. Empty when the association *aborted*
    /// (server crash) rather than being referred: the root then picks
    /// a survivor from its cached candidate list.
    pub target: String,
    /// Candidate servers with a load hint, best-first, carried in the
    /// referral (empty on a crash-induced failover — the root falls
    /// back to the candidates it cached from earlier referrals).
    pub candidates: Vec<(String, u64)>,
    /// The operations to replay on the new server, in order: the one
    /// request a referral interrupted, or the full session
    /// re-establishment sequence after a crash.
    pub resume: Vec<McamOp>,
}

/// MCA-to-root notification: the association is up — the referral
/// chain (if any) settled and the hop budget resets.
#[derive(Debug)]
pub struct AssocSettled;

/// MCA-to-root notification: the server reported storage saturation
/// (`ErrorRsp 503`) or the association aborted — the root's cached
/// referral no longer reflects cluster load and is dropped, so the
/// next referral re-resolves from fresh candidates.
#[derive(Debug)]
pub struct ReferralStale;

// --- MCA <-> DUA ------------------------------------------------------

/// Directory operations the MCA delegates to its DUA agent.
#[derive(Debug, Clone, PartialEq)]
pub enum DirOp {
    /// Add a movie entry.
    Add {
        /// The entry.
        entry: MovieEntry,
    },
    /// Remove by title.
    Remove {
        /// Title.
        title: String,
    },
    /// Look up one movie by title.
    Lookup {
        /// Title.
        title: String,
    },
    /// List titles containing a substring.
    List {
        /// Substring.
        contains: String,
    },
    /// Query raw attributes.
    Query {
        /// Title.
        title: String,
        /// Names (empty = all).
        attrs: Vec<String>,
    },
    /// Put attributes.
    Modify {
        /// Title.
        title: String,
        /// Attributes to set.
        puts: Vec<(String, asn1::Value)>,
    },
}

/// Request to the DUA agent.
#[derive(Debug)]
pub struct DirRequest(pub DirOp);

/// DUA agent outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum DirOutcome {
    /// Operation succeeded with no payload.
    Done,
    /// A movie entry.
    Movie(MovieEntry),
    /// A list of titles.
    Titles(Vec<String>),
    /// Raw attributes.
    Attrs(Vec<(String, asn1::Value)>),
    /// Failure with a message.
    Failed(String),
}

/// Response from the DUA agent.
#[derive(Debug)]
pub struct DirResponse(pub DirOutcome);

// --- MCA <-> SUA/SPA --------------------------------------------------

/// Stream-control operations the MCA delegates to its SUA/SPA agent.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOp {
    /// Open a stream for a movie towards a client address.
    Open {
        /// Synthetic source parameters derived from the movie entry.
        movie: MovieSource,
        /// Destination datagram address.
        dest: u32,
        /// Replica server to host the stream (`"node-<n>"`), chosen
        /// by the MCA's routing step; `None` opens on the local
        /// provider.
        location: Option<String>,
    },
    /// Close a stream.
    Close {
        /// Stream id.
        stream_id: u32,
    },
    /// Start/resume at a speed.
    Play {
        /// Stream id.
        stream_id: u32,
        /// Speed percent.
        speed_pct: u32,
    },
    /// Pause.
    Pause {
        /// Stream id.
        stream_id: u32,
    },
    /// Stop and rewind.
    Stop {
        /// Stream id.
        stream_id: u32,
    },
    /// Seek to a frame.
    Seek {
        /// Stream id.
        stream_id: u32,
        /// Frame index.
        frame: u64,
    },
    /// Open a recording session: capture `movie.frame_count` frames
    /// through the store's write path (admission-controlled).
    OpenRecord {
        /// The content the camera will capture (frame rate, sizes,
        /// seed — derived from the title like a published source).
        movie: MovieSource,
    },
    /// Finalize a finished recording: register the captured blocks as
    /// a playable movie and hand it to the cluster control plane,
    /// which replicates it to peer servers and tracks the title for
    /// later rebalancing.
    CloseRecord {
        /// Recording session id.
        stream_id: u32,
        /// The title being recorded — the control plane's catalog key
        /// (directory updates after later rebalances name it).
        title: String,
    },
}

/// Request to the SUA agent.
#[derive(Debug)]
pub struct StreamRequest(pub StreamOp);

/// SUA agent outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOutcome {
    /// Stream opened with this id.
    Opened {
        /// Allocated stream id.
        stream_id: u32,
        /// Provider address.
        provider_addr: u32,
        /// Location name of the provider hosting the stream.
        location: String,
    },
    /// Operation succeeded.
    Done,
    /// Recording session opened (admission passed); capture proceeds
    /// on the virtual clock until the frame target is reached.
    RecordStarted {
        /// Allocated recording session id.
        stream_id: u32,
    },
    /// Recording finalized and replicated.
    Recorded {
        /// Frames captured.
        frame_count: u64,
        /// Capture frame rate.
        frame_rate: u32,
        /// Mean bitrate measured over the captured frames.
        bitrate_bps: u64,
        /// Every server now holding a copy (recorder first).
        replicas: Vec<String>,
    },
    /// Disk-bandwidth admission control refused the stream: the
    /// server is storage-saturated, not broken.
    Rejected {
        /// Bandwidth the stream would need, in bits/second.
        demanded_bps: u64,
        /// Bandwidth still uncommitted, in bits/second.
        available_bps: u64,
    },
    /// Failure with a message.
    Failed(String),
}

/// Response from the SUA agent.
#[derive(Debug)]
pub struct StreamResponse(pub StreamOutcome);

// --- MCA <-> EUA ------------------------------------------------------

/// Equipment operations the MCA delegates to its EUA agent.
#[derive(Debug, Clone, PartialEq)]
pub enum EquipOp {
    /// Reserve and activate one device of the class at the local site.
    AcquireClass(equipment::EquipmentClass),
    /// Release everything this agent holds.
    ReleaseAll,
}

/// Request to the EUA agent.
#[derive(Debug)]
pub struct EquipRequest(pub EquipOp);

/// EUA agent outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum EquipOutcome {
    /// Acquired the device.
    Acquired(equipment::EquipmentId),
    /// Done.
    Done,
    /// Failure with a message.
    Failed(String),
}

/// Response from the EUA agent.
#[derive(Debug)]
pub struct EquipResponse(pub EquipOutcome);

impl_interaction!(
    McamReq,
    McamCnf,
    StartAssociate,
    ReferralSignal,
    AssocSettled,
    ReferralStale,
    DirRequest,
    DirResponse,
    StreamRequest,
    StreamResponse,
    EquipRequest,
    EquipResponse
);
