//! The client-side Movie Control Agent.
//!
//! Fig. 3: only the MCA is "completely written in Estelle (header and
//! body)"; it speaks the MCAM protocol over the presentation service
//! below and the MCAM service to the application above.

use crate::pdus::McamPdu;
use crate::service::{
    AssocSettled, McamCnf, McamOp, McamReq, ReferralSignal, ReferralStale, StartAssociate,
};
use estelle::{downcast, Ctx, Interaction, IpIndex, StateId, StateMachine, Transition};
use netsim::{SimDuration, SimTime};
use presentation::mcam_contexts;
use presentation::service::{PAbortInd, PConCnf, PConReq, PDataInd, PDataReq, PRelCnf, PRelReq};

/// Interaction point to the application module.
pub const UP: IpIndex = IpIndex(0);
/// Interaction point to the presentation service (Estelle stack or
/// ISODE interface module).
pub const DOWN: IpIndex = IpIndex(1);
/// Interaction point to the client root (control).
pub const CTRL: IpIndex = IpIndex(2);

/// No association.
pub const UNBOUND: StateId = StateId(0);
/// P-CONNECT outstanding.
pub const CONNECTING: StateId = StateId(1);
/// Associated, no request outstanding.
pub const READY: StateId = StateId(2);
/// A request PDU is outstanding.
pub const WAITING: StateId = StateId(3);
/// MCAM released, presentation release outstanding.
pub const P_RELEASING: StateId = StateId(4);

const COST_REQ: SimDuration = SimDuration::from_micros(200);

fn is<T: Interaction>(msg: Option<&dyn Interaction>) -> bool {
    msg.is_some_and(|m| m.is::<T>())
}

/// The client's view of its stream session, maintained from confirmed
/// request/response pairs so that a server crash can be survived: the
/// failover replays `SelectMovie` / `Seek` / `Play` on a replica,
/// resuming within a bounded distance of the last played frame.
#[derive(Debug, Clone)]
struct Session {
    title: String,
    frame_rate: u32,
    frame_count: u64,
    speed_pct: u32,
    /// Frame position as of the last confirmed play/pause/stop/seek.
    base_frame: u64,
    /// When playback last started, if currently playing.
    playing_since: Option<SimTime>,
}

impl Session {
    /// The frame the viewer has reached by `now`, extrapolated from
    /// the last confirmed position at the confirmed speed.
    fn frame_at(&self, now: SimTime) -> u64 {
        let played = match self.playing_since {
            Some(since) => {
                let elapsed_us = now.saturating_since(since).as_micros();
                elapsed_us * u64::from(self.frame_rate) * u64::from(self.speed_pct)
                    / 100
                    / 1_000_000
            }
            None => 0,
        };
        (self.base_frame + played).min(self.frame_count)
    }
}

/// The client MCA.
#[derive(Debug)]
pub struct ClientMca {
    /// Datagram address this client's stream receiver listens on.
    pub client_addr: u32,
    /// Advertise referral support in the AssociateReq and act on
    /// `ReferralRsp` (set by roots that can re-dial; a legacy client
    /// never sees a referral because it never advertises).
    referral_capable: bool,
    /// True when the outstanding request is a Release.
    release_pending: bool,
    /// Deliver the association confirmation to the application
    /// (from the current [`StartAssociate`]).
    announce: bool,
    /// Operations to replay, in order, once the association is up.
    resume: Vec<McamOp>,
    /// The operation currently outstanding on the wire, kept so a
    /// referral can carry it to the next server for replay.
    last_op: Option<McamOp>,
    /// The confirmed stream session, if a movie is selected.
    session: Option<Session>,
    /// Requests sent.
    pub requests: u64,
    /// Responses delivered to the application.
    pub responses: u64,
    /// Referral responses handed to the root for re-homing.
    pub referrals_seen: u64,
    /// Decode or sequencing errors.
    pub protocol_errors: u64,
}

impl ClientMca {
    /// Creates a client MCA whose streams arrive at `client_addr`,
    /// speaking the pre-referral protocol (no capability advertised).
    pub fn new(client_addr: u32) -> Self {
        ClientMca {
            client_addr,
            referral_capable: false,
            release_pending: false,
            announce: true,
            resume: Vec::new(),
            last_op: None,
            session: None,
            requests: 0,
            responses: 0,
            referrals_seen: 0,
            protocol_errors: 0,
        }
    }

    /// Advertises referral support: the server may answer the
    /// association open or a SelectMovie with a redirect, which this
    /// MCA hands to its root for re-homing.
    pub fn referral_capable(mut self) -> Self {
        self.referral_capable = true;
        self
    }

    /// Reports a failed (re-)connection to the application: the
    /// negative AssociateRsp it is waiting for, or — when the root
    /// was transparently re-homing a request — an error confirmation
    /// for that request, so the application is never left hanging.
    fn fail_connect(&mut self, ctx: &mut Ctx<'_>) {
        if self.announce {
            ctx.output(UP, McamCnf(McamPdu::AssociateRsp { accepted: false }));
        } else {
            self.resume.clear();
            ctx.output(
                UP,
                McamCnf(McamPdu::ErrorRsp {
                    code: 905,
                    message: "re-association after referral failed".into(),
                }),
            );
        }
    }

    /// Sends `op` on the wire, tracking it as outstanding.
    fn send_op(&mut self, ctx: &mut Ctx<'_>, op: McamOp) {
        self.release_pending = matches!(op, McamOp::Release);
        self.last_op = Some(op.clone());
        let pdu = self.op_to_pdu(op);
        self.requests += 1;
        ctx.output(
            DOWN,
            PDataReq {
                context_id: 1,
                user_data: pdu.encode(),
            },
        );
    }

    /// Folds a confirmed (non-error) request/response pair into the
    /// session view the crash failover resumes from.
    fn note_response(&mut self, op: Option<McamOp>, pdu: &McamPdu, now: SimTime) {
        match pdu {
            McamPdu::SelectMovieRsp { params: Some(p) } => {
                self.session = Some(Session {
                    title: p.movie.title.clone(),
                    frame_rate: p.movie.frame_rate,
                    frame_count: p.movie.frame_count,
                    speed_pct: 100,
                    base_frame: 0,
                    playing_since: None,
                });
                return;
            }
            McamPdu::SelectMovieRsp { params: None }
            | McamPdu::DeselectMovieRsp
            | McamPdu::ReleaseRsp => {
                self.session = None;
                return;
            }
            _ => {}
        }
        let Some(frame) = self.session.as_ref().map(|s| s.frame_at(now)) else {
            return;
        };
        let sess = self.session.as_mut().expect("frame computed above");
        match op {
            Some(McamOp::Play { speed_pct }) => {
                sess.base_frame = frame;
                sess.speed_pct = speed_pct;
                sess.playing_since = Some(now);
            }
            Some(McamOp::Pause) => {
                sess.base_frame = frame;
                sess.playing_since = None;
            }
            Some(McamOp::Stop) => {
                sess.base_frame = 0;
                sess.playing_since = None;
            }
            Some(McamOp::Seek { frame }) => {
                sess.base_frame = frame.min(sess.frame_count);
                if sess.playing_since.is_some() {
                    sess.playing_since = Some(now);
                }
            }
            _ => {}
        }
    }

    fn op_to_pdu(&self, op: McamOp) -> McamPdu {
        match op {
            McamOp::Associate { user } => McamPdu::AssociateReq {
                user,
                referral_capable: self.referral_capable,
            },
            McamOp::Release => McamPdu::ReleaseReq,
            McamOp::CreateMovie {
                title,
                format,
                frame_rate,
                frame_count,
            } => McamPdu::CreateMovieReq {
                title,
                format,
                frame_rate,
                frame_count,
            },
            McamOp::DeleteMovie { title } => McamPdu::DeleteMovieReq { title },
            McamOp::SelectMovie { title } => McamPdu::SelectMovieReq {
                title,
                client_addr: self.client_addr,
            },
            McamOp::Deselect => McamPdu::DeselectMovieReq,
            McamOp::List { contains } => McamPdu::ListMoviesReq {
                title_contains: contains,
            },
            McamOp::Query { title, attrs } => McamPdu::QueryAttrsReq { title, attrs },
            McamOp::Modify { title, puts } => McamPdu::ModifyAttrsReq { title, puts },
            McamOp::Play { speed_pct } => McamPdu::PlayReq { speed_pct },
            McamOp::Pause => McamPdu::PauseReq,
            McamOp::Stop => McamPdu::StopReq,
            McamOp::Seek { frame } => McamPdu::SeekReq { frame },
            McamOp::Record { title, frames } => McamPdu::RecordReq { title, frames },
        }
    }
}

impl StateMachine for ClientMca {
    fn num_ips(&self) -> usize {
        3
    }

    fn initial_state(&self) -> StateId {
        UNBOUND
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on(
                "start-associate",
                UNBOUND,
                CTRL,
                |m: &mut Self, ctx, msg| {
                    let start = downcast::<StartAssociate>(msg.unwrap()).unwrap();
                    m.announce = start.announce;
                    m.resume = start.resume;
                    let aarq = McamPdu::AssociateReq {
                        user: start.user,
                        referral_capable: m.referral_capable,
                    };
                    ctx.output(
                        DOWN,
                        PConReq {
                            contexts: mcam_contexts(),
                            user_data: aarq.encode(),
                        },
                    );
                },
            )
            .provided(|_, msg| is::<StartAssociate>(msg))
            .to(CONNECTING)
            .cost(COST_REQ),
            Transition::on("assoc-cnf", CONNECTING, DOWN, |m: &mut Self, ctx, msg| {
                let cnf = downcast::<PConCnf>(msg.unwrap()).unwrap();
                if !cnf.accepted {
                    // A refusal may be a referral: the server declined
                    // to carry this control association and named a
                    // better cluster member in the connect user data.
                    if m.referral_capable {
                        if let Ok(McamPdu::ReferralRsp { target, candidates }) =
                            McamPdu::decode(&cnf.user_data)
                        {
                            m.referrals_seen += 1;
                            ctx.output(
                                CTRL,
                                ReferralSignal {
                                    target,
                                    candidates,
                                    resume: std::mem::take(&mut m.resume),
                                },
                            );
                            ctx.goto(UNBOUND);
                            return;
                        }
                    }
                    m.fail_connect(ctx);
                    ctx.goto(UNBOUND);
                    return;
                }
                match McamPdu::decode(&cnf.user_data) {
                    Ok(rsp @ McamPdu::AssociateRsp { accepted: true }) => {
                        ctx.output(CTRL, AssocSettled);
                        if m.announce {
                            ctx.output(UP, McamCnf(rsp));
                        }
                        // A referral (or crash failover) interrupted
                        // the session: replay the queued operations on
                        // the new association, one at a time — the
                        // final one's confirmation is the one the
                        // application is waiting for.
                        if m.resume.is_empty() {
                            ctx.goto(READY);
                        } else {
                            let op = m.resume.remove(0);
                            m.send_op(ctx, op);
                            ctx.goto(WAITING);
                        }
                    }
                    Ok(rsp @ McamPdu::AssociateRsp { accepted: false }) => {
                        if m.announce {
                            ctx.output(UP, McamCnf(rsp));
                        } else {
                            m.fail_connect(ctx);
                        }
                        ctx.goto(UNBOUND);
                    }
                    _ => {
                        m.protocol_errors += 1;
                        m.fail_connect(ctx);
                        ctx.goto(UNBOUND);
                    }
                }
            })
            .provided(|_, msg| is::<PConCnf>(msg))
            .cost(COST_REQ),
            Transition::on("request", READY, UP, |m: &mut Self, ctx, msg| {
                let req = downcast::<McamReq>(msg.unwrap()).unwrap();
                m.send_op(ctx, req.0);
            })
            .provided(|_, msg| is::<McamReq>(msg))
            .to(WAITING)
            .cost(COST_REQ),
            Transition::on("response", WAITING, DOWN, |m: &mut Self, ctx, msg| {
                let ind = downcast::<PDataInd>(msg.unwrap()).unwrap();
                match McamPdu::decode(&ind.user_data) {
                    // Mid-session referral: the server (overloaded or
                    // draining) declined the outstanding request and
                    // named a better home. Hand target + request to
                    // the root, which re-dials and replays it there;
                    // this association is dead to us.
                    Ok(McamPdu::ReferralRsp { target, candidates }) if m.referral_capable => {
                        m.referrals_seen += 1;
                        let mut resume: Vec<McamOp> = m.last_op.take().into_iter().collect();
                        resume.extend(std::mem::take(&mut m.resume));
                        ctx.output(
                            CTRL,
                            ReferralSignal {
                                target,
                                candidates,
                                resume,
                            },
                        );
                        ctx.goto(UNBOUND);
                    }
                    Ok(pdu) => {
                        m.responses += 1;
                        // A saturation report voids whatever referral
                        // the root cached: cluster load has moved.
                        if matches!(pdu, McamPdu::ErrorRsp { code: 503, .. }) {
                            ctx.output(CTRL, ReferralStale);
                        }
                        let op = m.last_op.take();
                        let is_err = matches!(pdu, McamPdu::ErrorRsp { .. });
                        if !is_err {
                            m.note_response(op, &pdu, ctx.now());
                        }
                        if m.release_pending && pdu == McamPdu::ReleaseRsp {
                            // The MCAM association is gone; tear down
                            // the presentation association before
                            // confirming to the user.
                            ctx.output(DOWN, PRelReq);
                            ctx.goto(P_RELEASING);
                        } else if !is_err && !m.resume.is_empty() {
                            // Mid-replay: this confirmation belongs to
                            // a replayed step, not to an application
                            // request — swallow it and send the next.
                            let op = m.resume.remove(0);
                            m.send_op(ctx, op);
                        } else {
                            // An error aborts the rest of a replay;
                            // its report is the final confirmation.
                            m.resume.clear();
                            ctx.output(UP, McamCnf(pdu));
                            ctx.goto(READY);
                        }
                    }
                    Err(_) => {
                        m.protocol_errors += 1;
                        ctx.output(
                            UP,
                            McamCnf(McamPdu::ErrorRsp {
                                code: 900,
                                message: "undecodable response".into(),
                            }),
                        );
                        ctx.goto(READY);
                    }
                }
            })
            .provided(|_, msg| is::<PDataInd>(msg))
            .cost(COST_REQ),
            Transition::on("released", P_RELEASING, DOWN, |m: &mut Self, ctx, msg| {
                let _ = downcast::<PRelCnf>(msg.unwrap()).unwrap();
                m.release_pending = false;
                ctx.output(UP, McamCnf(McamPdu::ReleaseRsp));
            })
            .provided(|_, msg| is::<PRelCnf>(msg))
            .to(UNBOUND)
            .cost(COST_REQ),
            Transition::on("aborted", UNBOUND, DOWN, |m: &mut Self, ctx, msg| {
                let _ = downcast::<PAbortInd>(msg.unwrap()).unwrap();
                m.protocol_errors += 1;
                m.last_op = None;
                m.resume.clear();
                // Crash failover: a capable client with a confirmed
                // session asks its root to re-home it on a surviving
                // replica (empty target: the root picks from cached
                // candidates — so no ReferralStale here, the cache is
                // exactly what failover needs), replaying select /
                // seek / play to resume near the last played frame.
                // An interrupted request is superseded by the
                // re-established state; the final replayed
                // confirmation answers it.
                if m.referral_capable {
                    if let Some(sess) = m.session.take() {
                        m.referrals_seen += 1;
                        let frame = sess.frame_at(ctx.now());
                        let mut resume = vec![McamOp::SelectMovie {
                            title: sess.title.clone(),
                        }];
                        if frame > 0 {
                            resume.push(McamOp::Seek { frame });
                        }
                        if sess.playing_since.is_some() {
                            resume.push(McamOp::Play {
                                speed_pct: sess.speed_pct,
                            });
                        }
                        ctx.output(
                            CTRL,
                            ReferralSignal {
                                target: String::new(),
                                candidates: Vec::new(),
                                resume,
                            },
                        );
                        ctx.goto(UNBOUND);
                        return;
                    }
                }
                m.session = None;
                ctx.output(CTRL, ReferralStale);
                ctx.output(
                    UP,
                    McamCnf(McamPdu::ErrorRsp {
                        code: 999,
                        message: "association aborted".into(),
                    }),
                );
            })
            .any_state()
            .provided(|_, msg| is::<PAbortInd>(msg))
            .priority(1)
            .to(UNBOUND)
            .cost(COST_REQ),
            // Re-association: after a Release the MCA returns to
            // UNBOUND; a fresh Associate from the application re-runs
            // connection establishment on the same stack.
            Transition::on("re-associate", UNBOUND, UP, |m: &mut Self, ctx, msg| {
                let req = downcast::<McamReq>(msg.unwrap()).unwrap();
                let McamOp::Associate { user } = req.0 else {
                    unreachable!("guard admits only Associate")
                };
                m.announce = true;
                m.resume.clear();
                let aarq = McamPdu::AssociateReq {
                    user,
                    referral_capable: m.referral_capable,
                };
                ctx.output(
                    DOWN,
                    PConReq {
                        contexts: mcam_contexts(),
                        user_data: aarq.encode(),
                    },
                );
            })
            .provided(|_, msg| {
                msg.and_then(|m| m.downcast_ref::<McamReq>())
                    .is_some_and(|r| matches!(r.0, McamOp::Associate { .. }))
            })
            .priority(100)
            .to(CONNECTING)
            .cost(COST_REQ),
            // Requests issued while no association exists fail locally.
            Transition::on("request-unbound", UNBOUND, UP, |m: &mut Self, ctx, msg| {
                let _ = downcast::<McamReq>(msg.unwrap()).unwrap();
                m.protocol_errors += 1;
                ctx.output(
                    UP,
                    McamCnf(McamPdu::ErrorRsp {
                        code: 901,
                        message: "not associated".into(),
                    }),
                );
            })
            .provided(|_, msg| is::<McamReq>(msg))
            .priority(200)
            .cost(SimDuration::from_micros(20)),
        ]
    }

    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}
}
