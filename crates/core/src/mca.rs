//! The client-side Movie Control Agent.
//!
//! Fig. 3: only the MCA is "completely written in Estelle (header and
//! body)"; it speaks the MCAM protocol over the presentation service
//! below and the MCAM service to the application above.

use crate::pdus::McamPdu;
use crate::service::{
    AssocSettled, McamCnf, McamOp, McamReq, ReferralSignal, ReferralStale, StartAssociate,
};
use estelle::{downcast, Ctx, Interaction, IpIndex, StateId, StateMachine, Transition};
use netsim::SimDuration;
use presentation::mcam_contexts;
use presentation::service::{PAbortInd, PConCnf, PConReq, PDataInd, PDataReq, PRelCnf, PRelReq};

/// Interaction point to the application module.
pub const UP: IpIndex = IpIndex(0);
/// Interaction point to the presentation service (Estelle stack or
/// ISODE interface module).
pub const DOWN: IpIndex = IpIndex(1);
/// Interaction point to the client root (control).
pub const CTRL: IpIndex = IpIndex(2);

/// No association.
pub const UNBOUND: StateId = StateId(0);
/// P-CONNECT outstanding.
pub const CONNECTING: StateId = StateId(1);
/// Associated, no request outstanding.
pub const READY: StateId = StateId(2);
/// A request PDU is outstanding.
pub const WAITING: StateId = StateId(3);
/// MCAM released, presentation release outstanding.
pub const P_RELEASING: StateId = StateId(4);

const COST_REQ: SimDuration = SimDuration::from_micros(200);

fn is<T: Interaction>(msg: Option<&dyn Interaction>) -> bool {
    msg.is_some_and(|m| m.is::<T>())
}

/// The client MCA.
#[derive(Debug)]
pub struct ClientMca {
    /// Datagram address this client's stream receiver listens on.
    pub client_addr: u32,
    /// Advertise referral support in the AssociateReq and act on
    /// `ReferralRsp` (set by roots that can re-dial; a legacy client
    /// never sees a referral because it never advertises).
    referral_capable: bool,
    /// True when the outstanding request is a Release.
    release_pending: bool,
    /// Deliver the association confirmation to the application
    /// (from the current [`StartAssociate`]).
    announce: bool,
    /// Operation to replay once the association is up.
    resume: Option<McamOp>,
    /// The operation currently outstanding on the wire, kept so a
    /// referral can carry it to the next server for replay.
    last_op: Option<McamOp>,
    /// Requests sent.
    pub requests: u64,
    /// Responses delivered to the application.
    pub responses: u64,
    /// Referral responses handed to the root for re-homing.
    pub referrals_seen: u64,
    /// Decode or sequencing errors.
    pub protocol_errors: u64,
}

impl ClientMca {
    /// Creates a client MCA whose streams arrive at `client_addr`,
    /// speaking the pre-referral protocol (no capability advertised).
    pub fn new(client_addr: u32) -> Self {
        ClientMca {
            client_addr,
            referral_capable: false,
            release_pending: false,
            announce: true,
            resume: None,
            last_op: None,
            requests: 0,
            responses: 0,
            referrals_seen: 0,
            protocol_errors: 0,
        }
    }

    /// Advertises referral support: the server may answer the
    /// association open or a SelectMovie with a redirect, which this
    /// MCA hands to its root for re-homing.
    pub fn referral_capable(mut self) -> Self {
        self.referral_capable = true;
        self
    }

    /// Reports a failed (re-)connection to the application: the
    /// negative AssociateRsp it is waiting for, or — when the root
    /// was transparently re-homing a request — an error confirmation
    /// for that request, so the application is never left hanging.
    fn fail_connect(&mut self, ctx: &mut Ctx<'_>) {
        if self.announce {
            ctx.output(UP, McamCnf(McamPdu::AssociateRsp { accepted: false }));
        } else {
            self.resume = None;
            ctx.output(
                UP,
                McamCnf(McamPdu::ErrorRsp {
                    code: 905,
                    message: "re-association after referral failed".into(),
                }),
            );
        }
    }

    fn op_to_pdu(&self, op: McamOp) -> McamPdu {
        match op {
            McamOp::Associate { user } => McamPdu::AssociateReq {
                user,
                referral_capable: self.referral_capable,
            },
            McamOp::Release => McamPdu::ReleaseReq,
            McamOp::CreateMovie {
                title,
                format,
                frame_rate,
                frame_count,
            } => McamPdu::CreateMovieReq {
                title,
                format,
                frame_rate,
                frame_count,
            },
            McamOp::DeleteMovie { title } => McamPdu::DeleteMovieReq { title },
            McamOp::SelectMovie { title } => McamPdu::SelectMovieReq {
                title,
                client_addr: self.client_addr,
            },
            McamOp::Deselect => McamPdu::DeselectMovieReq,
            McamOp::List { contains } => McamPdu::ListMoviesReq {
                title_contains: contains,
            },
            McamOp::Query { title, attrs } => McamPdu::QueryAttrsReq { title, attrs },
            McamOp::Modify { title, puts } => McamPdu::ModifyAttrsReq { title, puts },
            McamOp::Play { speed_pct } => McamPdu::PlayReq { speed_pct },
            McamOp::Pause => McamPdu::PauseReq,
            McamOp::Stop => McamPdu::StopReq,
            McamOp::Seek { frame } => McamPdu::SeekReq { frame },
            McamOp::Record { title, frames } => McamPdu::RecordReq { title, frames },
        }
    }
}

impl StateMachine for ClientMca {
    fn num_ips(&self) -> usize {
        3
    }

    fn initial_state(&self) -> StateId {
        UNBOUND
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on(
                "start-associate",
                UNBOUND,
                CTRL,
                |m: &mut Self, ctx, msg| {
                    let start = downcast::<StartAssociate>(msg.unwrap()).unwrap();
                    m.announce = start.announce;
                    m.resume = start.resume;
                    let aarq = McamPdu::AssociateReq {
                        user: start.user,
                        referral_capable: m.referral_capable,
                    };
                    ctx.output(
                        DOWN,
                        PConReq {
                            contexts: mcam_contexts(),
                            user_data: aarq.encode(),
                        },
                    );
                },
            )
            .provided(|_, msg| is::<StartAssociate>(msg))
            .to(CONNECTING)
            .cost(COST_REQ),
            Transition::on("assoc-cnf", CONNECTING, DOWN, |m: &mut Self, ctx, msg| {
                let cnf = downcast::<PConCnf>(msg.unwrap()).unwrap();
                if !cnf.accepted {
                    // A refusal may be a referral: the server declined
                    // to carry this control association and named a
                    // better cluster member in the connect user data.
                    if m.referral_capable {
                        if let Ok(McamPdu::ReferralRsp { target, candidates }) =
                            McamPdu::decode(&cnf.user_data)
                        {
                            m.referrals_seen += 1;
                            ctx.output(
                                CTRL,
                                ReferralSignal {
                                    target,
                                    candidates,
                                    resume: m.resume.take(),
                                },
                            );
                            ctx.goto(UNBOUND);
                            return;
                        }
                    }
                    m.fail_connect(ctx);
                    ctx.goto(UNBOUND);
                    return;
                }
                match McamPdu::decode(&cnf.user_data) {
                    Ok(rsp @ McamPdu::AssociateRsp { accepted: true }) => {
                        ctx.output(CTRL, AssocSettled);
                        if m.announce {
                            ctx.output(UP, McamCnf(rsp));
                        }
                        // A referral interrupted a request: replay it
                        // on the new association — its confirmation
                        // is the one the application is waiting for.
                        if let Some(op) = m.resume.take() {
                            m.release_pending = matches!(op, McamOp::Release);
                            m.last_op = Some(op.clone());
                            let pdu = m.op_to_pdu(op);
                            m.requests += 1;
                            ctx.output(
                                DOWN,
                                PDataReq {
                                    context_id: 1,
                                    user_data: pdu.encode(),
                                },
                            );
                            ctx.goto(WAITING);
                        } else {
                            ctx.goto(READY);
                        }
                    }
                    Ok(rsp @ McamPdu::AssociateRsp { accepted: false }) => {
                        if m.announce {
                            ctx.output(UP, McamCnf(rsp));
                        } else {
                            m.fail_connect(ctx);
                        }
                        ctx.goto(UNBOUND);
                    }
                    _ => {
                        m.protocol_errors += 1;
                        m.fail_connect(ctx);
                        ctx.goto(UNBOUND);
                    }
                }
            })
            .provided(|_, msg| is::<PConCnf>(msg))
            .cost(COST_REQ),
            Transition::on("request", READY, UP, |m: &mut Self, ctx, msg| {
                let req = downcast::<McamReq>(msg.unwrap()).unwrap();
                m.release_pending = matches!(req.0, McamOp::Release);
                m.last_op = Some(req.0.clone());
                let pdu = m.op_to_pdu(req.0);
                m.requests += 1;
                ctx.output(
                    DOWN,
                    PDataReq {
                        context_id: 1,
                        user_data: pdu.encode(),
                    },
                );
            })
            .provided(|_, msg| is::<McamReq>(msg))
            .to(WAITING)
            .cost(COST_REQ),
            Transition::on("response", WAITING, DOWN, |m: &mut Self, ctx, msg| {
                let ind = downcast::<PDataInd>(msg.unwrap()).unwrap();
                match McamPdu::decode(&ind.user_data) {
                    // Mid-session referral: the server (overloaded or
                    // draining) declined the outstanding request and
                    // named a better home. Hand target + request to
                    // the root, which re-dials and replays it there;
                    // this association is dead to us.
                    Ok(McamPdu::ReferralRsp { target, candidates }) if m.referral_capable => {
                        m.referrals_seen += 1;
                        ctx.output(
                            CTRL,
                            ReferralSignal {
                                target,
                                candidates,
                                resume: m.last_op.take(),
                            },
                        );
                        ctx.goto(UNBOUND);
                    }
                    Ok(pdu) => {
                        m.responses += 1;
                        // A saturation report voids whatever referral
                        // the root cached: cluster load has moved.
                        if matches!(pdu, McamPdu::ErrorRsp { code: 503, .. }) {
                            ctx.output(CTRL, ReferralStale);
                        }
                        if m.release_pending && pdu == McamPdu::ReleaseRsp {
                            // The MCAM association is gone; tear down
                            // the presentation association before
                            // confirming to the user.
                            ctx.output(DOWN, PRelReq);
                            ctx.goto(P_RELEASING);
                        } else {
                            ctx.output(UP, McamCnf(pdu));
                            ctx.goto(READY);
                        }
                    }
                    Err(_) => {
                        m.protocol_errors += 1;
                        ctx.output(
                            UP,
                            McamCnf(McamPdu::ErrorRsp {
                                code: 900,
                                message: "undecodable response".into(),
                            }),
                        );
                        ctx.goto(READY);
                    }
                }
            })
            .provided(|_, msg| is::<PDataInd>(msg))
            .cost(COST_REQ),
            Transition::on("released", P_RELEASING, DOWN, |m: &mut Self, ctx, msg| {
                let _ = downcast::<PRelCnf>(msg.unwrap()).unwrap();
                m.release_pending = false;
                ctx.output(UP, McamCnf(McamPdu::ReleaseRsp));
            })
            .provided(|_, msg| is::<PRelCnf>(msg))
            .to(UNBOUND)
            .cost(COST_REQ),
            Transition::on("aborted", UNBOUND, DOWN, |m: &mut Self, ctx, msg| {
                let _ = downcast::<PAbortInd>(msg.unwrap()).unwrap();
                m.protocol_errors += 1;
                ctx.output(CTRL, ReferralStale);
                ctx.output(
                    UP,
                    McamCnf(McamPdu::ErrorRsp {
                        code: 999,
                        message: "association aborted".into(),
                    }),
                );
            })
            .any_state()
            .provided(|_, msg| is::<PAbortInd>(msg))
            .priority(1)
            .to(UNBOUND)
            .cost(COST_REQ),
            // Re-association: after a Release the MCA returns to
            // UNBOUND; a fresh Associate from the application re-runs
            // connection establishment on the same stack.
            Transition::on("re-associate", UNBOUND, UP, |m: &mut Self, ctx, msg| {
                let req = downcast::<McamReq>(msg.unwrap()).unwrap();
                let McamOp::Associate { user } = req.0 else {
                    unreachable!("guard admits only Associate")
                };
                m.announce = true;
                m.resume = None;
                let aarq = McamPdu::AssociateReq {
                    user,
                    referral_capable: m.referral_capable,
                };
                ctx.output(
                    DOWN,
                    PConReq {
                        contexts: mcam_contexts(),
                        user_data: aarq.encode(),
                    },
                );
            })
            .provided(|_, msg| {
                msg.and_then(|m| m.downcast_ref::<McamReq>())
                    .is_some_and(|r| matches!(r.0, McamOp::Associate { .. }))
            })
            .priority(100)
            .to(CONNECTING)
            .cost(COST_REQ),
            // Requests issued while no association exists fail locally.
            Transition::on("request-unbound", UNBOUND, UP, |m: &mut Self, ctx, msg| {
                let _ = downcast::<McamReq>(msg.unwrap()).unwrap();
                m.protocol_errors += 1;
                ctx.output(
                    UP,
                    McamCnf(McamPdu::ErrorRsp {
                        code: 901,
                        message: "not associated".into(),
                    }),
                );
            })
            .provided(|_, msg| is::<McamReq>(msg))
            .priority(200)
            .cost(SimDuration::from_micros(20)),
        ]
    }

    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {}
}
