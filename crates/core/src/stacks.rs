//! Stack construction: the two lower-stack configurations of the
//! experiment (Fig. 2) and the client root module that creates its
//! protocol stack dynamically when the application requests a
//! connection (paper §4.1).

use crate::app::{AppMachine, TO_MCA as APP_TO_MCA, TO_ROOT as APP_TO_ROOT};
use crate::mca::{ClientMca, CTRL as MCA_CTRL, DOWN as MCA_DOWN, UP as MCA_UP};
use crate::service::{McamOp, McamReq, StartAssociate};
use estelle::external::{MediumModule, MEDIUM_IP};
use estelle::{
    downcast, ip, Ctx, IpIndex, ModuleId, ModuleKind, ModuleLabels, StateId, StateMachine,
    Transition,
};
use isode::{IsodeInterfaceModule, IsodeStack};
use netsim::{Medium, SimDuration};
use presentation::PresentationMachine;
use session::SessionMachine;

/// Which lower stack carries the MCAM control protocol (the paper's
/// two configurations: Estelle-generated presentation+session vs.
/// ISODE through an interface module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// Estelle-generated ISO presentation + session kernels.
    EstellePS,
    /// The hand-coded ISODE stack behind the §4.3 interface module.
    Isode,
}

/// Creates the lower-stack child modules under the calling root and
/// wires `upper`'s `upper_ip` to them. Layer labels: presentation = 1,
/// session = 2, wire/ISODE = 3.
pub fn wire_lower_stack(
    ctx: &mut Ctx<'_>,
    upper: ModuleId,
    upper_ip: IpIndex,
    stack: StackKind,
    medium: Box<dyn Medium>,
    conn: u16,
) {
    match stack {
        StackKind::EstellePS => {
            let pres = ctx.create_child(
                format!("pres-{conn}"),
                ModuleKind::Process,
                ModuleLabels::layer_conn(1, conn),
                PresentationMachine::default(),
            );
            let sess = ctx.create_child(
                format!("sess-{conn}"),
                ModuleKind::Process,
                ModuleLabels::layer_conn(2, conn),
                SessionMachine::default(),
            );
            let wire = ctx.create_child(
                format!("wire-{conn}"),
                ModuleKind::Process,
                ModuleLabels::layer_conn(3, conn),
                MediumModule::new(medium),
            );
            ctx.connect(ip(upper, upper_ip), ip(pres, presentation::UP));
            ctx.connect(ip(pres, presentation::DOWN), ip(sess, session::UP));
            ctx.connect(ip(sess, session::DOWN), ip(wire, MEDIUM_IP));
        }
        StackKind::Isode => {
            let iface = ctx.create_child(
                format!("isode-{conn}"),
                ModuleKind::Process,
                ModuleLabels::layer_conn(3, conn),
                IsodeInterfaceModule::new(IsodeStack::new(medium)),
            );
            ctx.connect(ip(upper, upper_ip), ip(iface, isode::UP));
        }
    }
}

/// Interaction point of the client root towards its application.
pub const ROOT_TO_APP: IpIndex = IpIndex(0);
/// Interaction point of the client root towards its MCA.
pub const ROOT_TO_MCA: IpIndex = IpIndex(1);

const RUN: StateId = StateId(0);

/// The client root module: creates the application at initialization
/// and the MCAM module plus lower stack when the application requests
/// a connection (paper §4.1).
pub struct ClientRoot {
    medium: Option<Box<dyn Medium>>,
    stack: StackKind,
    conn: u16,
    client_addr: u32,
    app_machine: Option<AppMachine>,
    /// The application module, once created.
    pub app: Option<ModuleId>,
    /// The MCA module, once created.
    pub mca: Option<ModuleId>,
    /// Bootstrap errors (e.g. duplicate Associate).
    pub errors: u64,
}

impl std::fmt::Debug for ClientRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientRoot")
            .field("stack", &self.stack)
            .field("conn", &self.conn)
            .field("app", &self.app)
            .field("mca", &self.mca)
            .finish_non_exhaustive()
    }
}

impl ClientRoot {
    /// Creates a client root for connection index `conn`, listening
    /// for streams on `client_addr`, with the given application.
    pub fn new(
        medium: Box<dyn Medium>,
        stack: StackKind,
        conn: u16,
        client_addr: u32,
        app: AppMachine,
    ) -> Self {
        ClientRoot {
            medium: Some(medium),
            stack,
            conn,
            client_addr,
            app_machine: Some(app),
            app: None,
            mca: None,
            errors: 0,
        }
    }
}

impl StateMachine for ClientRoot {
    fn num_ips(&self) -> usize {
        2
    }

    fn initial_state(&self) -> StateId {
        RUN
    }

    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        let app = ctx.create_child(
            format!("app-{}", self.conn),
            ModuleKind::Process,
            ModuleLabels::layer_conn(0, self.conn),
            self.app_machine.take().expect("constructed with an app"),
        );
        ctx.connect(ctx.self_ip(ROOT_TO_APP), ip(app, APP_TO_ROOT));
        self.app = Some(app);
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![Transition::on(
            "connection-request",
            RUN,
            ROOT_TO_APP,
            |m: &mut Self, ctx, msg| {
                let req = downcast::<McamReq>(msg.unwrap()).unwrap();
                let McamOp::Associate { user } = req.0 else {
                    m.errors += 1;
                    return;
                };
                if m.mca.is_some() {
                    m.errors += 1;
                    return;
                }
                let labels = ModuleLabels::layer_conn(0, m.conn);
                let mca = ctx.create_child(
                    format!("mca-{}", m.conn),
                    ModuleKind::Process,
                    labels,
                    ClientMca::new(m.client_addr),
                );
                let medium = m.medium.take().expect("unused medium");
                wire_lower_stack(ctx, mca, MCA_DOWN, m.stack, medium, m.conn);
                ctx.connect(ctx.self_ip(ROOT_TO_MCA), ip(mca, MCA_CTRL));
                ctx.connect(ip(m.app.expect("init ran"), APP_TO_MCA), ip(mca, MCA_UP));
                ctx.output(ROOT_TO_MCA, StartAssociate { user });
                m.mca = Some(mca);
            },
        )
        .provided(|_, msg| msg.is_some_and(|m| m.is::<McamReq>()))
        .cost(SimDuration::from_micros(400))]
    }
}
