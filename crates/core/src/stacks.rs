//! Stack construction: the two lower-stack configurations of the
//! experiment (Fig. 2) and the client root module that creates its
//! protocol stack dynamically when the application requests a
//! connection (paper §4.1).

use crate::app::{AppMachine, TO_MCA as APP_TO_MCA, TO_ROOT as APP_TO_ROOT};
use crate::mca::{ClientMca, CTRL as MCA_CTRL, DOWN as MCA_DOWN, UP as MCA_UP};
use crate::pdus::McamPdu;
use crate::service::{
    AssocSettled, McamCnf, McamOp, McamReq, ReferralSignal, ReferralStale, StartAssociate,
};
use estelle::external::{MediumModule, MEDIUM_IP};
use estelle::{
    downcast, ip, Ctx, IpIndex, ModuleId, ModuleKind, ModuleLabels, StateId, StateMachine,
    Transition,
};
use isode::{IsodeInterfaceModule, IsodeStack};
use netsim::{Medium, SimDuration};
use presentation::PresentationMachine;
use session::SessionMachine;
use std::sync::Arc;

/// Which lower stack carries the MCAM control protocol (the paper's
/// two configurations: Estelle-generated presentation+session vs.
/// ISODE through an interface module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// Estelle-generated ISO presentation + session kernels.
    EstellePS,
    /// The hand-coded ISODE stack behind the §4.3 interface module.
    Isode,
}

/// Creates the lower-stack child modules under the calling root and
/// wires `upper`'s `upper_ip` to them. Layer labels: presentation = 1,
/// session = 2, wire/ISODE = 3. Returns the created module ids so a
/// root that rebuilds its stack (e.g. a client following a referral
/// to another server) can release the old one.
pub fn wire_lower_stack(
    ctx: &mut Ctx<'_>,
    upper: ModuleId,
    upper_ip: IpIndex,
    stack: StackKind,
    medium: Box<dyn Medium>,
    conn: u16,
) -> Vec<ModuleId> {
    wire_lower_stack_tagged(ctx, upper, upper_ip, stack, medium, conn, &conn.to_string())
}

/// [`wire_lower_stack`] with an explicit module-name tag, for roots
/// that build more than one stack over a connection's lifetime and
/// want distinguishable module names per incarnation.
pub fn wire_lower_stack_tagged(
    ctx: &mut Ctx<'_>,
    upper: ModuleId,
    upper_ip: IpIndex,
    stack: StackKind,
    medium: Box<dyn Medium>,
    conn: u16,
    tag: &str,
) -> Vec<ModuleId> {
    match stack {
        StackKind::EstellePS => {
            let pres = ctx.create_child(
                format!("pres-{tag}"),
                ModuleKind::Process,
                ModuleLabels::layer_conn(1, conn),
                PresentationMachine::default(),
            );
            let sess = ctx.create_child(
                format!("sess-{tag}"),
                ModuleKind::Process,
                ModuleLabels::layer_conn(2, conn),
                SessionMachine::default(),
            );
            let wire = ctx.create_child(
                format!("wire-{tag}"),
                ModuleKind::Process,
                ModuleLabels::layer_conn(3, conn),
                MediumModule::new(medium),
            );
            ctx.connect(ip(upper, upper_ip), ip(pres, presentation::UP));
            ctx.connect(ip(pres, presentation::DOWN), ip(sess, session::UP));
            ctx.connect(ip(sess, session::DOWN), ip(wire, MEDIUM_IP));
            vec![pres, sess, wire]
        }
        StackKind::Isode => {
            let iface = ctx.create_child(
                format!("isode-{tag}"),
                ModuleKind::Process,
                ModuleLabels::layer_conn(3, conn),
                IsodeInterfaceModule::new(IsodeStack::new(medium)),
            );
            ctx.connect(ip(upper, upper_ip), ip(iface, isode::UP));
            vec![iface]
        }
    }
}

/// Interaction point of the client root towards its application.
pub const ROOT_TO_APP: IpIndex = IpIndex(0);
/// Interaction point of the client root towards its MCA.
pub const ROOT_TO_MCA: IpIndex = IpIndex(1);

const RUN: StateId = StateId(0);

/// MCAM error code reported to the application when a referral chain
/// cannot be completed (hop budget exhausted, or every named
/// candidate is unreachable / already visited — a referral loop).
pub const ERR_REFERRAL: u32 = 907;

/// Opens fresh control connections to cluster servers by location
/// name. Implemented by the world (which owns the pipes and server
/// roots); a `None` means the location is unknown, decommissioned, or
/// draining — the caller falls back to the next referral candidate.
pub trait ControlDial: Send + Sync {
    /// A fresh control medium to `location`'s server, or `None`.
    fn dial(&self, location: &str, conn: u16) -> Option<Box<dyn Medium>>;
}

/// How a referral chain ended without a new home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferralEnd {
    /// The bounded hop count was exhausted.
    HopLimit,
    /// Every candidate was unreachable or already visited (the
    /// degenerate case of a referral loop).
    Exhausted,
}

/// The client-side referral-following policy, factored out of the
/// root module so its termination properties are unit-testable: a
/// bounded hop count, loop detection over visited locations, and
/// candidate fallback when the named target cannot be dialed.
#[derive(Debug, Clone)]
pub struct ReferralFollower {
    max_hops: u32,
    hops: u32,
    visited: Vec<String>,
}

impl ReferralFollower {
    /// A follower allowing at most `max_hops` referral hops per
    /// association attempt.
    pub fn new(max_hops: u32) -> Self {
        ReferralFollower {
            max_hops,
            hops: 0,
            visited: Vec::new(),
        }
    }

    /// Starts a fresh chain anchored at `home` (the server the client
    /// dialed itself): hop budget restored, only `home` visited.
    pub fn begin(&mut self, home: &str) {
        self.hops = 0;
        self.visited.clear();
        self.visited.push(home.to_string());
    }

    /// The chain settled at `location`: the association is up. The
    /// hop budget is restored and a future referral starts a new
    /// chain anchored there.
    pub fn settle(&mut self, location: &str) {
        self.hops = 0;
        self.visited.clear();
        self.visited.push(location.to_string());
    }

    /// Hops consumed in the current chain.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Locations of the current chain, oldest first.
    pub fn visited(&self) -> &[String] {
        &self.visited
    }

    /// Follows one referral: tries the named `target` first, then the
    /// `candidates` in order, skipping locations already visited
    /// (loop detection) and those `dial` rejects (dead or draining).
    /// On success the chosen location is marked visited and returned
    /// with whatever `dial` produced.
    ///
    /// # Errors
    ///
    /// [`ReferralEnd::HopLimit`] when the hop budget is exhausted,
    /// [`ReferralEnd::Exhausted`] when no candidate is reachable.
    pub fn next<T>(
        &mut self,
        target: &str,
        candidates: &[(String, u64)],
        mut dial: impl FnMut(&str) -> Option<T>,
    ) -> Result<(String, T), ReferralEnd> {
        if self.hops >= self.max_hops {
            return Err(ReferralEnd::HopLimit);
        }
        self.hops += 1;
        for location in std::iter::once(target).chain(candidates.iter().map(|(l, _)| l.as_str())) {
            if self.visited.iter().any(|v| v == location) {
                continue;
            }
            if let Some(t) = dial(location) {
                self.visited.push(location.to_string());
                return Ok((location.to_string(), t));
            }
        }
        Err(ReferralEnd::Exhausted)
    }
}

/// The client root module: creates the application at initialization
/// and the MCAM module plus lower stack when the application requests
/// a connection (paper §4.1). A root equipped with a [`ControlDial`]
/// also follows server referrals: it tears the MCA and stack down,
/// dials the named cluster member, rebuilds both, and replays the
/// interrupted request — transparently to the application.
pub struct ClientRoot {
    medium: Option<Box<dyn Medium>>,
    stack: StackKind,
    conn: u16,
    client_addr: u32,
    app_machine: Option<AppMachine>,
    /// Re-dialer for referral targets; `None` makes this a legacy
    /// (pre-referral) client pinned to its original server.
    dialer: Option<Arc<dyn ControlDial>>,
    /// Location of the server the world attached this client to.
    home: String,
    /// Hop/loop bookkeeping for the current referral chain.
    follower: ReferralFollower,
    /// User name of the current association (for re-association
    /// after a referral).
    user: String,
    /// The last referral followed: where the control association now
    /// lives and the candidate list it carried. Dropped when the
    /// server reports saturation (`ErrorRsp 503`) or the association
    /// aborts — the next referral then re-resolves from fresh
    /// candidates instead of trusting a stale load hint.
    cache: Option<(String, Vec<(String, u64)>)>,
    /// Module-name generation counter across stack rebuilds.
    generation: u32,
    /// Lower-stack modules of the current incarnation.
    stack_modules: Vec<ModuleId>,
    /// The application module, once created.
    pub app: Option<ModuleId>,
    /// The MCA module, once created.
    pub mca: Option<ModuleId>,
    /// Location currently carrying the control association.
    pub control_location: String,
    /// Referrals successfully followed.
    pub referrals_followed: u64,
    /// Referral chains that ended without a new home (hop budget or
    /// candidate exhaustion).
    pub referral_failures: u64,
    /// Bootstrap errors (e.g. duplicate Associate).
    pub errors: u64,
    /// The world's event journal; referral follows/failures are
    /// chained under `client-<conn>`.
    journal: Option<std::sync::Arc<journal::Journal>>,
}

impl std::fmt::Debug for ClientRoot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientRoot")
            .field("stack", &self.stack)
            .field("conn", &self.conn)
            .field("app", &self.app)
            .field("mca", &self.mca)
            .field("control_location", &self.control_location)
            .finish_non_exhaustive()
    }
}

impl ClientRoot {
    /// Creates a client root for connection index `conn`, listening
    /// for streams on `client_addr`, with the given application.
    /// Without [`ClientRoot::with_referrals`] the client speaks the
    /// pre-referral protocol and stays on its original server.
    pub fn new(
        medium: Box<dyn Medium>,
        stack: StackKind,
        conn: u16,
        client_addr: u32,
        app: AppMachine,
    ) -> Self {
        ClientRoot {
            medium: Some(medium),
            stack,
            conn,
            client_addr,
            app_machine: Some(app),
            dialer: None,
            home: String::new(),
            follower: ReferralFollower::new(0),
            user: String::new(),
            cache: None,
            generation: 0,
            stack_modules: Vec::new(),
            app: None,
            mca: None,
            control_location: String::new(),
            referrals_followed: 0,
            referral_failures: 0,
            errors: 0,
            journal: None,
        }
    }

    /// Attaches the world's event journal: this client's referral
    /// follows and failures are recorded under `client-<conn>`.
    pub fn with_journal(mut self, journal: std::sync::Arc<journal::Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Records an event under this client's hash chain.
    fn journal_event(&self, kind: journal::EventKind) {
        if let Some(journal) = &self.journal {
            journal.record(&format!("client-{}", self.conn), kind);
        }
    }

    /// Makes this a cluster-aware client: the MCA advertises referral
    /// support, and referrals are followed through `dialer` (at most
    /// `max_hops` per association attempt), starting from the `home`
    /// server the original medium leads to.
    pub fn with_referrals(
        mut self,
        dialer: Arc<dyn ControlDial>,
        home: impl Into<String>,
        max_hops: u32,
    ) -> Self {
        let home = home.into();
        self.dialer = Some(dialer);
        self.control_location.clone_from(&home);
        self.home = home;
        self.follower = ReferralFollower::new(max_hops);
        self
    }

    /// The referral target this root has cached, if any.
    pub fn cached_referral(&self) -> Option<String> {
        self.cache.as_ref().map(|(target, _)| target.clone())
    }

    /// Follows one referral: picks a reachable, unvisited target,
    /// releases the current MCA + stack, and rebuilds both over a
    /// fresh medium to the new server. Reports an [`ERR_REFERRAL`]
    /// error to the application when the chain cannot continue.
    ///
    /// A signal with an empty `target` is a *crash failover*: the
    /// association aborted mid-session, and the MCA asks to be
    /// re-homed on any survivor from the root's cached candidate
    /// list, replaying the session re-establishment ops it carried.
    fn follow_referral(&mut self, ctx: &mut Ctx<'_>, sig: ReferralSignal) {
        let dialer = match &self.dialer {
            Some(d) => Arc::clone(d),
            None => {
                // A referral reached a client that cannot re-dial
                // (should not happen: it never advertises support).
                self.referral_failures += 1;
                self.journal_event(journal::EventKind::ReferralFailed {
                    target: sig.target.clone(),
                });
                self.fail_referral(ctx, "client cannot follow referrals", sig.resume);
                return;
            }
        };
        // Merge cached candidates behind the fresh ones: if the
        // referral's own list is stale or empty, the last known
        // cluster membership still offers somewhere to go.
        let mut candidates = sig.candidates.clone();
        if let Some((_, cached)) = &self.cache {
            for c in cached {
                if !candidates.iter().any(|(l, _)| l == &c.0) {
                    candidates.push(c.clone());
                }
            }
        }
        let conn = self.conn;
        match self
            .follower
            .next(&sig.target, &candidates, |loc| dialer.dial(loc, conn))
        {
            Ok((location, medium)) => {
                self.referrals_followed += 1;
                if sig.target.is_empty() {
                    // Crash failover, not a server-issued referral:
                    // record where the stream session moved and the
                    // frame it resumes at.
                    let title = sig
                        .resume
                        .iter()
                        .find_map(|op| match op {
                            McamOp::SelectMovie { title } => Some(title.clone()),
                            _ => None,
                        })
                        .unwrap_or_default();
                    let resume_frame = sig
                        .resume
                        .iter()
                        .find_map(|op| match op {
                            McamOp::Seek { frame } => Some(*frame),
                            _ => None,
                        })
                        .unwrap_or(0);
                    self.journal_event(journal::EventKind::StreamFailedOver {
                        title,
                        from: self.control_location.clone(),
                        to: location.clone(),
                        resume_frame,
                    });
                } else {
                    self.journal_event(journal::EventKind::ReferralFollowed {
                        target: location.clone(),
                    });
                }
                // Cache the merged candidate list: after a crash the
                // incoming signal carries none, and the survivors we
                // already knew about remain the fallback set.
                self.cache = Some((location.clone(), candidates));
                self.control_location.clone_from(&location);
                self.rebuild_stack(ctx, medium);
                ctx.output(
                    ROOT_TO_MCA,
                    StartAssociate {
                        user: self.user.clone(),
                        announce: sig.resume.is_empty(),
                        resume: sig.resume,
                    },
                );
            }
            Err(end) => {
                self.referral_failures += 1;
                self.journal_event(journal::EventKind::ReferralFailed {
                    target: sig.target.clone(),
                });
                self.cache = None;
                let why = match end {
                    ReferralEnd::HopLimit => "referral hop limit exhausted",
                    ReferralEnd::Exhausted => {
                        "no reachable referral candidate (referral loop or dead targets)"
                    }
                };
                self.fail_referral(ctx, why, sig.resume);
                // The chain is over: restore the hop budget and clear
                // the visited set so a later retry (which reaches the
                // MCA's re-associate transition directly, never this
                // root) starts fresh from the surviving stack's
                // server instead of inheriting this chain's failure.
                let anchor = if self.control_location.is_empty() {
                    self.home.clone()
                } else {
                    self.control_location.clone()
                };
                self.follower.begin(&anchor);
            }
        }
    }

    /// Delivers a referral failure to the application as the
    /// confirmation it is waiting for (the old MCA and stack stay up,
    /// so the application may simply try again later).
    fn fail_referral(&mut self, ctx: &mut Ctx<'_>, why: &str, resume: Vec<McamOp>) {
        let what = match resume.first() {
            Some(op) => format!("{why} while re-homing {op:?}"),
            None => why.to_string(),
        };
        ctx.output(
            ROOT_TO_APP,
            McamCnf(McamPdu::ErrorRsp {
                code: ERR_REFERRAL,
                message: what,
            }),
        );
    }

    /// Releases the current MCA and lower stack and builds fresh ones
    /// over `medium`, re-wiring the application and control channels.
    fn rebuild_stack(&mut self, ctx: &mut Ctx<'_>, medium: Box<dyn Medium>) {
        if let Some(old) = self.mca.take() {
            ctx.release_child(old);
        }
        for old in self.stack_modules.drain(..) {
            ctx.release_child(old);
        }
        self.generation += 1;
        let labels = ModuleLabels::layer_conn(0, self.conn);
        // The first incarnation keeps the historical `<conn>` names;
        // referral rebuilds are suffixed with their generation.
        let tag = if self.generation == 1 {
            self.conn.to_string()
        } else {
            format!("{}g{}", self.conn, self.generation)
        };
        let mut mca = ClientMca::new(self.client_addr);
        if self.dialer.is_some() {
            mca = mca.referral_capable();
        }
        let mca = ctx.create_child(format!("mca-{tag}"), ModuleKind::Process, labels, mca);
        self.stack_modules =
            wire_lower_stack_tagged(ctx, mca, MCA_DOWN, self.stack, medium, self.conn, &tag);
        ctx.connect(ctx.self_ip(ROOT_TO_MCA), ip(mca, MCA_CTRL));
        ctx.connect(ip(self.app.expect("init ran"), APP_TO_MCA), ip(mca, MCA_UP));
        self.mca = Some(mca);
    }
}

impl StateMachine for ClientRoot {
    fn num_ips(&self) -> usize {
        2
    }

    fn initial_state(&self) -> StateId {
        RUN
    }

    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        let app = ctx.create_child(
            format!("app-{}", self.conn),
            ModuleKind::Process,
            ModuleLabels::layer_conn(0, self.conn),
            self.app_machine.take().expect("constructed with an app"),
        );
        ctx.connect(ctx.self_ip(ROOT_TO_APP), ip(app, APP_TO_ROOT));
        self.app = Some(app);
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on(
                "connection-request",
                RUN,
                ROOT_TO_APP,
                |m: &mut Self, ctx, msg| {
                    let req = downcast::<McamReq>(msg.unwrap()).unwrap();
                    let McamOp::Associate { user } = req.0 else {
                        m.errors += 1;
                        return;
                    };
                    if m.mca.is_some() {
                        m.errors += 1;
                        return;
                    }
                    m.user = user.clone();
                    m.follower.begin(&m.home.clone());
                    let medium = m.medium.take().expect("unused medium");
                    m.rebuild_stack(ctx, medium);
                    ctx.output(
                        ROOT_TO_MCA,
                        StartAssociate {
                            user,
                            announce: true,
                            resume: Vec::new(),
                        },
                    );
                },
            )
            .provided(|_, msg| msg.is_some_and(|m| m.is::<McamReq>()))
            .cost(SimDuration::from_micros(400)),
            // The server referred this client to another cluster
            // member: re-home the control association there.
            Transition::on("referral", RUN, ROOT_TO_MCA, |m: &mut Self, ctx, msg| {
                let sig = downcast::<ReferralSignal>(msg.unwrap()).unwrap();
                m.follow_referral(ctx, sig);
            })
            .provided(|_, msg| msg.is_some_and(|m| m.is::<ReferralSignal>()))
            .cost(SimDuration::from_micros(400)),
            // Association up: the referral chain (if any) settled —
            // restore the hop budget, anchored at the new home.
            Transition::on("settled", RUN, ROOT_TO_MCA, |m: &mut Self, _ctx, msg| {
                let _ = downcast::<AssocSettled>(msg.unwrap()).unwrap();
                let at = m.control_location.clone();
                m.follower.settle(if at.is_empty() { &m.home } else { &at });
            })
            .provided(|_, msg| msg.is_some_and(|m| m.is::<AssocSettled>()))
            .cost(SimDuration::from_micros(20)),
            // Saturation or abort: the cached referral no longer
            // reflects cluster load.
            Transition::on("stale", RUN, ROOT_TO_MCA, |m: &mut Self, _ctx, msg| {
                let _ = downcast::<ReferralStale>(msg.unwrap()).unwrap();
                m.cache = None;
            })
            .provided(|_, msg| msg.is_some_and(|m| m.is::<ReferralStale>()))
            .cost(SimDuration::from_micros(20)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dial stand-in: only the listed locations answer.
    fn dialer<'a>(alive: &'a [&'a str]) -> impl FnMut(&str) -> Option<String> + 'a {
        move |loc| alive.iter().find(|a| **a == loc).map(|a| (*a).to_string())
    }

    fn hint(locations: &[&str]) -> Vec<(String, u64)> {
        locations.iter().map(|l| ((*l).to_string(), 0)).collect()
    }

    #[test]
    fn follower_prefers_target_then_candidates() {
        let mut f = ReferralFollower::new(4);
        f.begin("node-1");
        let (loc, _) = f
            .next("node-2", &hint(&["node-3"]), dialer(&["node-2", "node-3"]))
            .unwrap();
        assert_eq!(loc, "node-2");
        assert_eq!(f.hops(), 1);
        assert_eq!(f.visited(), ["node-1", "node-2"]);
    }

    #[test]
    fn follower_falls_back_when_target_is_dead() {
        let mut f = ReferralFollower::new(4);
        f.begin("node-1");
        // The named target is gone (decommissioned/draining): the
        // next live candidate takes the association.
        let (loc, _) = f
            .next(
                "node-9",
                &hint(&["node-9", "node-2", "node-3"]),
                dialer(&["node-2", "node-3"]),
            )
            .unwrap();
        assert_eq!(loc, "node-2");
        // Nothing dialable at all: the chain is exhausted.
        assert_eq!(
            f.next("node-9", &hint(&["node-8"]), dialer(&[])),
            Err(ReferralEnd::Exhausted)
        );
    }

    #[test]
    fn follower_detects_referral_loops() {
        let mut f = ReferralFollower::new(8);
        f.begin("node-1");
        // node-1 refers to node-2; node-2 refers straight back.
        // Loop detection (visited set) terminates the chain even
        // though the hop budget is far from spent.
        f.next("node-2", &hint(&[]), dialer(&["node-1", "node-2"]))
            .unwrap();
        assert_eq!(
            f.next(
                "node-1",
                &hint(&["node-1", "node-2"]),
                dialer(&["node-1", "node-2"])
            ),
            Err(ReferralEnd::Exhausted),
            "both ends of the loop are already visited"
        );
        assert!(f.hops() < 8, "loops terminate well before the hop budget");
    }

    #[test]
    fn follower_enforces_hop_limit() {
        let mut f = ReferralFollower::new(2);
        f.begin("node-1");
        let all = ["node-1", "node-2", "node-3", "node-4", "node-5"];
        f.next("node-2", &hint(&[]), dialer(&all)).unwrap();
        f.next("node-3", &hint(&[]), dialer(&all)).unwrap();
        assert_eq!(
            f.next("node-4", &hint(&[]), dialer(&all)),
            Err(ReferralEnd::HopLimit),
            "a chain longer than max_hops is cut"
        );
        // Settling restores the budget for the next chain.
        f.settle("node-3");
        assert_eq!(f.hops(), 0);
        assert_eq!(f.visited(), ["node-3"]);
        assert!(f.next("node-4", &hint(&[]), dialer(&all)).is_ok());
    }
}
