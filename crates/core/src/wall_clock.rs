//! Wall-clock throughput rig on the threaded transport backend.
//!
//! The world's Estelle driver is deliberately single-threaded on the
//! virtual clock — deterministic, replayable, and capped at one core.
//! This module is the other half of the backend split: N *server*
//! worker threads, each pumping its own set of streams over
//! channel-per-connection conduits minted by
//! [`netsim::ThreadedBackend`], with a paired consumer thread per
//! worker decoding on the far side. Throughput is measured on the
//! real clock, so the numbers scale with cores.
//!
//! The per-frame hot path is the same codec the simulated world uses
//! — [`mtp::encode_frame_into`] on the way out,
//! [`mtp::MtpPacket::decode_view`] on the way in — and it is
//! allocation-free in steady state: each connection recycles its
//! frame buffers by sending the drained `Vec` back on the reverse
//! direction of the same duplex conduit, so after the first
//! `POOL_PER_STREAM` frames a stream never touches the heap again.

use mtp::{encode_frame_into, FrameKind, MtpPacket};
use netsim::{Medium, ThreadedBackend, TransportBackend};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Frame buffers in flight per stream before the sender waits for a
/// recycled one. Allocation happens only while this pool fills.
pub const POOL_PER_STREAM: usize = 4;

/// Shape of one wall-clock run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallClockConfig {
    /// Server worker threads (each gets a paired consumer thread).
    pub threads: usize,
    /// Streams pumped by each worker.
    pub streams_per_thread: usize,
    /// Data frames per stream (an end-of-stream marker follows).
    pub frames_per_stream: u64,
    /// Nominal frame payload size in bytes.
    pub frame_size: usize,
}

impl Default for WallClockConfig {
    fn default() -> Self {
        WallClockConfig {
            threads: 1,
            streams_per_thread: 8,
            frames_per_stream: 500,
            frame_size: 16 * 1024,
        }
    }
}

/// Outcome of one wall-clock run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallClockReport {
    /// Worker threads that ran.
    pub threads: usize,
    /// Streams that ran to completion (threads × streams_per_thread).
    pub streams_sustained: usize,
    /// Data frames delivered and decoded across all streams.
    pub frames_delivered: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Frames that arrived out of order (must be 0: each connection is
    /// an in-order conduit).
    pub sequence_errors: u64,
    /// Heap allocations the senders performed after their buffer
    /// pools warmed up (must be 0 in steady state).
    pub steady_state_allocs: u64,
    /// Wall-clock time from the start barrier to the last join.
    pub elapsed: Duration,
}

impl WallClockReport {
    /// Delivered frames per wall-clock second (integer).
    pub fn frames_per_sec(&self) -> u64 {
        let us = self.elapsed.as_micros().max(1) as u64;
        self.frames_delivered.saturating_mul(1_000_000) / us
    }
}

/// Per-stream sender state on the worker side.
struct SendStream {
    end: Box<dyn Medium>,
    seq: u32,
    sent: u64,
    /// Buffers handed to the connection and not yet recycled.
    in_flight: usize,
    /// Fresh buffers allocated so far (bounded by the pool size while
    /// recycling works).
    allocs: u64,
    /// Fresh allocations beyond the pool size — recycling failures.
    late_allocs: u64,
    eos_sent: bool,
}

/// Per-stream receiver state on the consumer side.
struct RecvStream {
    end: Box<dyn Medium>,
    next_seq: u32,
    frames: u64,
    bytes: u64,
    seq_errors: u64,
    ended: bool,
}

/// Runs `config` on the threaded backend and reports wall-clock
/// throughput.
///
/// # Panics
///
/// Panics if a worker or consumer thread panics.
pub fn run(config: WallClockConfig) -> WallClockReport {
    let backend = ThreadedBackend::new();
    let threads = config.threads.max(1);
    let streams = config.streams_per_thread.max(1);
    let start = Barrier::new(threads * 2 + 1);

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        let mut consumers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let mut senders = Vec::with_capacity(streams);
            let mut receivers = Vec::with_capacity(streams);
            for _ in 0..streams {
                let (server_end, client_end) = backend.connect();
                senders.push(SendStream {
                    end: server_end,
                    seq: 0,
                    sent: 0,
                    in_flight: 0,
                    allocs: 0,
                    late_allocs: 0,
                    eos_sent: false,
                });
                receivers.push(RecvStream {
                    end: client_end,
                    next_seq: 0,
                    frames: 0,
                    bytes: 0,
                    seq_errors: 0,
                    ended: false,
                });
            }
            let start_ref = &start;
            workers.push(scope.spawn(move || {
                start_ref.wait();
                pump_streams(&mut senders, &config);
                senders.iter().map(|s| s.late_allocs).sum::<u64>()
            }));
            consumers.push(scope.spawn(move || {
                start_ref.wait();
                drain_streams(&mut receivers);
                receivers.iter().fold((0u64, 0u64, 0u64), |(f, b, e), r| {
                    (f + r.frames, b + r.bytes, e + r.seq_errors)
                })
            }));
        }

        start.wait();
        let begun = Instant::now();
        let mut steady_state_allocs = 0;
        for w in workers {
            steady_state_allocs += w.join().expect("worker thread");
        }
        let mut frames = 0;
        let mut bytes = 0;
        let mut seq_errors = 0;
        for c in consumers {
            let (f, b, e) = c.join().expect("consumer thread");
            frames += f;
            bytes += b;
            seq_errors += e;
        }
        WallClockReport {
            threads,
            streams_sustained: threads * streams,
            frames_delivered: frames,
            bytes_delivered: bytes,
            sequence_errors: seq_errors,
            steady_state_allocs,
            elapsed: begun.elapsed(),
        }
    })
}

/// Worker side: encode and send every frame of every stream, reusing
/// buffers the consumer recycles on the reverse direction.
fn pump_streams(senders: &mut [SendStream], config: &WallClockConfig) {
    let interval_us = 40_000u64; // nominal 25 fps media timestamps
    loop {
        let mut done = true;
        let mut progressed = false;
        for (id, s) in senders.iter_mut().enumerate() {
            if s.eos_sent {
                continue;
            }
            done = false;
            // Prefer a recycled buffer; allocate only while the pool
            // still fills. A full pool with no recycled buffer yet
            // means the consumer is behind — move to the next stream.
            let mut buf = match s.end.poll() {
                Some(b) => {
                    s.in_flight -= 1;
                    b
                }
                None if s.in_flight < POOL_PER_STREAM => {
                    s.allocs += 1;
                    if s.allocs > POOL_PER_STREAM as u64 {
                        s.late_allocs += 1;
                    }
                    Vec::new()
                }
                None => continue,
            };
            let eos = s.sent >= config.frames_per_stream;
            encode_frame_into(
                id as u32,
                s.seq,
                s.sent * interval_us,
                FrameKind::I,
                eos,
                if eos { 0 } else { config.frame_size },
                &mut buf,
            );
            s.end.send(buf);
            s.in_flight += 1;
            s.seq += 1;
            s.sent += 1;
            s.eos_sent = eos;
            progressed = true;
        }
        if done {
            return;
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
}

/// Consumer side: decode every frame in order and recycle its buffer.
fn drain_streams(receivers: &mut [RecvStream]) {
    loop {
        let mut progressed = false;
        let mut live = 0;
        for r in receivers.iter_mut() {
            if r.ended {
                continue;
            }
            live += 1;
            while let Some(buf) = r.end.poll() {
                progressed = true;
                let view = MtpPacket::decode_view(&buf).expect("well-formed frame");
                if view.seq != r.next_seq {
                    r.seq_errors += 1;
                }
                r.next_seq = view.seq.wrapping_add(1);
                if view.end_of_stream {
                    r.ended = true;
                    break;
                }
                r.frames += 1;
                r.bytes += view.payload.len() as u64;
                // Recycle: the drained buffer goes back to the sender
                // on the same duplex connection.
                r.end.send(buf);
            }
        }
        if live == 0 {
            return;
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_every_frame_in_order() {
        let report = run(WallClockConfig {
            threads: 2,
            streams_per_thread: 3,
            frames_per_stream: 50,
            frame_size: 1024,
        });
        assert_eq!(report.streams_sustained, 6);
        assert_eq!(report.frames_delivered, 2 * 3 * 50);
        assert_eq!(report.bytes_delivered, 2 * 3 * 50 * 1024);
        assert_eq!(report.sequence_errors, 0);
        assert!(report.frames_per_sec() > 0);
    }

    #[test]
    fn steady_state_senders_do_not_allocate() {
        let report = run(WallClockConfig {
            threads: 1,
            streams_per_thread: 2,
            frames_per_stream: 200,
            frame_size: 4096,
        });
        assert_eq!(report.frames_delivered, 400);
        assert_eq!(
            report.steady_state_allocs, 0,
            "senders must live off recycled buffers after warm-up"
        );
    }

    #[test]
    fn single_thread_minimum_is_enforced() {
        let report = run(WallClockConfig {
            threads: 0,
            streams_per_thread: 0,
            frames_per_stream: 1,
            frame_size: 8,
        });
        assert_eq!(report.threads, 1);
        assert_eq!(report.streams_sustained, 1);
        assert_eq!(report.frames_delivered, 1);
    }
}
