//! The application module.
//!
//! In the paper this module's body is external: a generated X-Window
//! interface where "any message sent by the application can be invoked
//! via a button-click". Our substitute is script- or queue-driven: a
//! list of [`McamOp`]s is played against the MCA one at a time (each
//! sent when the previous confirmation arrives), and a test harness
//! can push further operations interactively.

use crate::pdus::McamPdu;
use crate::service::{McamCnf, McamOp, McamReq};
use estelle::{downcast, Ctx, IpIndex, StateId, StateMachine, Transition};
use netsim::SimDuration;
use std::collections::VecDeque;

/// Interaction point to the client root (association bootstrap).
pub const TO_ROOT: IpIndex = IpIndex(0);
/// Interaction point to the MCA (everything else).
pub const TO_MCA: IpIndex = IpIndex(1);

const RUN: StateId = StateId(0);

/// The scriptable application module.
#[derive(Debug, Default)]
pub struct AppMachine {
    /// Pre-loaded operations (played in order).
    pub script: VecDeque<McamOp>,
    /// Operations pushed interactively by a driver.
    pub queued: VecDeque<McamOp>,
    /// True while a confirmation is outstanding.
    pub awaiting: bool,
    /// True once the association bootstrap was sent.
    pub started: bool,
    /// Confirmations received, in order.
    pub replies: Vec<McamPdu>,
}

impl AppMachine {
    /// An application that will play `script`; the first operation
    /// must be [`McamOp::Associate`] (it triggers stack creation).
    pub fn with_script(script: Vec<McamOp>) -> Self {
        AppMachine {
            script: script.into(),
            ..Default::default()
        }
    }

    fn next_op(&mut self) -> Option<McamOp> {
        self.script.pop_front().or_else(|| self.queued.pop_front())
    }

    fn peek_is_associate(&self) -> bool {
        matches!(
            self.script.front().or_else(|| self.queued.front()),
            Some(McamOp::Associate { .. })
        )
    }
}

impl StateMachine for AppMachine {
    fn num_ips(&self) -> usize {
        2
    }

    fn initial_state(&self) -> StateId {
        RUN
    }

    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        if self.peek_is_associate() {
            let op = self.next_op().expect("peeked");
            self.started = true;
            self.awaiting = true;
            ctx.output(TO_ROOT, McamReq(op));
        }
    }

    fn transitions() -> Vec<Transition<Self>> {
        vec![
            // Bootstrap when the Associate arrives interactively.
            Transition::spontaneous("bootstrap", RUN, |m: &mut Self, ctx, _| {
                let op = m.next_op().expect("guard checked");
                m.started = true;
                m.awaiting = true;
                ctx.output(TO_ROOT, McamReq(op));
            })
            .provided(|m, _| !m.started && m.peek_is_associate())
            .cost(SimDuration::from_micros(30)),
            Transition::on("confirmation", RUN, TO_MCA, |m: &mut Self, _ctx, msg| {
                let cnf = downcast::<McamCnf>(msg.unwrap()).unwrap();
                m.replies.push(cnf.0);
                m.awaiting = false;
            })
            .cost(SimDuration::from_micros(30)),
            // The root, too, may confirm an operation — it reports
            // referral-following failures itself because the MCA that
            // carried the operation is gone by then.
            Transition::on(
                "root-confirmation",
                RUN,
                TO_ROOT,
                |m: &mut Self, _ctx, msg| {
                    let cnf = downcast::<McamCnf>(msg.unwrap()).unwrap();
                    m.replies.push(cnf.0);
                    m.awaiting = false;
                },
            )
            .provided(|_, msg| msg.is_some_and(|m| m.is::<McamCnf>()))
            .cost(SimDuration::from_micros(30)),
            Transition::spontaneous("next-op", RUN, |m: &mut Self, ctx, _| {
                let op = m.next_op().expect("guard checked");
                m.awaiting = true;
                ctx.output(TO_MCA, McamReq(op));
            })
            .provided(|m, _| {
                m.started && !m.awaiting && (!m.script.is_empty() || !m.queued.is_empty())
            })
            .cost(SimDuration::from_micros(30)),
        ]
    }
}
