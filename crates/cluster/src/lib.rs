//! `cluster` — replica placement and load-aware stream routing for a
//! multi-server movie service.
//!
//! After the storage subsystem (`store`) made disk bandwidth a
//! first-class, admission-controlled resource *within* one server,
//! this crate scales the service *across* servers: a published movie
//! is placed on K replica servers ([`Placement`]), the directory entry
//! carries every replica's location, and each `SelectMovie` is routed
//! to the replica whose admission controller reports the most
//! uncommitted bandwidth ([`ReplicaDirectory::route`]) — falling over
//! to the next replica when the first rejects, so a single popular
//! title no longer saturates one machine while its peers idle.
//!
//! The crate is deliberately independent of the protocol layer: it
//! reasons about *locations* (opaque strings such as `"node-3"`) and
//! *load probes* ([`LoadProbe`], implemented here for
//! `Arc<store::BlockStore>` and wired to the stream providers by the
//! `mcam` crate), so the same policies drive the live world, the unit
//! tests, and the `store_throughput` cluster benchmark.
//!
//! Placement is no longer decided only at publish time: the
//! [`RebalanceController`] (module [`rebalance`]) owns the whole
//! replica lifecycle — place, grow a hot title onto idle servers,
//! shrink over-provisioned ones, migrate sole copies off a draining
//! server, and decommission it — with every copy flowing through the
//! target store's admission-charged, paced write path.
//!
//! # Examples
//!
//! ```
//! use cluster::{Placement, ReplicaDirectory};
//! use store::{BlockStore, StoreConfig};
//!
//! let dir = ReplicaDirectory::new();
//! for name in ["node-1", "node-2", "node-3"] {
//!     dir.register(name, BlockStore::new(StoreConfig::default()));
//! }
//! let mut placement = Placement::round_robin(2);
//! let replicas = placement.place(&dir.loads());
//! assert_eq!(replicas, vec!["node-1".to_string(), "node-2".to_string()]);
//! // Route a select: candidates ordered most-available-first.
//! let order = dir.route(&replicas);
//! assert_eq!(order.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod control;
pub mod rebalance;

pub use control::ControlBalancer;
pub use rebalance::{
    CopyRejected, DrainError, MigrationHost, RebalanceConfig, RebalanceController, RebalanceStats,
};

use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// A point-in-time load snapshot of one server's storage subsystem,
/// as reported by its admission controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSnapshot {
    /// Bandwidth still uncommitted, bits/second.
    pub available_bps: u64,
    /// Bandwidth committed to admitted streams, bits/second.
    pub committed_bps: u64,
    /// Total deliverable bandwidth, bits/second.
    pub capacity_bps: u64,
    /// Streams currently open.
    pub open_streams: usize,
    /// Fraction of block requests served without a dedicated disk
    /// read (buffer-cache hits plus coalesced in-flight reads), in
    /// per-mille. A deterministic placement tie-breaker: between two
    /// servers with equal committed bandwidth and stream count, the
    /// one whose cache works harder absorbs a new replica with less
    /// disk stress.
    pub cache_hit_permille: u32,
}

/// Anything that can report the storage load of one server machine.
pub trait LoadProbe {
    /// The server's current load.
    fn load(&self) -> LoadSnapshot;
}

impl<T: LoadProbe + ?Sized> LoadProbe for Arc<T> {
    fn load(&self) -> LoadSnapshot {
        (**self).load()
    }
}

impl LoadProbe for store::BlockStore {
    fn load(&self) -> LoadSnapshot {
        let stats = self.stats();
        LoadSnapshot {
            available_bps: stats.capacity_bps.saturating_sub(stats.committed_bps),
            committed_bps: stats.committed_bps,
            capacity_bps: stats.capacity_bps,
            open_streams: stats.open_streams,
            cache_hit_permille: (stats.service_hit_ratio() * 1000.0) as u32,
        }
    }
}

/// A named server's load, as returned by [`ReplicaDirectory::loads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerLoad {
    /// The server's location name (e.g. `"node-3"`).
    pub location: String,
    /// Its load snapshot.
    pub load: LoadSnapshot,
    /// The server is being drained: it finishes its streams but must
    /// receive no new placement, replica, or routed stream.
    pub draining: bool,
    /// The server has crashed: its streams are gone and it must be
    /// skipped by routing, placement, and failover until it
    /// re-registers.
    pub crashed: bool,
}

/// How [`Placement`] picks the K replica servers of a new movie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Successive movies start on successive servers, wrapping around:
    /// even load for a uniform catalogue, no load feedback needed.
    #[default]
    RoundRobin,
    /// Pick the servers with the least committed bandwidth right now
    /// (ties broken by fewer open streams, then registration order).
    LeastLoaded,
}

/// Replica-placement policy: assigns each published movie to K
/// servers.
#[derive(Debug, Clone)]
pub struct Placement {
    strategy: PlacementStrategy,
    k: usize,
    cursor: usize,
}

impl Placement {
    /// A placement policy with `k` replicas per movie.
    pub fn new(strategy: PlacementStrategy, k: usize) -> Self {
        Placement {
            strategy,
            k: k.max(1),
            cursor: 0,
        }
    }

    /// Round-robin placement with `k` replicas per movie.
    pub fn round_robin(k: usize) -> Self {
        Self::new(PlacementStrategy::RoundRobin, k)
    }

    /// Least-loaded placement with `k` replicas per movie.
    pub fn least_loaded(k: usize) -> Self {
        Self::new(PlacementStrategy::LeastLoaded, k)
    }

    /// Replicas per movie.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured strategy.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Chooses the replica locations for one new movie from the
    /// cluster's current loads. Returns at most `k` distinct
    /// locations (fewer when the cluster is smaller than `k`), in
    /// the order the replicas should be listed in the directory.
    pub fn place(&mut self, loads: &[ServerLoad]) -> Vec<String> {
        self.place_with(loads, self.k, &[])
    }

    /// Like [`Placement::place`] but with an explicit replica count
    /// (overriding the policy's configured `k` for this one decision)
    /// and a list of locations that must not be chosen — the record
    /// path and the rebalancer's grow step use it to pick peers for a
    /// title that already lives somewhere. Draining servers are never
    /// selected, whatever the strategy.
    pub fn place_with(
        &mut self,
        loads: &[ServerLoad],
        k: usize,
        exclude: &[String],
    ) -> Vec<String> {
        let candidates: Vec<&ServerLoad> = loads
            .iter()
            .filter(|s| !s.draining && !s.crashed && !exclude.contains(&s.location))
            .collect();
        if candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        let k = k.min(candidates.len());
        match self.strategy {
            PlacementStrategy::RoundRobin => {
                let start = self.cursor % candidates.len();
                self.cursor = self.cursor.wrapping_add(1);
                (0..k)
                    .map(|i| candidates[(start + i) % candidates.len()].location.clone())
                    .collect()
            }
            PlacementStrategy::LeastLoaded => {
                let mut by_load = candidates;
                by_load.sort_by(|a, b| least_loaded_key(a).cmp(&least_loaded_key(b)));
                by_load
                    .into_iter()
                    .take(k)
                    .map(|s| s.location.clone())
                    .collect()
            }
        }
    }
}

/// The least-loaded ordering: least committed bandwidth first, ties
/// broken by fewer open streams, then by the higher cache hit ratio,
/// and finally by location name — fully deterministic, independent of
/// registration order.
fn least_loaded_key(s: &ServerLoad) -> (u64, usize, u32, &str) {
    (
        s.load.committed_bps,
        s.load.open_streams,
        1000 - s.load.cache_hit_permille.min(1000),
        s.location.as_str(),
    )
}

/// One registered server: its location, probe, and drain/crash flags.
struct Slot<P> {
    location: String,
    probe: P,
    draining: bool,
    crashed: bool,
}

/// The cluster-wide registry of server locations and their load
/// probes: the layer between the movie directory (which stores
/// replica *names*) and the per-server storage stacks (which answer
/// load queries and host streams).
pub struct ReplicaDirectory<P> {
    servers: RwLock<Vec<Slot<P>>>,
}

impl<P> fmt::Debug for ReplicaDirectory<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let servers = self.servers.read();
        f.debug_struct("ReplicaDirectory")
            .field(
                "servers",
                &servers.iter().map(|s| &s.location).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<P> Default for ReplicaDirectory<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> ReplicaDirectory<P> {
    /// An empty directory.
    pub fn new() -> Self {
        ReplicaDirectory {
            servers: RwLock::new(Vec::new()),
        }
    }

    /// Number of registered servers.
    pub fn len(&self) -> usize {
        self.servers.read().len()
    }

    /// True when no server is registered.
    pub fn is_empty(&self) -> bool {
        self.servers.read().is_empty()
    }

    /// All registered locations, in registration order.
    pub fn locations(&self) -> Vec<String> {
        self.servers
            .read()
            .iter()
            .map(|s| s.location.clone())
            .collect()
    }

    /// Whether `location` is registered and currently draining.
    pub fn is_draining(&self, location: &str) -> bool {
        self.servers
            .read()
            .iter()
            .any(|s| s.location == location && s.draining)
    }

    /// Marks `location` as draining (or un-marks it): a draining
    /// server keeps serving its open streams but is skipped by
    /// [`ReplicaDirectory::route`] and by [`Placement::place_with`].
    /// Returns false when the location is not registered.
    pub fn set_draining(&self, location: &str, draining: bool) -> bool {
        let mut servers = self.servers.write();
        match servers.iter_mut().find(|s| s.location == location) {
            Some(slot) => {
                slot.draining = draining;
                true
            }
            None => false,
        }
    }

    /// Whether `location` is registered and currently marked crashed.
    pub fn is_crashed(&self, location: &str) -> bool {
        self.servers
            .read()
            .iter()
            .any(|s| s.location == location && s.crashed)
    }

    /// Marks `location` as crashed (or un-marks it): unlike a drain,
    /// a crash is immediate — the server's streams are gone, and the
    /// location is skipped by routing, placement, referral, and
    /// failover until it re-registers. Returns false when the
    /// location is not registered.
    pub fn set_crashed(&self, location: &str, crashed: bool) -> bool {
        let mut servers = self.servers.write();
        match servers.iter_mut().find(|s| s.location == location) {
            Some(slot) => {
                slot.crashed = crashed;
                true
            }
            None => false,
        }
    }

    /// Removes `location` from the registry (decommission), returning
    /// its probe so the caller can abort whatever was in flight.
    pub fn deregister(&self, location: &str) -> Option<P> {
        let mut servers = self.servers.write();
        let idx = servers.iter().position(|s| s.location == location)?;
        Some(servers.remove(idx).probe)
    }
}

impl<P: LoadProbe + Clone> ReplicaDirectory<P> {
    /// Registers (or replaces) a server under `location`. A replaced
    /// registration clears any drain flag — the location is back in
    /// service.
    pub fn register(&self, location: impl Into<String>, probe: P) {
        let location = location.into();
        let mut servers = self.servers.write();
        match servers.iter_mut().find(|s| s.location == location) {
            Some(slot) => {
                slot.probe = probe;
                slot.draining = false;
                slot.crashed = false;
            }
            None => servers.push(Slot {
                location,
                probe,
                draining: false,
                crashed: false,
            }),
        }
    }

    /// The probe registered under `location`.
    pub fn get(&self, location: &str) -> Option<P> {
        self.servers
            .read()
            .iter()
            .find(|s| s.location == location)
            .map(|s| s.probe.clone())
    }

    /// The first registered probe satisfying `pred`, in registration
    /// order (e.g. the provider hosting a given stream).
    pub fn find(&self, mut pred: impl FnMut(&P) -> bool) -> Option<P> {
        self.servers
            .read()
            .iter()
            .find(|s| pred(&s.probe))
            .map(|s| s.probe.clone())
    }

    /// Current load of every registered server, in registration order
    /// (draining servers included, flagged).
    pub fn loads(&self) -> Vec<ServerLoad> {
        self.servers
            .read()
            .iter()
            .map(|s| ServerLoad {
                location: s.location.clone(),
                load: s.probe.load(),
                draining: s.draining,
                crashed: s.crashed,
            })
            .collect()
    }

    /// Orders `replicas` for a stream-open attempt: registered
    /// replicas sorted by most uncommitted `available_bps` first
    /// (ties keep the replica-list order), each paired with its
    /// probe. Locations not registered here — decommissioned servers
    /// still named by a stale directory entry — and draining or
    /// crashed servers are skipped, so routing degrades to failover
    /// instead of erroring; the caller falls back to local service
    /// when nothing matches.
    pub fn route(&self, replicas: &[String]) -> Vec<(String, P)> {
        self.route_by(replicas, |_| false)
    }

    /// [`ReplicaDirectory::route`] with an affinity tie-break: among
    /// replicas with equal uncommitted bandwidth, those for which
    /// `prefer` holds come first (before the replica-list order).
    /// Stream sharing routes the next viewer of a title to a replica
    /// already streaming it in a merge group — the joiner is likely
    /// free there, while an equally-loaded cold replica would charge
    /// a full disk stream.
    pub fn route_by(
        &self,
        replicas: &[String],
        mut prefer: impl FnMut(&P) -> bool,
    ) -> Vec<(String, P)> {
        let servers = self.servers.read();
        let mut candidates: Vec<(usize, u64, bool, String, P)> = replicas
            .iter()
            .enumerate()
            .filter_map(|(order, location)| {
                servers
                    .iter()
                    .find(|s| s.location == *location && !s.draining && !s.crashed)
                    .map(|s| {
                        (
                            order,
                            s.probe.load().available_bps,
                            prefer(&s.probe),
                            s.location.clone(),
                            s.probe.clone(),
                        )
                    })
            })
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
        candidates
            .into_iter()
            .map(|(_, _, _, l, p)| (l, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A probe whose availability and cache hit ratio the test can
    /// dial.
    #[derive(Clone)]
    struct FakeProbe(Rc<Cell<u64>>, Rc<Cell<u32>>);

    impl FakeProbe {
        fn new(available: u64) -> Self {
            FakeProbe(Rc::new(Cell::new(available)), Rc::new(Cell::new(0)))
        }
        fn set(&self, available: u64) {
            self.0.set(available);
        }
        fn set_hit(&self, permille: u32) {
            self.1.set(permille);
        }
    }

    impl LoadProbe for FakeProbe {
        fn load(&self) -> LoadSnapshot {
            LoadSnapshot {
                available_bps: self.0.get(),
                committed_bps: 1_000_000 - self.0.get().min(1_000_000),
                capacity_bps: 1_000_000,
                open_streams: 0,
                cache_hit_permille: self.1.get(),
            }
        }
    }

    fn three_server_dir() -> (ReplicaDirectory<FakeProbe>, Vec<FakeProbe>) {
        let dir = ReplicaDirectory::new();
        let probes: Vec<FakeProbe> = (0..3).map(|_| FakeProbe::new(1_000_000)).collect();
        for (i, p) in probes.iter().enumerate() {
            dir.register(format!("node-{}", i + 1), p.clone());
        }
        (dir, probes)
    }

    #[test]
    fn round_robin_rotates_start_server() {
        let (dir, _) = three_server_dir();
        let mut p = Placement::round_robin(2);
        assert_eq!(p.place(&dir.loads()), ["node-1", "node-2"]);
        assert_eq!(p.place(&dir.loads()), ["node-2", "node-3"]);
        assert_eq!(p.place(&dir.loads()), ["node-3", "node-1"]);
        assert_eq!(p.place(&dir.loads()), ["node-1", "node-2"]);
    }

    #[test]
    fn least_loaded_prefers_uncommitted_servers() {
        let (dir, probes) = three_server_dir();
        probes[0].set(100_000); // heavily committed
        probes[1].set(500_000);
        probes[2].set(900_000); // nearly idle
        let mut p = Placement::least_loaded(2);
        assert_eq!(p.place(&dir.loads()), ["node-3", "node-2"]);
    }

    #[test]
    fn k_is_clamped_to_cluster_size() {
        let (dir, _) = three_server_dir();
        let mut p = Placement::round_robin(5);
        assert_eq!(p.place(&dir.loads()).len(), 3);
        assert!(Placement::round_robin(0).k() == 1, "k=0 is clamped to 1");
        assert!(Placement::least_loaded(1).place(&[]).is_empty());
    }

    #[test]
    fn place_with_overrides_k_per_decision() {
        let (dir, probes) = three_server_dir();
        probes[2].set(900_000);
        probes[1].set(500_000);
        probes[0].set(100_000);
        let mut p = Placement::least_loaded(3);
        // A recording already on one server asks for k-1 = 1 peer.
        assert_eq!(p.place_with(&dir.loads(), 1, &[]), ["node-3"]);
        assert!(p.place_with(&dir.loads(), 0, &[]).is_empty());
        assert_eq!(p.place(&dir.loads()).len(), 3, "configured k unchanged");
    }

    #[test]
    fn place_with_skips_existing_holders_and_draining_servers() {
        let (dir, probes) = three_server_dir();
        probes[2].set(900_000); // the obvious least-loaded pick
        let mut p = Placement::least_loaded(2);
        // Growing a replica set never re-selects a holder…
        let holders = vec!["node-3".to_string()];
        assert_eq!(p.place_with(&dir.loads(), 1, &holders), ["node-1"]);
        // …and never selects a draining server, under either strategy.
        assert!(dir.set_draining("node-1", true));
        assert_eq!(p.place_with(&dir.loads(), 1, &holders), ["node-2"]);
        let mut rr = Placement::round_robin(3);
        assert_eq!(rr.place(&dir.loads()), ["node-2", "node-3"]);
        // Everything excluded: nothing to place on.
        assert!(dir.set_draining("node-2", true));
        assert!(p.place_with(&dir.loads(), 1, &holders).is_empty());
    }

    #[test]
    fn capacity_ties_break_on_streams_then_cache_then_name() {
        let (dir, probes) = three_server_dir();
        // Equal availability everywhere; node-2's cache hits more.
        probes[1].set_hit(800);
        let mut p = Placement::least_loaded(1);
        assert_eq!(p.place(&dir.loads()), ["node-2"]);
        // Full tie: lexicographic location order, not registration
        // order — re-registering in a different order changes nothing.
        probes[1].set_hit(0);
        let reversed = ReplicaDirectory::new();
        for (i, probe) in probes.iter().enumerate().rev() {
            reversed.register(format!("node-{}", i + 1), probe.clone());
        }
        assert_eq!(p.place(&reversed.loads()), ["node-1"]);
    }

    #[test]
    fn draining_servers_drop_out_of_routing_until_reregistered() {
        let (dir, _) = three_server_dir();
        let replicas: Vec<String> = vec!["node-1".into(), "node-2".into()];
        assert!(dir.set_draining("node-1", true));
        assert!(dir.is_draining("node-1"));
        let order: Vec<String> = dir.route(&replicas).into_iter().map(|(l, _)| l).collect();
        assert_eq!(order, ["node-2"], "draining replica receives no stream");
        // Deregistration removes it entirely; stale names route past it.
        let probe = dir.deregister("node-1").expect("was registered");
        assert_eq!(dir.len(), 2);
        assert!(!dir.is_draining("node-1"));
        assert!(!dir.set_draining("node-1", true), "unknown location");
        // Re-registering puts it back in service with a clean flag.
        dir.register("node-1", probe);
        assert!(!dir.is_draining("node-1"));
        assert_eq!(dir.route(&replicas).len(), 2);
    }

    #[test]
    fn crashed_servers_are_skipped_by_routing_and_placement() {
        // Regression: `route_by` used to filter only draining servers,
        // so a crashed replica was retried (and timed out) before the
        // caller's 503 fallback. A crashed location must drop out of
        // route order, placement, and candidate lists immediately.
        let (dir, probes) = three_server_dir();
        probes[0].set(900_000); // crashed node would otherwise win
        let replicas: Vec<String> = vec!["node-1".into(), "node-2".into(), "node-3".into()];
        assert!(dir.set_crashed("node-1", true));
        assert!(dir.is_crashed("node-1"));
        let order: Vec<String> = dir.route(&replicas).into_iter().map(|(l, _)| l).collect();
        assert_eq!(order, ["node-2", "node-3"], "crashed replica never routed");
        // Placement never selects a crashed server either.
        let mut p = Placement::least_loaded(3);
        assert_eq!(p.place(&dir.loads()), ["node-2", "node-3"]);
        // Re-registration (recovery) puts it back in service.
        let probe = dir.get("node-1").unwrap();
        dir.register("node-1", probe);
        assert!(!dir.is_crashed("node-1"));
        assert_eq!(dir.route(&replicas).len(), 3);
        assert!(!dir.set_crashed("node-9", true), "unknown location");
    }

    #[test]
    fn route_orders_by_available_bandwidth() {
        let (dir, probes) = three_server_dir();
        probes[0].set(200_000);
        probes[1].set(800_000);
        probes[2].set(500_000);
        let replicas: Vec<String> = vec!["node-1".into(), "node-2".into(), "node-3".into()];
        let order: Vec<String> = dir.route(&replicas).into_iter().map(|(l, _)| l).collect();
        assert_eq!(order, ["node-2", "node-3", "node-1"]);
    }

    #[test]
    fn route_by_breaks_bandwidth_ties_by_affinity() {
        let (dir, probes) = three_server_dir();
        let replicas: Vec<String> = vec!["node-1".into(), "node-2".into(), "node-3".into()];
        // All tied on availability: the preferred replica jumps the
        // replica-list order…
        let order: Vec<String> = dir
            .route_by(&replicas, |p| Rc::ptr_eq(&p.0, &probes[2].0))
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(order, ["node-3", "node-1", "node-2"]);
        // …but never outranks strictly more uncommitted bandwidth.
        probes[0].set(900_000);
        probes[1].set(100_000);
        probes[2].set(100_000);
        let order: Vec<String> = dir
            .route_by(&replicas, |p| Rc::ptr_eq(&p.0, &probes[2].0))
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(order, ["node-1", "node-3", "node-2"]);
    }

    #[test]
    fn route_skips_unknown_locations_and_keeps_tie_order() {
        let (dir, _) = three_server_dir();
        let replicas: Vec<String> = vec![
            "node-9".into(),
            "node-2".into(),
            "node-1".into(),
            "node-3".into(),
        ];
        let order: Vec<String> = dir.route(&replicas).into_iter().map(|(l, _)| l).collect();
        // All ties at full availability: replica-list order survives,
        // the unregistered node-9 is dropped.
        assert_eq!(order, ["node-2", "node-1", "node-3"]);
        assert!(dir.route(&["node-9".to_string()]).is_empty());
    }

    #[test]
    fn register_replaces_existing_location() {
        let dir = ReplicaDirectory::new();
        let a = FakeProbe::new(1);
        let b = FakeProbe::new(2);
        dir.register("node-1", a);
        dir.register("node-1", b);
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.get("node-1").unwrap().load().available_bps, 2);
        assert!(dir.get("node-7").is_none());
        assert_eq!(dir.locations(), ["node-1"]);
    }

    #[test]
    fn block_store_probe_tracks_admission() {
        let store = store::BlockStore::new(store::StoreConfig::default());
        let snap = store.load();
        assert_eq!(snap.committed_bps, 0);
        assert_eq!(snap.available_bps, snap.capacity_bps);
        assert!(snap.capacity_bps > 0);
    }
}
