//! `cluster` — replica placement and load-aware stream routing for a
//! multi-server movie service.
//!
//! After the storage subsystem (`store`) made disk bandwidth a
//! first-class, admission-controlled resource *within* one server,
//! this crate scales the service *across* servers: a published movie
//! is placed on K replica servers ([`Placement`]), the directory entry
//! carries every replica's location, and each `SelectMovie` is routed
//! to the replica whose admission controller reports the most
//! uncommitted bandwidth ([`ReplicaDirectory::route`]) — falling over
//! to the next replica when the first rejects, so a single popular
//! title no longer saturates one machine while its peers idle.
//!
//! The crate is deliberately independent of the protocol layer: it
//! reasons about *locations* (opaque strings such as `"node-3"`) and
//! *load probes* ([`LoadProbe`], implemented here for
//! `Arc<store::BlockStore>` and wired to the stream providers by the
//! `mcam` crate), so the same policies drive the live world, the unit
//! tests, and the `store_throughput` cluster benchmark.
//!
//! # Examples
//!
//! ```
//! use cluster::{Placement, ReplicaDirectory};
//! use store::{BlockStore, StoreConfig};
//!
//! let dir = ReplicaDirectory::new();
//! for name in ["node-1", "node-2", "node-3"] {
//!     dir.register(name, BlockStore::new(StoreConfig::default()));
//! }
//! let mut placement = Placement::round_robin(2);
//! let replicas = placement.place(&dir.loads());
//! assert_eq!(replicas, vec!["node-1".to_string(), "node-2".to_string()]);
//! // Route a select: candidates ordered most-available-first.
//! let order = dir.route(&replicas);
//! assert_eq!(order.len(), 2);
//! ```

#![warn(missing_docs)]

use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// A point-in-time load snapshot of one server's storage subsystem,
/// as reported by its admission controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSnapshot {
    /// Bandwidth still uncommitted, bits/second.
    pub available_bps: u64,
    /// Bandwidth committed to admitted streams, bits/second.
    pub committed_bps: u64,
    /// Total deliverable bandwidth, bits/second.
    pub capacity_bps: u64,
    /// Streams currently open.
    pub open_streams: usize,
}

/// Anything that can report the storage load of one server machine.
pub trait LoadProbe {
    /// The server's current load.
    fn load(&self) -> LoadSnapshot;
}

impl<T: LoadProbe + ?Sized> LoadProbe for Arc<T> {
    fn load(&self) -> LoadSnapshot {
        (**self).load()
    }
}

impl LoadProbe for store::BlockStore {
    fn load(&self) -> LoadSnapshot {
        let stats = self.stats();
        LoadSnapshot {
            available_bps: stats.capacity_bps.saturating_sub(stats.committed_bps),
            committed_bps: stats.committed_bps,
            capacity_bps: stats.capacity_bps,
            open_streams: stats.open_streams,
        }
    }
}

/// A named server's load, as returned by [`ReplicaDirectory::loads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerLoad {
    /// The server's location name (e.g. `"node-3"`).
    pub location: String,
    /// Its load snapshot.
    pub load: LoadSnapshot,
}

/// How [`Placement`] picks the K replica servers of a new movie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Successive movies start on successive servers, wrapping around:
    /// even load for a uniform catalogue, no load feedback needed.
    #[default]
    RoundRobin,
    /// Pick the servers with the least committed bandwidth right now
    /// (ties broken by fewer open streams, then registration order).
    LeastLoaded,
}

/// Replica-placement policy: assigns each published movie to K
/// servers.
#[derive(Debug, Clone)]
pub struct Placement {
    strategy: PlacementStrategy,
    k: usize,
    cursor: usize,
}

impl Placement {
    /// A placement policy with `k` replicas per movie.
    pub fn new(strategy: PlacementStrategy, k: usize) -> Self {
        Placement {
            strategy,
            k: k.max(1),
            cursor: 0,
        }
    }

    /// Round-robin placement with `k` replicas per movie.
    pub fn round_robin(k: usize) -> Self {
        Self::new(PlacementStrategy::RoundRobin, k)
    }

    /// Least-loaded placement with `k` replicas per movie.
    pub fn least_loaded(k: usize) -> Self {
        Self::new(PlacementStrategy::LeastLoaded, k)
    }

    /// Replicas per movie.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured strategy.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Chooses the replica locations for one new movie from the
    /// cluster's current loads. Returns at most `k` distinct
    /// locations (fewer when the cluster is smaller than `k`), in
    /// the order the replicas should be listed in the directory.
    pub fn place(&mut self, loads: &[ServerLoad]) -> Vec<String> {
        self.place_with(loads, self.k)
    }

    /// Like [`Placement::place`] but with an explicit replica count,
    /// overriding the policy's configured `k` for this one decision —
    /// the record path uses it to pick `k - 1` peers for a recording
    /// that already lives on the recording server.
    pub fn place_with(&mut self, loads: &[ServerLoad], k: usize) -> Vec<String> {
        if loads.is_empty() || k == 0 {
            return Vec::new();
        }
        let k = k.min(loads.len());
        match self.strategy {
            PlacementStrategy::RoundRobin => {
                let start = self.cursor % loads.len();
                self.cursor = self.cursor.wrapping_add(1);
                (0..k)
                    .map(|i| loads[(start + i) % loads.len()].location.clone())
                    .collect()
            }
            PlacementStrategy::LeastLoaded => {
                let mut by_load: Vec<(usize, &ServerLoad)> = loads.iter().enumerate().collect();
                by_load.sort_by_key(|(idx, s)| (s.load.committed_bps, s.load.open_streams, *idx));
                by_load
                    .into_iter()
                    .take(k)
                    .map(|(_, s)| s.location.clone())
                    .collect()
            }
        }
    }
}

/// The cluster-wide registry of server locations and their load
/// probes: the layer between the movie directory (which stores
/// replica *names*) and the per-server storage stacks (which answer
/// load queries and host streams).
pub struct ReplicaDirectory<P> {
    servers: RwLock<Vec<(String, P)>>,
}

impl<P> fmt::Debug for ReplicaDirectory<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let servers = self.servers.read();
        f.debug_struct("ReplicaDirectory")
            .field(
                "servers",
                &servers.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<P> Default for ReplicaDirectory<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> ReplicaDirectory<P> {
    /// An empty directory.
    pub fn new() -> Self {
        ReplicaDirectory {
            servers: RwLock::new(Vec::new()),
        }
    }

    /// Number of registered servers.
    pub fn len(&self) -> usize {
        self.servers.read().len()
    }

    /// True when no server is registered.
    pub fn is_empty(&self) -> bool {
        self.servers.read().is_empty()
    }

    /// All registered locations, in registration order.
    pub fn locations(&self) -> Vec<String> {
        self.servers.read().iter().map(|(l, _)| l.clone()).collect()
    }
}

impl<P: LoadProbe + Clone> ReplicaDirectory<P> {
    /// Registers (or replaces) a server under `location`.
    pub fn register(&self, location: impl Into<String>, probe: P) {
        let location = location.into();
        let mut servers = self.servers.write();
        match servers.iter_mut().find(|(l, _)| *l == location) {
            Some(slot) => slot.1 = probe,
            None => servers.push((location, probe)),
        }
    }

    /// The probe registered under `location`.
    pub fn get(&self, location: &str) -> Option<P> {
        self.servers
            .read()
            .iter()
            .find(|(l, _)| l == location)
            .map(|(_, p)| p.clone())
    }

    /// The first registered probe satisfying `pred`, in registration
    /// order (e.g. the provider hosting a given stream).
    pub fn find(&self, mut pred: impl FnMut(&P) -> bool) -> Option<P> {
        self.servers
            .read()
            .iter()
            .find(|(_, p)| pred(p))
            .map(|(_, p)| p.clone())
    }

    /// Current load of every registered server, in registration order.
    pub fn loads(&self) -> Vec<ServerLoad> {
        self.servers
            .read()
            .iter()
            .map(|(location, probe)| ServerLoad {
                location: location.clone(),
                load: probe.load(),
            })
            .collect()
    }

    /// Orders `replicas` for a stream-open attempt: registered
    /// replicas sorted by most uncommitted `available_bps` first
    /// (ties keep the replica-list order), each paired with its
    /// probe. Locations not registered here are skipped — the caller
    /// falls back to local service when nothing matches.
    pub fn route(&self, replicas: &[String]) -> Vec<(String, P)> {
        let servers = self.servers.read();
        let mut candidates: Vec<(usize, u64, String, P)> = replicas
            .iter()
            .enumerate()
            .filter_map(|(order, location)| {
                servers
                    .iter()
                    .find(|(l, _)| l == location)
                    .map(|(l, p)| (order, p.load().available_bps, l.clone(), p.clone()))
            })
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        candidates.into_iter().map(|(_, _, l, p)| (l, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A probe whose availability the test can dial.
    #[derive(Clone)]
    struct FakeProbe(Rc<Cell<u64>>);

    impl FakeProbe {
        fn new(available: u64) -> Self {
            FakeProbe(Rc::new(Cell::new(available)))
        }
        fn set(&self, available: u64) {
            self.0.set(available);
        }
    }

    impl LoadProbe for FakeProbe {
        fn load(&self) -> LoadSnapshot {
            LoadSnapshot {
                available_bps: self.0.get(),
                committed_bps: 1_000_000 - self.0.get().min(1_000_000),
                capacity_bps: 1_000_000,
                open_streams: 0,
            }
        }
    }

    fn three_server_dir() -> (ReplicaDirectory<FakeProbe>, Vec<FakeProbe>) {
        let dir = ReplicaDirectory::new();
        let probes: Vec<FakeProbe> = (0..3).map(|_| FakeProbe::new(1_000_000)).collect();
        for (i, p) in probes.iter().enumerate() {
            dir.register(format!("node-{}", i + 1), p.clone());
        }
        (dir, probes)
    }

    #[test]
    fn round_robin_rotates_start_server() {
        let (dir, _) = three_server_dir();
        let mut p = Placement::round_robin(2);
        assert_eq!(p.place(&dir.loads()), ["node-1", "node-2"]);
        assert_eq!(p.place(&dir.loads()), ["node-2", "node-3"]);
        assert_eq!(p.place(&dir.loads()), ["node-3", "node-1"]);
        assert_eq!(p.place(&dir.loads()), ["node-1", "node-2"]);
    }

    #[test]
    fn least_loaded_prefers_uncommitted_servers() {
        let (dir, probes) = three_server_dir();
        probes[0].set(100_000); // heavily committed
        probes[1].set(500_000);
        probes[2].set(900_000); // nearly idle
        let mut p = Placement::least_loaded(2);
        assert_eq!(p.place(&dir.loads()), ["node-3", "node-2"]);
    }

    #[test]
    fn k_is_clamped_to_cluster_size() {
        let (dir, _) = three_server_dir();
        let mut p = Placement::round_robin(5);
        assert_eq!(p.place(&dir.loads()).len(), 3);
        assert!(Placement::round_robin(0).k() == 1, "k=0 is clamped to 1");
        assert!(Placement::least_loaded(1).place(&[]).is_empty());
    }

    #[test]
    fn place_with_overrides_k_per_decision() {
        let (dir, probes) = three_server_dir();
        probes[2].set(900_000);
        probes[1].set(500_000);
        probes[0].set(100_000);
        let mut p = Placement::least_loaded(3);
        // A recording already on one server asks for k-1 = 1 peer.
        assert_eq!(p.place_with(&dir.loads(), 1), ["node-3"]);
        assert!(p.place_with(&dir.loads(), 0).is_empty());
        assert_eq!(p.place(&dir.loads()).len(), 3, "configured k unchanged");
    }

    #[test]
    fn route_orders_by_available_bandwidth() {
        let (dir, probes) = three_server_dir();
        probes[0].set(200_000);
        probes[1].set(800_000);
        probes[2].set(500_000);
        let replicas: Vec<String> = vec!["node-1".into(), "node-2".into(), "node-3".into()];
        let order: Vec<String> = dir.route(&replicas).into_iter().map(|(l, _)| l).collect();
        assert_eq!(order, ["node-2", "node-3", "node-1"]);
    }

    #[test]
    fn route_skips_unknown_locations_and_keeps_tie_order() {
        let (dir, _) = three_server_dir();
        let replicas: Vec<String> = vec![
            "node-9".into(),
            "node-2".into(),
            "node-1".into(),
            "node-3".into(),
        ];
        let order: Vec<String> = dir.route(&replicas).into_iter().map(|(l, _)| l).collect();
        // All ties at full availability: replica-list order survives,
        // the unregistered node-9 is dropped.
        assert_eq!(order, ["node-2", "node-1", "node-3"]);
        assert!(dir.route(&["node-9".to_string()]).is_empty());
    }

    #[test]
    fn register_replaces_existing_location() {
        let dir = ReplicaDirectory::new();
        let a = FakeProbe::new(1);
        let b = FakeProbe::new(2);
        dir.register("node-1", a);
        dir.register("node-1", b);
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.get("node-1").unwrap().load().available_bps, 2);
        assert!(dir.get("node-7").is_none());
        assert_eq!(dir.locations(), ["node-1"]);
    }

    #[test]
    fn block_store_probe_tracks_admission() {
        let store = store::BlockStore::new(store::StoreConfig::default());
        let snap = store.load();
        assert_eq!(snap.committed_bps, 0);
        assert_eq!(snap.available_bps, snap.capacity_bps);
        assert!(snap.capacity_bps > 0);
    }
}
