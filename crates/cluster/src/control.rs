//! Control-connection balancing: which server should *own* a client's
//! control association.
//!
//! Stream routing (PR 2) and rebalancing (PR 4) spread the
//! continuous-media load, but every control association still
//! terminated on whatever server the client first dialed — the
//! single-machine bottleneck the paper's SPS/SUA split was supposed
//! to avoid. The [`ControlBalancer`] closes that gap: servers account
//! their live control associations here, and an incoming association
//! (or a `SelectMovie` on a draining server) consults
//! [`ControlBalancer::refer_target`] to decide whether the client
//! should be *referred* to a less-loaded cluster member instead. The
//! decision is made from the same [`ServerLoad`] snapshots the stream
//! router and the rebalance controller use, so a draining server is
//! never named and load ties break on uncommitted disk bandwidth.
//!
//! The balancer is policy only: it never touches connections itself.
//! The MCAM layer turns a `Some(target)` into a `ReferralRsp` PDU and
//! the client's root module re-dials.

use crate::ServerLoad;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cluster-wide accounting of control associations and the referral
/// policy over them. One per cluster, shared by all member servers.
#[derive(Debug, Default)]
pub struct ControlBalancer {
    /// Live control associations per location.
    counts: RwLock<HashMap<String, usize>>,
    /// Operator steering: a pinned source refers every capable client
    /// to the pinned target, liveness unchecked.
    pins: RwLock<HashMap<String, String>>,
    /// Referral decisions handed out ([`ControlBalancer::refer_target`]
    /// returning `Some`).
    referrals: AtomicU64,
}

impl ControlBalancer {
    /// An empty balancer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted control association at `location`.
    pub fn connected(&self, location: &str) {
        *self.counts.write().entry(location.to_string()).or_insert(0) += 1;
    }

    /// Records the end of a control association at `location`.
    pub fn disconnected(&self, location: &str) {
        if let Some(n) = self.counts.write().get_mut(location) {
            *n = n.saturating_sub(1);
        }
    }

    /// Live control associations at `location`.
    pub fn connections(&self, location: &str) -> usize {
        self.counts.read().get(location).copied().unwrap_or(0)
    }

    /// Per-location association counts, sorted by location name.
    pub fn snapshot(&self) -> Vec<(String, usize)> {
        let mut all: Vec<(String, usize)> = self
            .counts
            .read()
            .iter()
            .map(|(l, n)| (l.clone(), *n))
            .collect();
        all.sort();
        all
    }

    /// Referrals issued so far.
    pub fn referrals_issued(&self) -> u64 {
        self.referrals.load(Ordering::Relaxed)
    }

    /// Pins `from` so that every capable client it would serve is
    /// referred to `to` instead — operator steering for maintenance
    /// (empty a machine ahead of a drain) and for exercising referral
    /// failure paths (the target's liveness is deliberately not
    /// checked here; the *client* discovers a dead or draining target
    /// and falls back across the candidate list).
    pub fn pin(&self, from: &str, to: &str) {
        self.pins.write().insert(from.to_string(), to.to_string());
    }

    /// Removes a pin set by [`ControlBalancer::pin`].
    pub fn unpin(&self, from: &str) {
        self.pins.write().remove(from);
    }

    /// Whether `location` is currently pinned away.
    pub fn is_pinned(&self, location: &str) -> bool {
        self.pins.read().contains_key(location)
    }

    /// Decides whether a server at `local` should refer an incoming
    /// control association elsewhere, given the cluster's current
    /// loads. Returns the target location, or `None` when the client
    /// should be served locally.
    ///
    /// Policy, in order:
    /// 1. a pinned source always refers to its pinned target;
    /// 2. a draining `local` — or one absent from `loads` entirely,
    ///    i.e. already decommissioned — refers to the live server
    ///    with the fewest control associations (ties: most available
    ///    disk bandwidth, then location name — fully deterministic);
    /// 3. otherwise refer only when `local` holds strictly more
    ///    associations than that least-connected live server, so
    ///    connections converge to within one of each other and a
    ///    referred client is never bounced onward (its new home is
    ///    the minimum and cannot immediately exceed another member).
    pub fn refer_target(&self, local: &str, loads: &[ServerLoad]) -> Option<String> {
        if let Some(to) = self.pins.read().get(local) {
            self.referrals.fetch_add(1, Ordering::Relaxed);
            return Some(to.clone());
        }
        let counts = self.counts.read();
        let count = |loc: &str| counts.get(loc).copied().unwrap_or(0);
        let best = loads
            .iter()
            .filter(|s| !s.draining && !s.crashed && s.location != local)
            .min_by_key(|s| {
                (
                    count(&s.location),
                    std::cmp::Reverse(s.load.available_bps),
                    s.location.clone(),
                )
            })?;
        let local_out_of_service = loads
            .iter()
            .find(|s| s.location == local)
            .is_none_or(|s| s.draining || s.crashed);
        if local_out_of_service || count(local) > count(&best.location) {
            self.referrals.fetch_add(1, Ordering::Relaxed);
            Some(best.location.clone())
        } else {
            None
        }
    }

    /// The candidate list a referral carries: every live server with
    /// its uncommitted disk bandwidth, least-connected first (same
    /// ordering as [`ControlBalancer::refer_target`]), so a client
    /// whose referral target died can fall back in a sensible order.
    pub fn candidates(&self, loads: &[ServerLoad]) -> Vec<(String, u64)> {
        let counts = self.counts.read();
        let count = |loc: &str| counts.get(loc).copied().unwrap_or(0);
        let mut live: Vec<&ServerLoad> =
            loads.iter().filter(|s| !s.draining && !s.crashed).collect();
        live.sort_by_key(|s| {
            (
                count(&s.location),
                std::cmp::Reverse(s.load.available_bps),
                s.location.clone(),
            )
        });
        live.into_iter()
            .map(|s| (s.location.clone(), s.load.available_bps))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoadSnapshot;

    fn loads(specs: &[(&str, u64, bool)]) -> Vec<ServerLoad> {
        specs
            .iter()
            .map(|(name, available, draining)| ServerLoad {
                location: (*name).to_string(),
                load: LoadSnapshot {
                    available_bps: *available,
                    committed_bps: 0,
                    capacity_bps: *available,
                    open_streams: 0,
                    cache_hit_permille: 0,
                },
                draining: *draining,
                crashed: false,
            })
            .collect()
    }

    #[test]
    fn crashed_servers_are_never_referral_targets() {
        let b = ControlBalancer::new();
        let mut l = loads(&[
            ("node-1", 10, false),
            ("node-2", 99, false),
            ("node-3", 10, false),
        ]);
        l[1].crashed = true;
        b.connected("node-1");
        // node-2 would win on bandwidth, but it is dead: the referral
        // goes to the live node-3 and the candidate list omits node-2.
        assert_eq!(b.refer_target("node-1", &l), Some("node-3".into()));
        assert!(!b.candidates(&l).iter().any(|(loc, _)| loc == "node-2"));
        // A crashed local always refers away, like a draining one.
        l[0].crashed = true;
        assert_eq!(b.refer_target("node-1", &l), Some("node-3".into()));
    }

    #[test]
    fn refers_only_when_strictly_more_loaded() {
        let b = ControlBalancer::new();
        let l = loads(&[("node-1", 10, false), ("node-2", 10, false)]);
        assert_eq!(b.refer_target("node-1", &l), None, "all counts equal");
        b.connected("node-1");
        assert_eq!(b.refer_target("node-1", &l), Some("node-2".into()));
        // The referred client lands on node-2: now balanced again.
        b.connected("node-2");
        assert_eq!(b.refer_target("node-1", &l), None);
        assert_eq!(b.refer_target("node-2", &l), None);
        assert_eq!(b.referrals_issued(), 1);
    }

    #[test]
    fn sequential_arrivals_spread_within_one() {
        let b = ControlBalancer::new();
        let l = loads(&[
            ("node-1", 10, false),
            ("node-2", 10, false),
            ("node-3", 10, false),
            ("node-4", 10, false),
        ]);
        // Twelve clients all dial node-1; each is referred (or kept)
        // exactly the way the live system would.
        for _ in 0..12 {
            match b.refer_target("node-1", &l) {
                Some(t) => b.connected(&t),
                None => b.connected("node-1"),
            }
        }
        let counts = b.snapshot();
        assert_eq!(counts.iter().map(|(_, n)| n).sum::<usize>(), 12);
        for (loc, n) in &counts {
            assert!(*n == 3, "{loc} holds {n}, expected a perfect 3/3/3/3");
        }
    }

    #[test]
    fn draining_local_always_refers_and_is_never_a_target() {
        let b = ControlBalancer::new();
        let l = loads(&[
            ("node-1", 10, true),
            ("node-2", 10, false),
            ("node-3", 99, false),
        ]);
        // Equal counts: a live server would keep the client, the
        // draining one must not. Ties break on available bandwidth.
        assert_eq!(b.refer_target("node-1", &l), Some("node-3".into()));
        assert_eq!(b.refer_target("node-2", &l), None);
        assert!(!b.candidates(&l).iter().any(|(loc, _)| loc == "node-1"));
    }

    #[test]
    fn no_live_peer_means_no_referral() {
        let b = ControlBalancer::new();
        let l = loads(&[("node-1", 10, true)]);
        assert_eq!(
            b.refer_target("node-1", &l),
            None,
            "a draining server with nowhere to send clients keeps serving them"
        );
        assert_eq!(b.refer_target("node-1", &[]), None);
    }

    #[test]
    fn pins_override_policy_and_liveness() {
        let b = ControlBalancer::new();
        let l = loads(&[("node-1", 10, false), ("node-2", 10, false)]);
        b.pin("node-1", "node-99"); // not even a cluster member
        assert!(b.is_pinned("node-1"));
        assert_eq!(b.refer_target("node-1", &l), Some("node-99".into()));
        b.unpin("node-1");
        assert_eq!(b.refer_target("node-1", &l), None);
    }

    #[test]
    fn candidates_order_by_count_then_bandwidth() {
        let b = ControlBalancer::new();
        let l = loads(&[
            ("node-1", 50, false),
            ("node-2", 10, false),
            ("node-3", 99, false),
        ]);
        b.connected("node-1");
        assert_eq!(
            b.candidates(&l),
            vec![
                ("node-3".to_string(), 99),
                ("node-2".to_string(), 10),
                ("node-1".to_string(), 50),
            ]
        );
        // Disconnect accounting floors at zero, even if unbalanced.
        b.disconnected("node-1");
        b.disconnected("node-1");
        b.disconnected("node-7");
        assert_eq!(b.connections("node-1"), 0);
    }
}
