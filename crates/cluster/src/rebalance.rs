//! The cluster control plane: dynamic replica rebalancing, migration,
//! and server drain.
//!
//! The paper's architecture fixes a movie's replica set at publish
//! time, so a hot title saturates its K servers while the rest of the
//! cluster idles, and a server can never be taken out of service
//! without orphaning its titles. The [`RebalanceController`] closes
//! both gaps: it owns the whole replica lifecycle —
//!
//! * **place** — the initial K-replica placement of a published or
//!   recorded title (the policy that used to be called ad hoc from
//!   the publish and record paths);
//! * **grow** — when periodic [`ServerLoad`] samples show every
//!   holder of a title too saturated to admit one more stream while
//!   idle capacity exists elsewhere, schedule a copy of the title to
//!   the least-loaded non-holder;
//! * **shrink** — when a grown title's holders all run far below
//!   saturation again, trim the surplus replica from the routing set
//!   (the blocks stay on disk; only the directory stops advertising
//!   them);
//! * **migrate** — every copy is a *real store workload*: the target
//!   reserves the copy's bandwidth in the same admission controller
//!   playback draws on and writes blocks through the allocator and
//!   the elevator/SCAN queues at the reserved pace
//!   ([`MigrationHost::begin_copy`], backed by
//!   `BlockStore::begin_import`), so migrations visibly compete with
//!   streams instead of teleporting data;
//! * **drain** — [`RebalanceController::drain`] migrates every
//!   sole-copy title off a server, stops new streams from routing to
//!   it (the registry skips draining servers), and decommissions it
//!   once its last stream closes, leaving zero under-replicated
//!   titles behind;
//! * **repair** — when a server *crashes* (marked via
//!   [`ReplicaDirectory::set_crashed`]) every title it held is
//!   suddenly under-replicated; the repair pass schedules copies back
//!   up to K from a surviving holder, bypassing the grow pass's
//!   saturation gate and retry budget — re-replication is
//!   load-bearing, not an optimisation.
//!
//! On every completed copy the controller pushes the title's new
//! replica list through its *directory sink*, so a `SelectMovie`
//! looked up after the migration immediately routes to the new copy.
//!
//! The controller is generic over the per-server handle `P` (an
//! `Arc<BlockStore>` in the benches and unit tests, an
//! `Arc<StreamProviderSystem>` in the live world) and is driven by
//! calling [`RebalanceController::tick`] with the netsim clock — the
//! world's driver does this between scheduler passes.

use crate::{least_loaded_key, LoadProbe, Placement, ReplicaDirectory, ServerLoad};
use journal::{kind, EventKind, Journal};
use mtp::MovieSource;
use netsim::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A migration copy could not be admitted on the target server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRejected {
    /// Bandwidth the copy wanted to reserve, bits/second.
    pub demanded_bps: u64,
    /// Bandwidth still uncommitted on the target, bits/second.
    pub available_bps: u64,
}

/// A server that can receive replica copies: the storage-facing half
/// of the control plane. Paced copies (`begin_copy` …) reserve
/// admission bandwidth and take real disk time; `import_bulk` is the
/// record-replication fan-out — an immediate background copy, written
/// through the same allocator and disk queues but not
/// admission-charged (a recording already paid for its bandwidth
/// while capturing).
pub trait MigrationHost {
    /// Starts an admission-charged, paced copy of `source` onto this
    /// server, reserving `reserve_bps`. Returns an opaque copy token.
    ///
    /// # Errors
    ///
    /// [`CopyRejected`] when the reservation does not fit next to the
    /// streams already admitted.
    fn begin_copy(
        &self,
        source: &MovieSource,
        reserve_bps: u64,
        now: SimTime,
    ) -> Result<u64, CopyRejected>;

    /// Whether the copy has issued and persisted every block.
    fn copy_done(&self, token: u64) -> bool;

    /// Finalizes a durable copy: the title becomes streamable from
    /// this server and the reservation is released. Returns false if
    /// the copy could not be finalized.
    fn finish_copy(&self, token: u64) -> bool;

    /// Abandons a copy, releasing its reservation and blocks.
    fn abort_copy(&self, token: u64);

    /// Immediate bulk copy (record replication fan-out).
    fn import_bulk(&self, source: &MovieSource, now: SimTime);
}

impl<T: MigrationHost + ?Sized> MigrationHost for Arc<T> {
    fn begin_copy(
        &self,
        source: &MovieSource,
        reserve_bps: u64,
        now: SimTime,
    ) -> Result<u64, CopyRejected> {
        (**self).begin_copy(source, reserve_bps, now)
    }
    fn copy_done(&self, token: u64) -> bool {
        (**self).copy_done(token)
    }
    fn finish_copy(&self, token: u64) -> bool {
        (**self).finish_copy(token)
    }
    fn abort_copy(&self, token: u64) {
        (**self).abort_copy(token)
    }
    fn import_bulk(&self, source: &MovieSource, now: SimTime) {
        (**self).import_bulk(source, now)
    }
}

impl MigrationHost for store::BlockStore {
    fn begin_copy(
        &self,
        source: &MovieSource,
        reserve_bps: u64,
        now: SimTime,
    ) -> Result<u64, CopyRejected> {
        match self.begin_import(source, reserve_bps, now) {
            Ok(id) => Ok(u64::from(id)),
            Err(store::StoreError::AdmissionRejected {
                demanded_bps,
                available_bps,
            }) => Err(CopyRejected {
                demanded_bps,
                available_bps,
            }),
            Err(_) => Err(CopyRejected {
                demanded_bps: reserve_bps,
                available_bps: 0,
            }),
        }
    }
    fn copy_done(&self, token: u64) -> bool {
        self.import_durable(token as u32) == Some(true)
    }
    fn finish_copy(&self, token: u64) -> bool {
        self.finish_import(token as u32).is_ok()
    }
    fn abort_copy(&self, token: u64) {
        self.abort_import(token as u32);
    }
    fn import_bulk(&self, source: &MovieSource, now: SimTime) {
        self.import_movie(source, now);
    }
}

/// Why a server could not be drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrainError {
    /// The location is not registered in the cluster.
    UnknownServer(String),
    /// The location is already draining.
    AlreadyDraining(String),
    /// The server is the last holder of this title and no other
    /// server exists to migrate it to: draining it would lose the
    /// title.
    LastHolder(String),
}

impl fmt::Display for DrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainError::UnknownServer(l) => write!(f, "unknown server {l}"),
            DrainError::AlreadyDraining(l) => write!(f, "{l} is already draining"),
            DrainError::LastHolder(t) => {
                write!(
                    f,
                    "refusing drain: last holder of title {t:?} with no migration target"
                )
            }
        }
    }
}
impl std::error::Error for DrainError {}

/// Tuning knobs of the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceConfig {
    /// How often the controller samples cluster loads for grow/shrink
    /// decisions (migration completions and drains are polled on
    /// every tick).
    pub sample_interval: SimDuration,
    /// Most copies in flight at once across the cluster.
    pub max_concurrent: usize,
    /// Copy bandwidth as a percentage of the title's mean bitrate:
    /// the reservation charged on the target and the pace the blocks
    /// are written at. 100 makes a migration compete exactly like one
    /// viewer of the title; higher trades more displacement for a
    /// faster copy.
    pub copy_speed_pct: u32,
    /// Consecutive samples a copy may fail admission (or find no
    /// eligible target) before the controller stops retrying the
    /// title's grow. Drain migrations retry indefinitely — the drain
    /// cannot complete without them.
    pub max_copy_retries: u32,
    /// Shrink a grown title once every holder's committed bandwidth
    /// falls below this percentage of its capacity.
    pub shrink_pct: u32,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            sample_interval: SimDuration::from_millis(100),
            max_concurrent: 2,
            copy_speed_pct: 200,
            max_copy_retries: 64,
            shrink_pct: 25,
        }
    }
}

/// Counter view over the controller's journal chain, surfaced through
/// `ClusterHandle::rebalance_stats` in the live world. Derived from
/// the event journal — the journal is the source of truth, this is a
/// convenience summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Load-sampling passes taken.
    pub samples: u64,
    /// Grow copies started (hot title onto an idle server).
    pub grows_started: u64,
    /// Drain copies started (sole-copy title off a draining server).
    pub drain_copies_started: u64,
    /// Copies finished and folded into the replica set.
    pub copies_completed: u64,
    /// Copies abandoned (target deregistered or started draining
    /// mid-flight; reservation and blocks released).
    pub copies_aborted: u64,
    /// Copy attempts refused by target admission or lacking any
    /// eligible target (each is retried on a later sample).
    pub copy_rejections: u64,
    /// Surplus replicas trimmed from cooled-down titles.
    pub shrinks: u64,
    /// Drains accepted.
    pub drains_started: u64,
    /// Drains completed (server decommissioned).
    pub drains_completed: u64,
    /// Replica lists pushed through the directory sink.
    pub directory_updates: u64,
}

/// Callback the controller uses to rewrite a title's replica list in
/// the movie directory after a rebalance. Returns false when the
/// entry could not be updated yet (e.g. the record path has not added
/// it); the controller retries on later ticks.
pub type ReplicaSink = Box<dyn Fn(&str, &[String]) -> bool + Send + Sync>;

/// What a copy was for; a grow is best-effort, a drain copy is
/// load-bearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyReason {
    Grow,
    Drain,
}

struct ActiveCopy<P> {
    title: String,
    target: String,
    token: u64,
    host: P,
    reason: CopyReason,
}

#[derive(Debug, Clone)]
struct TitleRec {
    source: MovieSource,
    replicas: Vec<String>,
    /// Consecutive failed grow attempts; reset when the pressure
    /// clears or a copy lands.
    retries: u32,
    /// The replica list changed and has not reached the directory.
    dirty: bool,
}

struct Inner<P> {
    titles: BTreeMap<String, TitleRec>,
    active: Vec<ActiveCopy<P>>,
    draining: Vec<String>,
    decommissioned: Vec<String>,
    next_sample: Option<SimTime>,
}

/// The cluster control plane: owns replica placement and its
/// evolution over the cluster's lifetime. See the module docs for the
/// lifecycle it drives.
pub struct RebalanceController<P> {
    dir: Arc<ReplicaDirectory<P>>,
    placement: Mutex<Placement>,
    config: RebalanceConfig,
    sink: Option<ReplicaSink>,
    /// Every control-plane step is recorded here under `actor`'s hash
    /// chain; [`RebalanceController::stats`] is derived from it. A
    /// standalone journal (stamped via tick times) is used unless
    /// [`RebalanceController::with_journal`] wires in the shared one.
    journal: Arc<Journal>,
    actor: String,
    inner: Mutex<Inner<P>>,
}

impl<P> fmt::Debug for RebalanceController<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("RebalanceController")
            .field("titles", &inner.titles.len())
            .field("active_copies", &inner.active.len())
            .field("draining", &inner.draining)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<P> RebalanceController<P> {
    /// Counter view derived from the event journal (O(1) per field).
    pub fn stats(&self) -> RebalanceStats {
        let count = |tag| self.journal.count_for(&self.actor, tag);
        RebalanceStats {
            samples: count(kind::REBALANCE_SAMPLE),
            grows_started: count(kind::GROW_STARTED),
            drain_copies_started: count(kind::DRAIN_COPY_STARTED),
            copies_completed: count(kind::COPY_COMPLETED),
            copies_aborted: count(kind::COPY_ABORTED),
            copy_rejections: count(kind::COPY_REJECTED),
            shrinks: count(kind::SHRINK),
            drains_started: count(kind::DRAIN_STARTED),
            drains_completed: count(kind::DRAIN_COMPLETED),
            directory_updates: count(kind::DIRECTORY_UPDATE),
        }
    }
}

impl<P: LoadProbe + MigrationHost + Clone> RebalanceController<P> {
    /// Creates a controller over the cluster registry `dir`, with
    /// `placement` deciding initial replica sets.
    pub fn new(
        dir: Arc<ReplicaDirectory<P>>,
        placement: Placement,
        config: RebalanceConfig,
    ) -> Self {
        RebalanceController {
            dir,
            placement: Mutex::new(placement),
            config,
            sink: None,
            journal: Arc::new(Journal::standalone()),
            actor: "rebalance".to_string(),
            inner: Mutex::new(Inner {
                titles: BTreeMap::new(),
                active: Vec::new(),
                draining: Vec::new(),
                decommissioned: Vec::new(),
                next_sample: None,
            }),
        }
    }

    /// Attaches the directory sink invoked whenever a title's replica
    /// list changes.
    pub fn with_sink(mut self, sink: ReplicaSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Records control-plane events into `journal` under `actor`'s
    /// hash chain instead of the controller's private journal, so one
    /// simulation-wide journal tells the whole story.
    pub fn with_journal(mut self, journal: Arc<Journal>, actor: impl Into<String>) -> Self {
        self.journal = journal;
        self.actor = actor.into();
        self
    }

    /// The journal the controller records into.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// The actor name the controller's events are chained under.
    pub fn actor(&self) -> &str {
        &self.actor
    }

    /// The controller's configuration.
    pub fn config(&self) -> RebalanceConfig {
        self.config
    }

    /// The cluster registry the controller watches.
    pub fn directory(&self) -> &Arc<ReplicaDirectory<P>> {
        &self.dir
    }

    /// Copies currently in flight.
    pub fn active_copies(&self) -> usize {
        self.inner.lock().active.len()
    }

    /// The catalog: every tracked title with its current replica set.
    pub fn titles(&self) -> Vec<(String, Vec<String>)> {
        self.inner
            .lock()
            .titles
            .iter()
            .map(|(t, rec)| (t.clone(), rec.replicas.clone()))
            .collect()
    }

    /// The tracked replica locations of `title`, if known.
    pub fn replicas_of(&self, title: &str) -> Option<Vec<String>> {
        self.inner
            .lock()
            .titles
            .get(title)
            .map(|rec| rec.replicas.clone())
    }

    /// Initial placement of a published title: K replicas per the
    /// placement policy (never on a draining server), tracked in the
    /// catalog for later grow/shrink/drain decisions. Returns the
    /// chosen locations, primary first.
    pub fn place_title(&self, title: &str, source: &MovieSource) -> Vec<String> {
        let replicas = self.placement.lock().place(&self.dir.loads());
        self.track_title(title, source, replicas.clone());
        replicas
    }

    /// Enters (or replaces) a title in the catalog with a fresh
    /// lifecycle state — the single path both publish and record
    /// tracking go through.
    fn track_title(&self, title: &str, source: &MovieSource, replicas: Vec<String>) {
        self.inner.lock().titles.insert(
            title.to_string(),
            TitleRec {
                source: source.clone(),
                replicas,
                retries: 0,
                dirty: false,
            },
        );
    }

    /// Adopts a finished recording that already lives on `origin`:
    /// picks `k - 1` peers (never the origin, never a draining
    /// server), fans the copy out to them through the bulk import
    /// path — the same machinery grow migrations use, minus the
    /// admission charge the recording already paid while capturing —
    /// and tracks the title. Returns the full replica list, origin
    /// first.
    pub fn adopt_recording(
        &self,
        title: &str,
        source: &MovieSource,
        origin: &str,
        now: SimTime,
    ) -> Vec<String> {
        let loads = self.dir.loads();
        let exclude = [origin.to_string()];
        let peers = {
            let mut placement = self.placement.lock();
            let k = placement.k();
            placement.place_with(&loads, k.saturating_sub(1), &exclude)
        };
        let mut replicas = vec![origin.to_string()];
        for location in peers {
            if let Some(host) = self.dir.get(&location) {
                host.import_bulk(source, now);
                replicas.push(location);
            }
        }
        self.track_title(title, source, replicas.clone());
        replicas
    }

    /// Starts draining `location`: no new stream routes to it, every
    /// sole-copy title it holds is migrated to another server, and
    /// once the migrations land and its last stream closes the server
    /// is deregistered (decommissioned) and removed from every replica
    /// list.
    ///
    /// # Errors
    ///
    /// [`DrainError::UnknownServer`] / [`DrainError::AlreadyDraining`]
    /// for bad targets, and [`DrainError::LastHolder`] when the
    /// server holds the only copy of a title and no other server
    /// exists to migrate it to — draining the last holder would lose
    /// the title, so it is refused outright.
    pub fn drain(&self, location: &str) -> Result<(), DrainError> {
        if !self.dir.locations().contains(&location.to_string()) {
            return Err(DrainError::UnknownServer(location.to_string()));
        }
        if self.dir.is_draining(location) {
            return Err(DrainError::AlreadyDraining(location.to_string()));
        }
        let mut inner = self.inner.lock();
        let alive: Vec<String> = self
            .dir
            .loads()
            .into_iter()
            .filter(|s| !s.draining && !s.crashed && s.location != location)
            .map(|s| s.location)
            .collect();
        if alive.is_empty() {
            if let Some((title, _)) = inner
                .titles
                .iter()
                .find(|(_, rec)| rec.replicas.contains(&location.to_string()))
            {
                return Err(DrainError::LastHolder(title.clone()));
            }
        }
        self.dir.set_draining(location, true);
        inner.draining.push(location.to_string());
        self.journal.record(
            &self.actor,
            EventKind::DrainStarted {
                location: location.to_string(),
            },
        );
        Ok(())
    }

    /// Whether `location` has been fully drained and decommissioned.
    pub fn drain_complete(&self, location: &str) -> bool {
        self.inner
            .lock()
            .decommissioned
            .contains(&location.to_string())
    }

    /// The earliest instant the controller wants to run again, or
    /// `None` when it is idle (no copies in flight, no drains in
    /// progress, no retries pending, no directory updates owed) — the
    /// world's driver uses this to advance the clock without keeping
    /// an idle world alive forever.
    pub fn next_tick_at(&self) -> Option<SimTime> {
        let inner = self.inner.lock();
        let retrying = inner
            .titles
            .values()
            .any(|rec| rec.retries > 0 && rec.retries <= self.config.max_copy_retries);
        // An under-replicated title (a holder crashed) keeps the
        // controller awake until repair copies restore K — capped at
        // the number of live servers, so a cluster that cannot reach
        // K does not spin forever.
        let under_replicated = {
            let loads = self.dir.loads();
            let target_k = self.replication_target(&loads);
            inner.titles.values().any(|rec| {
                let alive = alive_replicas(rec, &loads);
                !alive.is_empty() && alive.len() < target_k
            })
        };
        let busy = !inner.active.is_empty()
            || !inner.draining.is_empty()
            || retrying
            || under_replicated
            || inner.titles.values().any(|rec| rec.dirty);
        match (busy, inner.next_sample) {
            (true, Some(t)) => Some(t),
            _ => None,
        }
    }

    /// One control-plane pass at `now`: polls copies in flight,
    /// advances drains, pushes pending directory updates, and — at
    /// the configured sampling interval — takes a fresh [`ServerLoad`]
    /// snapshot of the cluster and makes grow/shrink decisions from
    /// it.
    pub fn tick(&self, now: SimTime) {
        self.journal.observe_time(now);
        let mut inner = self.inner.lock();
        let inner = &mut *inner;

        self.poll_copies(inner);

        let sample_due = inner.next_sample.is_none_or(|t| now >= t);
        if sample_due {
            inner.next_sample = Some(now + self.config.sample_interval);
        }

        if !inner.draining.is_empty() || sample_due {
            let loads = self.dir.loads();
            self.advance_drains(inner, &loads, now);
            if sample_due {
                self.journal.record(&self.actor, EventKind::RebalanceSample);
                self.repair(inner, &loads, now);
                self.grow(inner, &loads, now);
                self.shrink(inner, &loads);
            }
        }

        self.flush_dirty(inner);
    }

    /// Folds finished copies into replica sets; aborts copies whose
    /// target left the cluster (or started draining) mid-flight,
    /// releasing their admission reservation and blocks.
    fn poll_copies(&self, inner: &mut Inner<P>) {
        let mut i = 0;
        while i < inner.active.len() {
            let copy = &inner.active[i];
            let target_alive = self.dir.get(&copy.target).is_some()
                && !self.dir.is_draining(&copy.target)
                && !self.dir.is_crashed(&copy.target);
            if !target_alive {
                let copy = inner.active.swap_remove(i);
                copy.host.abort_copy(copy.token);
                self.journal.record(
                    &self.actor,
                    EventKind::CopyAborted {
                        title: copy.title,
                        to: copy.target,
                    },
                );
                continue;
            }
            if copy.host.copy_done(copy.token) {
                let copy = inner.active.swap_remove(i);
                if copy.host.finish_copy(copy.token) {
                    if let Some(rec) = inner.titles.get_mut(&copy.title) {
                        if !rec.replicas.contains(&copy.target) {
                            rec.replicas.push(copy.target.clone());
                        }
                        rec.retries = 0;
                        rec.dirty = true;
                    }
                    self.journal.record(
                        &self.actor,
                        EventKind::CopyCompleted {
                            title: copy.title,
                            to: copy.target,
                        },
                    );
                } else {
                    self.journal.record(
                        &self.actor,
                        EventKind::CopyAborted {
                            title: copy.title,
                            to: copy.target,
                        },
                    );
                }
                continue;
            }
            i += 1;
        }
    }

    /// Migrates sole-copy titles off draining servers and
    /// decommissions any drained server whose titles are all safe and
    /// whose last stream has closed.
    fn advance_drains(&self, inner: &mut Inner<P>, loads: &[ServerLoad], now: SimTime) {
        for location in inner.draining.clone() {
            // Start (or retry) migrations for titles whose only alive
            // copy sits on the draining server. Drain copies bypass
            // the grow retry budget: the drain cannot complete
            // without them.
            let sole: Vec<String> = inner
                .titles
                .iter()
                .filter(|(title, rec)| {
                    rec.replicas.contains(&location)
                        && alive_replicas(rec, loads).is_empty()
                        && !inner.active.iter().any(|c| c.title == **title)
                })
                .map(|(title, _)| title.clone())
                .collect();
            for title in sole {
                if inner.active.len() >= self.config.max_concurrent {
                    break;
                }
                self.start_copy(inner, &title, loads, now, CopyReason::Drain);
            }

            let streams_open = loads
                .iter()
                .find(|s| s.location == location)
                .map_or(0, |s| s.load.open_streams);
            let all_safe = inner.titles.values().all(|rec| {
                !rec.replicas.contains(&location) || !alive_replicas(rec, loads).is_empty()
            });
            if all_safe && streams_open == 0 {
                for rec in inner.titles.values_mut() {
                    if let Some(idx) = rec.replicas.iter().position(|l| *l == location) {
                        rec.replicas.remove(idx);
                        rec.dirty = true;
                    }
                }
                self.dir.deregister(&location);
                inner.draining.retain(|l| *l != location);
                self.journal.record(
                    &self.actor,
                    EventKind::DrainCompleted {
                        location: location.clone(),
                    },
                );
                inner.decommissioned.push(location);
            }
        }
    }

    /// Replication floor this cluster can actually sustain: the
    /// configured K, capped at the number of live servers.
    fn replication_target(&self, loads: &[ServerLoad]) -> usize {
        let live = loads.iter().filter(|s| !s.draining && !s.crashed).count();
        self.placement.lock().k().min(live)
    }

    /// Repair pass: a title whose alive replica set fell below K — a
    /// holder crashed — gets a copy scheduled from a surviving holder
    /// regardless of load. Unlike grow, repair ignores the saturation
    /// gate and the retry budget: re-replication is load-bearing, and
    /// the copy is journalled as a drain-style (mandatory) copy.
    fn repair(&self, inner: &mut Inner<P>, loads: &[ServerLoad], now: SimTime) {
        let target_k = self.replication_target(loads);
        let titles: Vec<String> = inner.titles.keys().cloned().collect();
        for title in titles {
            if inner.active.len() >= self.config.max_concurrent {
                break;
            }
            if inner.active.iter().any(|c| c.title == title) {
                continue;
            }
            let alive = alive_replicas(&inner.titles[&title], loads);
            if alive.is_empty() || alive.len() >= target_k {
                // A title with zero live copies is lost until its
                // crashed holder returns; nothing to copy from.
                continue;
            }
            self.start_copy(inner, &title, loads, now, CopyReason::Drain);
        }
    }

    /// Grow pass: a title whose alive holders are all too saturated
    /// to admit one more viewer, while some non-holder could, gets a
    /// copy scheduled onto the least-loaded non-holder.
    fn grow(&self, inner: &mut Inner<P>, loads: &[ServerLoad], now: SimTime) {
        let titles: Vec<String> = inner.titles.keys().cloned().collect();
        for title in titles {
            if inner.active.len() >= self.config.max_concurrent {
                break;
            }
            if inner.active.iter().any(|c| c.title == title) {
                continue;
            }
            let rec = &inner.titles[&title];
            let demand = rec.source.mean_bitrate_bps().max(1);
            let holders = alive_replicas(rec, loads);
            let saturated = !holders.is_empty()
                && holders.iter().all(|location| {
                    loads
                        .iter()
                        .find(|s| s.location == *location)
                        .is_some_and(|s| s.load.available_bps < demand)
                });
            if !saturated {
                // Pressure cleared: the retry budget comes back, so a
                // later hot spell can grow the title again. (This
                // must run *before* the budget check below, or an
                // exhausted title would be excluded from growing for
                // the controller's lifetime.)
                inner.titles.get_mut(&title).expect("keyed above").retries = 0;
                continue;
            }
            if rec.retries > self.config.max_copy_retries {
                continue;
            }
            self.start_copy(inner, &title, loads, now, CopyReason::Grow);
        }
    }

    /// Shrink pass: a title holding more than K replicas whose
    /// holders all cooled far below saturation gives its youngest
    /// surplus replica back to the routing pool.
    fn shrink(&self, inner: &mut Inner<P>, loads: &[ServerLoad]) {
        let k = self.placement.lock().k();
        for (title, rec) in inner.titles.iter_mut() {
            let alive = alive_replicas(rec, loads);
            if alive.len() <= k {
                continue;
            }
            let cool = alive.iter().all(|location| {
                loads
                    .iter()
                    .find(|s| s.location == *location)
                    .is_some_and(|s| {
                        let ceiling = s.load.capacity_bps / 100 * u64::from(self.config.shrink_pct);
                        s.load.committed_bps <= ceiling
                    })
            });
            if !cool {
                continue;
            }
            let youngest = alive.last().expect("len > k >= 1").clone();
            rec.replicas.retain(|l| *l != youngest);
            rec.dirty = true;
            self.journal.record(
                &self.actor,
                EventKind::Shrink {
                    title: title.clone(),
                    from: youngest,
                },
            );
        }
    }

    /// Begins one copy of `title` to the best eligible target; counts
    /// a rejection (and bumps the title's retry budget) when no
    /// target exists or the target's admission refuses.
    fn start_copy(
        &self,
        inner: &mut Inner<P>,
        title: &str,
        loads: &[ServerLoad],
        now: SimTime,
        reason: CopyReason,
    ) -> bool {
        let rec = inner.titles.get_mut(title).expect("caller checked");
        let reserve = rec.source.mean_bitrate_bps().max(1)
            * u64::from(self.config.copy_speed_pct.max(1))
            / 100;
        let target = loads
            .iter()
            .filter(|s| {
                !s.draining
                    && !s.crashed
                    && !rec.replicas.contains(&s.location)
                    && s.load.available_bps >= reserve
            })
            .min_by(|a, b| least_loaded_key(a).cmp(&least_loaded_key(b)))
            .map(|s| s.location.clone());
        let candidate = target.clone().unwrap_or_default();
        let started = target.and_then(|target| {
            let host = self.dir.get(&target)?;
            let token = host.begin_copy(&rec.source, reserve, now).ok()?;
            Some(ActiveCopy {
                title: title.to_string(),
                target,
                token,
                host,
                reason,
            })
        });
        match started {
            Some(copy) => {
                let kind = match copy.reason {
                    CopyReason::Grow => EventKind::GrowStarted {
                        title: copy.title.clone(),
                        to: copy.target.clone(),
                    },
                    CopyReason::Drain => EventKind::DrainCopyStarted {
                        title: copy.title.clone(),
                        to: copy.target.clone(),
                    },
                };
                self.journal.record(&self.actor, kind);
                inner.active.push(copy);
                true
            }
            None => {
                rec.retries += 1;
                self.journal.record(
                    &self.actor,
                    EventKind::CopyRejected {
                        title: title.to_string(),
                        to: candidate,
                    },
                );
                false
            }
        }
    }

    /// Pushes changed replica lists through the directory sink. A
    /// sink that reports the entry as not yet updatable (the record
    /// path adds the entry only after the capture finalizes) leaves
    /// the title dirty for the next tick. Without a sink the internal
    /// replicas map *is* the directory of record, so the update is
    /// journaled immediately — a completed copy must always be
    /// observable as a directory update.
    fn flush_dirty(&self, inner: &mut Inner<P>) {
        let Some(sink) = &self.sink else {
            for (title, rec) in inner.titles.iter_mut() {
                if rec.dirty {
                    rec.dirty = false;
                    self.journal.record(
                        &self.actor,
                        EventKind::DirectoryUpdate {
                            title: title.clone(),
                        },
                    );
                }
            }
            return;
        };
        for (title, rec) in inner.titles.iter_mut() {
            if rec.dirty && sink(title, &rec.replicas) {
                rec.dirty = false;
                self.journal.record(
                    &self.actor,
                    EventKind::DirectoryUpdate {
                        title: title.clone(),
                    },
                );
            }
        }
    }
}

/// The replicas of `rec` that are registered, not draining, and not
/// crashed, in replica-list order.
fn alive_replicas(rec: &TitleRec, loads: &[ServerLoad]) -> Vec<String> {
    rec.replicas
        .iter()
        .filter(|location| {
            loads
                .iter()
                .any(|s| s.location == **location && !s.draining && !s.crashed)
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use store::{BlockStore, CachePolicy, DiskParams, StoreConfig};

    /// ~1.7 Mbit/s of admissible bandwidth per server: two ~0.67
    /// Mbit/s streams fit, a third does not.
    fn tight_store() -> Arc<BlockStore> {
        BlockStore::new(StoreConfig {
            disks: 1,
            block_size: 128 * 1024,
            cache_blocks: 16,
            policy: CachePolicy::Lru,
            disk: DiskParams {
                transfer_bytes_per_sec: 250_000,
                ..DiskParams::default()
            },
            ..StoreConfig::default()
        })
    }

    fn cluster(
        n: usize,
        config: RebalanceConfig,
    ) -> (
        Arc<ReplicaDirectory<Arc<BlockStore>>>,
        RebalanceController<Arc<BlockStore>>,
    ) {
        let dir = Arc::new(ReplicaDirectory::new());
        for i in 0..n {
            dir.register(format!("node-{}", i + 1), tight_store());
        }
        let ctl = RebalanceController::new(Arc::clone(&dir), Placement::round_robin(2), config);
        (dir, ctl)
    }

    /// Advances the cluster's virtual clock along store events and
    /// controller wake-ups until `done` (or panics).
    fn run_until(
        dir: &ReplicaDirectory<Arc<BlockStore>>,
        ctl: &RebalanceController<Arc<BlockStore>>,
        mut now: SimTime,
        mut done: impl FnMut() -> bool,
    ) -> SimTime {
        let mut guard = 0;
        while !done() {
            ctl.tick(now);
            for location in dir.locations() {
                if let Some(store) = dir.get(&location) {
                    store.pump(now);
                }
            }
            if done() {
                break;
            }
            let next = dir
                .locations()
                .iter()
                .filter_map(|l| dir.get(l).and_then(|s| s.next_event()))
                .chain(ctl.next_tick_at())
                .min();
            match next {
                Some(t) if t > now => now = t,
                _ => now += SimDuration::from_millis(50),
            }
            guard += 1;
            assert!(guard < 100_000, "cluster never reached the condition");
        }
        now
    }

    fn saturate(store: &BlockStore, source: &MovieSource, base: u32) -> usize {
        let id = store.register_movie(source);
        let mut n = 0;
        while store
            .open_stream(base + n as u32, id, 100, SimTime::ZERO)
            .is_ok()
        {
            n += 1;
            assert!(n < 1000, "store never saturated");
        }
        n
    }

    #[test]
    fn grow_copies_a_saturated_title_to_the_least_loaded_idle_server() {
        let (dir, ctl) = cluster(3, RebalanceConfig::default());
        let source = MovieSource::test_movie(20, 1);
        let replicas = ctl.place_title("Hot", &source);
        assert_eq!(replicas, ["node-1", "node-2"]);
        // Fill both holders so neither admits one more viewer.
        for location in &replicas {
            saturate(&dir.get(location).unwrap(), &source, 1000);
        }
        ctl.tick(SimTime::ZERO);
        assert_eq!(ctl.active_copies(), 1, "grow copy scheduled");
        // The target reserved real admission bandwidth for the copy.
        let target = dir.get("node-3").unwrap();
        assert!(target.stats().committed_bps > 0, "copy charged on target");
        run_until(&dir, &ctl, SimTime::ZERO, || {
            ctl.stats().copies_completed == 1
        });
        assert_eq!(
            ctl.replicas_of("Hot").unwrap(),
            ["node-1", "node-2", "node-3"]
        );
        assert_eq!(target.stats().committed_bps, 0, "reservation released");
        // The copy is streamable from the new replica.
        let id = target.register_movie(&source);
        assert!(target.allocation_of(id).is_some(), "block-mapped copy");
        assert_eq!(ctl.stats().grows_started, 1);
    }

    #[test]
    fn shrink_trims_the_surplus_replica_once_the_title_cools() {
        let (dir, ctl) = cluster(3, RebalanceConfig::default());
        let source = MovieSource::test_movie(20, 2);
        let replicas = ctl.place_title("Fad", &source);
        let opened: Vec<(String, usize)> = replicas
            .iter()
            .map(|l| (l.clone(), saturate(&dir.get(l).unwrap(), &source, 2000)))
            .collect();
        let now = run_until(&dir, &ctl, SimTime::ZERO, || {
            ctl.stats().copies_completed == 1
        });
        assert_eq!(ctl.replicas_of("Fad").unwrap().len(), 3, "grown to 3");
        // The fad passes: every viewer leaves, holders cool off.
        for (location, n) in opened {
            let store = dir.get(&location).unwrap();
            for s in 0..n {
                store.close_stream(2000 + s as u32);
            }
        }
        run_until(&dir, &ctl, now, || ctl.stats().shrinks == 1);
        assert_eq!(
            ctl.replicas_of("Fad").unwrap().len(),
            2,
            "back to the configured K"
        );
    }

    #[test]
    fn copy_aborts_and_releases_reservation_when_target_is_deregistered() {
        let (dir, ctl) = cluster(3, RebalanceConfig::default());
        let source = MovieSource::test_movie(20, 3);
        let replicas = ctl.place_title("Hot", &source);
        for location in &replicas {
            saturate(&dir.get(location).unwrap(), &source, 3000);
        }
        ctl.tick(SimTime::ZERO);
        assert_eq!(ctl.active_copies(), 1);
        let target = dir.get("node-3").unwrap();
        assert!(target.stats().committed_bps > 0, "reservation in place");
        // The target machine is pulled from the cluster mid-copy.
        dir.deregister("node-3");
        ctl.tick(SimTime::from_millis(200));
        assert_eq!(ctl.active_copies(), 0);
        assert_eq!(ctl.stats().copies_aborted, 1);
        assert_eq!(
            target.stats().committed_bps,
            0,
            "aborted copy released its admission reservation"
        );
        assert_eq!(target.stats().imports_active, 0);
    }

    #[test]
    fn drain_migrates_sole_copies_and_decommissions_on_last_close() {
        let (dir, ctl) = cluster(3, RebalanceConfig::default());
        // K=1: "Solo" lives only on node-1.
        let ctl = {
            drop(ctl);
            RebalanceController::new(
                Arc::clone(&dir),
                Placement::round_robin(1),
                RebalanceConfig::default(),
            )
        };
        let source = MovieSource::test_movie(20, 4);
        assert_eq!(ctl.place_title("Solo", &source), ["node-1"]);
        // One viewer is mid-stream on node-1.
        let holder = dir.get("node-1").unwrap();
        let movie = holder.register_movie(&source);
        holder.open_stream(4000, movie, 100, SimTime::ZERO).unwrap();

        ctl.drain("node-1").unwrap();
        assert!(dir.is_draining("node-1"));
        assert!(
            matches!(ctl.drain("node-1"), Err(DrainError::AlreadyDraining(_))),
            "double drain refused"
        );
        // The sole copy migrates off while the stream keeps running.
        let now = run_until(&dir, &ctl, SimTime::ZERO, || {
            ctl.stats().copies_completed == 1
        });
        assert!(
            !ctl.drain_complete("node-1"),
            "server lives until its last stream closes"
        );
        // The viewer finishes: the server decommissions.
        holder.close_stream(4000);
        run_until(&dir, &ctl, now, || ctl.drain_complete("node-1"));
        assert!(dir.get("node-1").is_none(), "deregistered");
        let replicas = ctl.replicas_of("Solo").unwrap();
        assert_eq!(replicas.len(), 1, "zero under-replicated titles");
        assert_ne!(replicas[0], "node-1");
        assert_eq!(ctl.stats().drains_completed, 1);
    }

    #[test]
    fn crash_repair_restores_k_without_waiting_for_saturation() {
        let (dir, ctl) = cluster(3, RebalanceConfig::default());
        let source = MovieSource::test_movie(20, 6);
        let replicas = ctl.place_title("Survivor", &source);
        assert_eq!(replicas, ["node-1", "node-2"]);
        // node-1 crashes: the title is under-replicated, but nobody
        // is saturated — the grow pass would never act.
        assert!(dir.set_crashed("node-1", true));
        assert!(
            ctl.next_tick_at().is_none(),
            "no sample scheduled yet: first tick sets the cadence"
        );
        ctl.tick(SimTime::ZERO);
        assert_eq!(ctl.active_copies(), 1, "repair copy scheduled at once");
        assert!(
            ctl.next_tick_at().is_some(),
            "under-replication keeps the controller awake"
        );
        run_until(&dir, &ctl, SimTime::ZERO, || {
            ctl.stats().copies_completed == 1
        });
        let replicas = ctl.replicas_of("Survivor").unwrap();
        assert!(replicas.contains(&"node-3".to_string()), "copied to node-3");
        // K live copies again: the controller can go idle.
        let loads = dir.loads();
        let alive: Vec<&ServerLoad> = loads.iter().filter(|s| !s.crashed).collect();
        assert_eq!(alive.len(), 2);
        assert_eq!(ctl.stats().drain_copies_started, 1, "repair is mandatory");
    }

    #[test]
    fn drain_of_the_last_holder_is_refused() {
        let (_, ctl) = cluster(1, RebalanceConfig::default());
        let source = MovieSource::test_movie(20, 5);
        ctl.place_title("Only", &source);
        assert_eq!(
            ctl.drain("node-1"),
            Err(DrainError::LastHolder("Only".into()))
        );
        assert_eq!(
            ctl.drain("node-9"),
            Err(DrainError::UnknownServer("node-9".into()))
        );
    }
}
