//! The event journal, end to end: every control-plane decision a
//! cluster takes — admissions, routing, referrals, health samples —
//! lands in one hash-chained journal on the simulation clock.
//!
//! A 2-server cluster serves two viewers through association,
//! replicated publish, `SelectMovie` routing and a second of
//! playback. The tour then prints the journal, verifies the
//! tamper-evident chain, demonstrates that a flipped payload bit is
//! caught, and replays the run from the recorded JSONL to show the
//! chain reproduces bit for bit.
//!
//! Run with: `cargo run --release --example journal_tour`

use directory::MovieEntry;
use journal::EventKind;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn main() {
    let mut world = World::builder(7)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(2),
            SimDuration::from_micros(500),
            0.0,
        ))
        .store(StoreConfig {
            disks: 1,
            block_size: 128 * 1024,
            cache_blocks: 64,
            policy: CachePolicy::Interval,
            disk: DiskParams {
                transfer_bytes_per_sec: 250_000,
                ..DiskParams::default()
            },
            ..StoreConfig::default()
        })
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let clients: Vec<_> = (0..2)
        .map(|i| world.add_client(&cluster.servers[i % 2], StackKind::EstellePS, vec![]))
        .collect();
    world.start();
    for (i, client) in clients.iter().enumerate() {
        let rsp = world.client_op(
            client,
            McamOp::Associate {
                user: format!("viewer-{i}"),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }
    let mut entry = MovieEntry::new("Hit", "placeholder");
    entry.frame_count = 60;
    world.publish_replicated(&cluster, &entry);
    for client in &clients {
        match world.client_op(
            client,
            McamOp::SelectMovie {
                title: "Hit".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
            other => panic!("select failed: {other:?}"),
        }
    }
    assert_eq!(
        world.client_op(&clients[0], McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(1));

    // --- The journal: one chain per actor, one global sequence. ---
    let journal = world.journal();
    let jsonl = journal.to_jsonl();
    println!("journal of the run ({} events):", journal.len());
    for line in jsonl.lines() {
        println!("  {line}");
    }

    let query = journal.query();
    println!("\nevent totals by kind:");
    for (kind, n) in query.kind_totals() {
        println!("  {kind:<18} {n}");
    }
    println!("\nlatest health snapshot per server:");
    for (server, kind) in query.latest_health() {
        if let EventKind::HealthSnapshot {
            streams,
            control_assocs,
            available_bps,
            ..
        } = kind
        {
            println!(
                "  {server}: streams={streams} control_assocs={control_assocs} \
                 available_bps={available_bps}"
            );
        }
    }

    // --- Tamper evidence: the chain verifies, a flipped bit fails. ---
    journal.verify().expect("untampered chain verifies");
    println!("\nchain verified: every hash links to its predecessor");
    let mut tampered = journal.events();
    let victim = tampered
        .iter()
        .position(|e| matches!(e.kind, EventKind::StreamAdmit { .. }))
        .expect("the run admits streams");
    if let EventKind::StreamAdmit { demanded_bps, .. } = &mut tampered[victim].kind {
        *demanded_bps += 1;
    }
    let err = journal::verify_events(&tampered).expect_err("tampering is caught");
    println!("tampered event detected: {err}");

    // --- Replay: the recorded JSONL reproduces the chain exactly. ---
    let replay = journal::Journal::standalone();
    for event in journal::events_from_jsonl(&jsonl).expect("recorded journal parses") {
        replay.observe_time(event.sim_time);
        replay.record(&event.server, event.kind);
    }
    journal::replay_check(&jsonl, &replay).expect("replay reproduces the chain bit for bit");
    println!(
        "replay reproduced the chain bit for bit ({} events)",
        replay.len()
    );
}
