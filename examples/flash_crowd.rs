//! Flash crowd: a popular premiere hits one server, and the stream
//! sharing engine turns what admission control would refuse into one
//! disk stream plus a crowd of free riders.
//!
//! The walkthrough shows each share class in turn — a leader charged
//! one full stream, followers merging free inside the merge window, a
//! late viewer fast-fed at twice the nominal rate until it converges
//! onto the group, the leader closing mid-movie and handing its disk
//! stream to the nearest follower — then prints the merge engine's
//! counters and the journal's view of the same lifecycle.
//!
//! Run with `cargo run --example flash_crowd`.

use directory::MovieEntry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, ShareConfig, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn main() {
    // One slow disk: two full ~0.69 Mbit/s streams fit, a third does
    // not — without sharing this premiere would top out at two
    // viewers.
    let tight = StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    };
    // A tight merge window plus a fast catch-up rate keeps every
    // phase of the lifecycle visible inside a short premiere.
    let mut world = World::builder(1994)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(2),
            SimDuration::from_micros(500),
            0.0,
        ))
        .store(tight)
        .share(ShareConfig {
            enabled: true,
            merge_window_blocks: 1,
            catch_up_horizon_blocks: 8,
            catch_up_rate_pct: 200,
        })
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        1,
        StackKind::EstellePS,
        Placement::round_robin(1),
    ));
    let viewers: Vec<_> = (0..5)
        .map(|_| world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]))
        .collect();
    world.start();

    let mut entry = MovieEntry::new("Premiere", "pending");
    entry.frame_count = 500; // 20 seconds at 25 fps
    world.publish_replicated(&cluster, &entry);

    for (i, viewer) in viewers.iter().enumerate() {
        let rsp = world.client_op(
            viewer,
            McamOp::Associate {
                user: format!("viewer-{i}"),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }

    let store = &cluster.servers[0].services.store;
    let share = &cluster.servers[0].services.share;
    let select = |world: &World, viewer, who: &str| {
        match world.client_op(
            viewer,
            McamOp::SelectMovie {
                title: "Premiere".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
            other => panic!("{who} was refused: {other:?}"),
        }
        println!(
            "{who}: admitted ({} bps of disk bandwidth still uncommitted)",
            store.available_bps()
        );
    };
    let play = |world: &World, viewer| {
        assert_eq!(
            world.client_op(viewer, McamOp::Play { speed_pct: 100 }),
            Some(McamPdu::PlayRsp { ok: true })
        );
    };

    // Act 1 — the leader: one full disk stream is charged.
    select(&world, &viewers[0], "leader");
    play(&world, &viewers[0]);

    // Act 2 — the crowd arrives seconds behind: both viewers are
    // inside the merge window and ride the leader's stream from the
    // pinned cache span, charging nothing.
    select(&world, &viewers[1], "follower-1 (merged)");
    select(&world, &viewers[2], "follower-2 (merged)");
    play(&world, &viewers[1]);
    play(&world, &viewers[2]);

    // Act 3 — a latecomer outside the window but inside the catch-up
    // horizon: fast-fed at 200% of nominal, charged only the delta.
    world.run_for(SimDuration::from_secs(4));
    select(&world, &viewers[3], "latecomer (fast-feed)");
    play(&world, &viewers[3]);
    println!(
        "latecomer: chasing at {}% of nominal rate",
        world.share_config().catch_up_rate_pct
    );

    // Act 4 — convergence: the latecomer's gap closes to the merge
    // window, it joins the group, and the delta goes back to
    // admission control.
    world.run_for(SimDuration::from_secs(8));
    println!(
        "latecomer: converged and merged ({} bps uncommitted again)",
        store.available_bps()
    );

    // Act 5 — the leader leaves mid-movie: the nearest follower is
    // promoted and re-charged the one disk stream the leader freed;
    // everyone else keeps watching undisturbed.
    assert_eq!(
        world.client_op(&viewers[0], McamOp::Deselect),
        Some(McamPdu::DeselectMovieRsp)
    );
    println!(
        "leader: closed mid-movie — a follower now owns the disk stream \
         ({} bps uncommitted)",
        store.available_bps()
    );
    world.run_for(SimDuration::from_secs(4));

    let stats = share.stats();
    println!("\nshare engine: {stats:?}");
    assert!(stats.merges >= 2, "{stats:?}");
    assert_eq!(stats.fast_feeds, 1, "{stats:?}");
    assert_eq!(stats.conversions, 1, "{stats:?}");
    assert_eq!(stats.promotions, 1, "{stats:?}");

    let journal = world.journal();
    journal.verify().expect("hash chain intact");
    println!(
        "journal: merge_joined={} fast_feed_started={} fast_feed_converged={} \
         leader_promoted={} ({} events, chain verified)",
        journal.count(journal::kind::MERGE_JOINED),
        journal.count(journal::kind::FAST_FEED_STARTED),
        journal.count(journal::kind::FAST_FEED_CONVERGED),
        journal.count(journal::kind::LEADER_PROMOTED),
        journal.len()
    );
    println!("\nflash crowd served: 5 viewers on a 2-stream disk budget");
}
