//! The record write path end to end: a client records a movie on one
//! server of a cluster (camera capture → admission-controlled write
//! bandwidth → striped block allocation → directory finalization),
//! the finished recording is replicated to a peer server, and a
//! second client then streams it back **from the peer's copy**.
//!
//! Run with `cargo run --example record_playback`.

use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn main() {
    let store_config = StoreConfig {
        disks: 2,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 2_000_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    };
    let mut world = World::builder(77)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(2),
            SimDuration::from_micros(500),
            0.0,
        ))
        .store(store_config)
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        2,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let camera_client = world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    // The viewer connects to the *other* server: its stream will be
    // served from the replica copy, not the original.
    let viewer = world.add_client(&cluster.servers[1], StackKind::EstellePS, vec![]);
    world.start();

    for (client, user) in [(&camera_client, "camera"), (&viewer, "viewer")] {
        let rsp = world.client_op(client, McamOp::Associate { user: user.into() });
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }

    // Record 8 seconds of camera footage. The reply arrives only
    // after the capture ran for 8 simulated seconds and every block
    // reached a platter.
    let frames = 8 * 25;
    println!("recording \"Garden Party\" ({frames} frames) on server 0 …");
    let rsp = world.client_op(
        &camera_client,
        McamOp::Record {
            title: "Garden Party".into(),
            frames,
        },
    );
    assert_eq!(rsp, Some(McamPdu::RecordRsp { ok: true }));
    let (frames_recorded, blocks_recorded) = cluster.recorded_totals();
    println!(
        "recorded {frames_recorded} frames into {blocks_recorded} blocks \
         at t={:.1}s",
        world.net.now().as_secs_f64()
    );

    // The finalized entry names both replicas.
    let attrs = match world.client_op(
        &viewer,
        McamOp::Query {
            title: "Garden Party".into(),
            attrs: vec![],
        },
    ) {
        Some(McamPdu::QueryAttrsRsp { attrs: Some(a) }) => a.into_iter().collect(),
        other => panic!("query failed: {other:?}"),
    };
    let entry = directory::MovieEntry::from_attrs(&attrs).expect("finalized entry");
    println!(
        "directory: {} frames, {:.2} Mbit/s, replicas {:?}",
        entry.frame_count,
        entry.bitrate_bps as f64 / 1e6,
        entry.replicas
    );
    assert_eq!(entry.replicas.len(), 2, "recording replicated to K=2");

    // The camera client rewatches its own footage, loading the
    // original's server — so the load-aware `SelectMovie` routing
    // steers the second viewer to the *peer's replica copy*.
    match world.client_op(
        &camera_client,
        McamOp::SelectMovie {
            title: "Garden Party".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(_) }) => {}
        other => panic!("camera re-select failed: {other:?}"),
    }
    world.client_op(&camera_client, McamOp::Play { speed_pct: 100 });

    let params = match world.client_op(
        &viewer,
        McamOp::SelectMovie {
            title: "Garden Party".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("select failed: {other:?}"),
    };
    assert_eq!(
        params.provider_addr,
        cluster.servers[1].services.sps.addr().0,
        "the viewer is served from the peer's replica copy"
    );
    let mut rx = world.receiver_for(&viewer, &params, SimDuration::from_millis(60));
    let rsp = world.client_op(&viewer, McamOp::Play { speed_pct: 100 });
    assert_eq!(rsp, Some(McamPdu::PlayRsp { ok: true }));
    world.run_for(SimDuration::from_secs(10));
    let played = rx.poll(world.net.now());
    println!(
        "viewer played {} frames of the recording from node-{}",
        played.len(),
        params.provider_addr
    );
    assert_eq!(played.len() as u64, frames, "the whole recording played");
    println!("record → replicate → playback: OK");
}
