//! Hot-title rebalancing and server drain, end to end.
//!
//! A 4-server cluster publishes a blockbuster on K=2 replicas sized
//! so each replica sustains two viewers. Demand exceeds the replica
//! set: the fifth viewer is refused with a clean 503. The cluster
//! control plane ([`mcam::ClusterController`]) samples the
//! saturation, copies the title onto the least-loaded idle server —
//! a paced, admission-charged workload on that server's disks — and
//! rewrites the directory entry, after which the refused viewer is
//! admitted on the new replica. Finally one of the original holders
//! is drained: its titles survive on other servers and it
//! decommissions once its last stream closes.
//!
//! Run with: `cargo run --release --example hot_title_rebalance`

use directory::MovieEntry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn main() {
    // ~1.69 Mbit/s of admissible disk bandwidth per server: two
    // ~0.69 Mbit/s streams fit, a third is refused.
    let store_config = StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    };
    let link = LinkConfig::lossy(
        SimDuration::from_millis(2),
        SimDuration::from_micros(500),
        0.0,
    );
    let mut world = World::builder(7)
        .stream_link(link)
        .store(store_config)
        .build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        4,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let clients: Vec<_> = (0..5)
        .map(|i| {
            let server = cluster.servers[i % 4].clone();
            world.add_client(&server, StackKind::EstellePS, vec![])
        })
        .collect();
    world.start();
    for (i, client) in clients.iter().enumerate() {
        let rsp = world.client_op(
            client,
            McamOp::Associate {
                user: format!("viewer-{i}"),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }

    let mut entry = MovieEntry::new("Blockbuster", "pending");
    entry.frame_count = 1500; // one minute at 25 fps
    let replicas = world.publish_replicated(&cluster, &entry);
    println!("published \"Blockbuster\" on K=2 replicas: {replicas:?}");

    let select = |world: &World, client| {
        world.client_op(
            client,
            McamOp::SelectMovie {
                title: "Blockbuster".into(),
            },
        )
    };

    // Four viewers fill both replicas…
    for (i, client) in clients[..4].iter().enumerate() {
        match select(&world, client) {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
                println!("viewer-{i}: admitted on node-{}", p.provider_addr);
            }
            other => panic!("viewer-{i} must fit on the replica set: {other:?}"),
        }
    }
    // …and the fifth is refused: the replica set is saturated while
    // half the cluster idles.
    match select(&world, &clients[4]) {
        Some(McamPdu::ErrorRsp { code, message }) => {
            println!("viewer-4: refused ({code}: {message})");
            assert_eq!(code, mcam::server::ERR_ADMISSION);
        }
        other => panic!("expected a 503 before the rebalance: {other:?}"),
    }

    // The control plane samples the saturation, reserves copy
    // bandwidth on the least-loaded idle server, and writes the title
    // through its disk queues at the reserved pace.
    println!("\ndriving the world while the control plane rebalances…");
    world.run_for(SimDuration::from_secs(60));
    let stats = cluster.rebalance_stats();
    println!(
        "rebalance stats: samples={} grows_started={} copies_completed={} directory_updates={}",
        stats.samples, stats.grows_started, stats.copies_completed, stats.directory_updates
    );
    assert!(stats.copies_completed >= 1, "the grow copy must land");

    // The refused viewer retries: the rewritten directory entry
    // routes it to the fresh copy.
    let grown = match select(&world, &clients[4]) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            let location = format!("node-{}", p.provider_addr);
            println!("viewer-4 retries: admitted on {location} (the grown replica)");
            assert!(
                !replicas.contains(&location),
                "the fifth viewer lands on a server outside the original set"
            );
            location
        }
        other => panic!("viewer-4 must be admitted after the rebalance: {other:?}"),
    };

    // Drain walkthrough: take the grown server's predecessor out of
    // service. Its streams keep playing; once the viewers deselect,
    // it decommissions with zero under-replicated titles.
    let victim = replicas[0].clone();
    println!("\ndraining {victim}…");
    cluster.drain(&victim).expect("drain accepted");
    for (i, client) in clients.iter().enumerate() {
        let _ = world.client_op(client, McamOp::Deselect);
        let _ = i;
    }
    world.run_for(SimDuration::from_secs(60));
    assert!(
        cluster.rebalancer.drain_complete(&victim),
        "drain completes once the last stream closes"
    );
    assert!(cluster.peers.get(&victim).is_none(), "deregistered");
    for (title, replicas) in cluster.rebalancer.titles() {
        assert!(
            !replicas.is_empty() && !replicas.contains(&victim),
            "{title} must survive the drain off {victim}"
        );
    }
    let stats = cluster.rebalance_stats();
    println!(
        "drain complete: drains_completed={} copies_aborted={} shrinks={}",
        stats.drains_completed, stats.copies_aborted, stats.shrinks
    );
    println!(
        "\"Blockbuster\" now lives on {:?} — {grown} joined mid-run, {victim} left cleanly",
        cluster.rebalancer.replicas_of("Blockbuster").unwrap()
    );
}
