//! Cluster-aware clients: the referral/redirect control plane, end
//! to end.
//!
//! Eight workstations all dial the *same* server of a 4-server
//! cluster — the classic control-plane bottleneck: `SelectMovie`
//! routing already spreads the streams, but every MCAM request would
//! still be parsed, dispatched and answered by one machine. With the
//! referral PDU the dialed server answers most association opens
//! with "better served by X", the clients re-dial transparently, and
//! the control associations spread across the cluster. A legacy
//! client (pre-referral encoding) keeps being served where it
//! dialed. Finally one member is drained: its control associations
//! are referred away at their next select — before the server
//! decommissions — and the re-homed select is replayed so the
//! application never notices.
//!
//! Run with: `cargo run --release --example client_redirect`

use directory::MovieEntry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{LinkConfig, SimDuration};

fn main() {
    let link = LinkConfig::lossy(
        SimDuration::from_millis(2),
        SimDuration::from_micros(500),
        0.0,
    );
    let mut world = World::builder(5).stream_link(link).build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        4,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let dialed = cluster.servers[0].services.sps.location();

    // Everyone dials server 0.
    let clients: Vec<_> = (0..8)
        .map(|_| world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]))
        .collect();
    let legacy = world.add_legacy_client(&cluster.servers[0], StackKind::EstellePS, vec![]);
    world.start();

    for (i, client) in clients.iter().enumerate() {
        let rsp = world.client_op(
            client,
            McamOp::Associate {
                user: format!("viewer-{i}"),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
        let at = world.client_control_location(client);
        let (followed, _) = world.client_referrals(client);
        println!(
            "viewer-{i}: control association on {at}{}",
            if followed > 0 { " (referred)" } else { "" }
        );
    }
    let rsp = world.client_op(
        &legacy,
        McamOp::Associate {
            user: "legacy".into(),
        },
    );
    assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    println!(
        "legacy:   control association on {} (old encoding, never referred)",
        world.client_control_location(&legacy)
    );
    assert_eq!(world.client_control_location(&legacy), dialed);

    let counts = cluster.control_connections();
    println!("control connections per server: {counts:?}");
    let fair = (clients.len() + 1).div_ceil(cluster.servers.len());
    for (location, n) in &counts {
        assert!(
            *n <= 2 * fair,
            "{location} exceeds 2x its fair share: {counts:?}"
        );
    }

    // A referred client is a full citizen: publish and stream.
    let mut entry = MovieEntry::new("Blockbuster", "pending");
    entry.frame_count = 100; // four seconds at 25 fps
    let replicas = world.publish_replicated(&cluster, &entry);
    println!("published \"Blockbuster\" on {replicas:?}");

    let moved = clients
        .iter()
        .find(|c| world.client_control_location(c) != dialed)
        .expect("referrals spread someone");
    let params = match world.client_op(
        moved,
        McamOp::SelectMovie {
            title: "Blockbuster".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("select failed: {other:?}"),
    };
    println!(
        "re-homed viewer selects through {} and streams from node-{}",
        world.client_control_location(moved),
        params.provider_addr
    );

    // Drain-away: a draining member refers each of its control
    // associations off at that client's next request, then
    // decommissions. Pick a member that only holds referral-capable
    // clients (the legacy one is pinned to the dialed server and can
    // never be moved).
    let victim = world.client_control_location(
        clients
            .iter()
            .find(|c| world.client_control_location(c) != dialed)
            .expect("referrals spread someone"),
    );
    // Put a running stream on the victim so the drain is genuinely
    // held open while the referrals happen: node-1 already serves a
    // stream, so the next select routes to the victim replica.
    let holder = clients
        .iter()
        .find(|c| world.client_control_location(c) == victim)
        .expect("someone lives on the victim");
    match world.client_op(
        holder,
        McamOp::SelectMovie {
            title: "Blockbuster".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            assert_eq!(format!("node-{}", p.provider_addr), victim);
        }
        other => panic!("select failed: {other:?}"),
    }
    cluster.drain(&victim).expect("drain accepted");
    assert!(
        !cluster.rebalancer.drain_complete(&victim),
        "the open stream holds the drain"
    );
    println!("draining {victim}…");
    for (i, client) in clients.iter().enumerate() {
        if world.client_control_location(client) != victim {
            continue;
        }
        let rsp = world.client_op(
            client,
            McamOp::SelectMovie {
                title: "Blockbuster".into(),
            },
        );
        match rsp {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
                let after = world.client_control_location(client);
                assert_ne!(after, victim, "the control association left the drain");
                println!(
                    "viewer-{i}: referred {victim} -> {after}, stream now on node-{}",
                    p.provider_addr
                );
                assert_ne!(format!("node-{}", p.provider_addr), victim);
            }
            other => panic!("drained-away select failed: {other:?}"),
        }
    }
    assert_eq!(
        cluster.control.connections(&victim),
        0,
        "every association was referred off the draining server"
    );
    world.run_for(SimDuration::from_secs(30));
    assert!(
        cluster.rebalancer.drain_complete(&victim),
        "drain completes once referrals emptied the server"
    );
    println!(
        "{victim} decommissioned; control connections now {:?}",
        cluster.control_connections()
    );
    println!("client_redirect: OK");
}
