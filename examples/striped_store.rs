//! Striped continuous-media storage: streams pull their frames
//! through a block store (striped disks + buffer cache + prefetch)
//! and disk-bandwidth admission control rejects the viewer that would
//! overload the server — a negative MCAM response, not a degraded
//! stream.
//!
//! Run with `cargo run --example striped_store`.

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn main() {
    // A deliberately small storage array: one slow disk, an
    // interval-caching buffer pool. Capacity fits two nominal-rate
    // streams; the third viewer must be refused.
    let store_config = StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            // Slow enough that even the SCAN-scheduled arm fits only
            // two nominal-rate streams.
            transfer_bytes_per_sec: 280_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    };
    println!(
        "store: {} disk(s), {} KiB blocks, cache {} blocks, capacity {:.2} Mbit/s",
        store_config.disks,
        store_config.block_size / 1024,
        store_config.cache_blocks,
        store_config.capacity_bps() as f64 / 1e6,
    );

    let mut world = World::builder(94)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(2),
            SimDuration::from_micros(500),
            0.0,
        ))
        .store(store_config)
        .build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let clients: Vec<_> = ["ann", "ben", "col"]
        .iter()
        .map(|user| {
            (
                *user,
                world.add_client(&server, StackKind::EstellePS, vec![]),
            )
        })
        .collect();
    world.start();

    let mut entry = MovieEntry::new("Metropolis", "vod-store");
    entry.frame_count = 8 * 25;
    world.seed_movie(&server, &entry);

    for (user, client) in &clients {
        let rsp = world.client_op(
            client,
            McamOp::Associate {
                user: (*user).into(),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }

    // Viewers arrive one after another, all for the same movie.
    let mut receivers = Vec::new();
    for (user, client) in &clients {
        match world.client_op(
            client,
            McamOp::SelectMovie {
                title: "Metropolis".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
                println!(
                    "{user}: admitted as stream {} (committed {:.2} of {:.2} Mbit/s)",
                    p.stream_id,
                    server.services.store.stats().committed_bps as f64 / 1e6,
                    server.services.store.stats().capacity_bps as f64 / 1e6,
                );
                let receiver = world.receiver_for(client, &p, SimDuration::from_millis(80));
                let rsp = world.client_op(client, McamOp::Play { speed_pct: 100 });
                assert_eq!(rsp, Some(McamPdu::PlayRsp { ok: true }));
                receivers.push((*user, client.clone(), receiver, p));
                // Stagger the viewers slightly: the interval cache
                // serves the follower from the leader's blocks.
                world.run_for(SimDuration::from_millis(400));
            }
            Some(McamPdu::ErrorRsp { code, message }) => {
                println!("{user}: REJECTED ({code}) — {message}");
                assert_eq!(code, mcam::server::ERR_ADMISSION);
            }
            other => panic!("{user}: unexpected select outcome {other:?}"),
        }
    }
    assert_eq!(
        receivers.len(),
        2,
        "the slow disk sustains exactly two viewers"
    );

    // Let both admitted streams run to the end of the movie.
    world.run_for(SimDuration::from_secs(10));
    for (user, _client, receiver, params) in &mut receivers {
        let frames = receiver.poll(world.net.now());
        println!(
            "{user}: received {} of {} frames ({} late)",
            frames.len(),
            params.movie.frame_count,
            receiver.stats.late,
        );
        assert!(!frames.is_empty(), "admitted stream must deliver");
    }

    let stats = server.services.store.stats();
    println!(
        "store after playback: {} blocks delivered, {:.0}% served without \
         a dedicated disk read ({} cache hits, {} coalesced), disk reads {} \
         ({} sequential)",
        stats.blocks_delivered,
        stats.service_hit_ratio() * 100.0,
        stats.cache.hits,
        stats.coalesced_reads,
        stats.disks[0].reads,
        stats.disks[0].sequential_reads,
    );
    assert!(
        stats.cache.hits + stats.coalesced_reads > 0,
        "the trailing viewer rides the leader's blocks"
    );
    assert!(stats.admission.rejected >= 1);

    // The rejected viewer retries after a leader departs: re-admitted.
    let (_, ann_client, _, _) = &receivers[0];
    let rsp = world.client_op(ann_client, McamOp::Deselect);
    assert_eq!(rsp, Some(McamPdu::DeselectMovieRsp));
    let (user, cols_client) = &clients[2];
    let params = match world.client_op(
        cols_client,
        McamOp::SelectMovie {
            title: "Metropolis".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            println!(
                "{user}: re-admitted as stream {} after a slot freed up",
                p.stream_id
            );
            p
        }
        other => panic!("{user}: retry after release failed: {other:?}"),
    };

    // The whole movie is resident from the earlier viewers, so col's
    // replay is served from the buffer cache — zero new disk reads.
    let mut receiver = world.receiver_for(cols_client, &params, SimDuration::from_millis(80));
    let rsp = world.client_op(cols_client, McamOp::Play { speed_pct: 100 });
    assert_eq!(rsp, Some(McamPdu::PlayRsp { ok: true }));
    world.run_for(SimDuration::from_secs(10));
    let frames = receiver.poll(world.net.now());
    let replay = server.services.store.stats();
    println!(
        "{user}: replayed {} frames from the buffer cache ({} cache hits, \
         disk reads still {})",
        frames.len(),
        replay.cache.hits,
        replay.disks[0].reads,
    );
    assert!(replay.cache.hits > 0, "replay must hit the buffer cache");
    assert_eq!(
        replay.disks[0].reads, stats.disks[0].reads,
        "no new disk work"
    );
    println!("done: admission control turned overload into a clean protocol error");
}
