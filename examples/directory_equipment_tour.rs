//! Tour of the two MCAM support services (paper §2): the X.500-style
//! movie directory with referrals, and the CM equipment control
//! system.
//!
//! Run with `cargo run --example directory_equipment_tour`.

use directory::{attr, Dn, Dsa, Dua, Filter, ModOp, MovieEntry, Scope};
use equipment::{param, Eca, EquipmentClass, Eua};

fn main() {
    // --- movie directory -------------------------------------------
    println!("-- movie directory --");
    let mannheim = Dsa::new("mannheim");
    let karlsruhe = Dsa::new("karlsruhe");
    let base: Dn = "o=movies".parse().unwrap();
    mannheim.add(base.clone(), directory::Attrs::new()).unwrap();
    mannheim.add_referral("o=archive".parse().unwrap(), "karlsruhe");

    let mut dua = Dua::new(&mannheim);
    dua.add_dsa(&karlsruhe);

    for (title, rate) in [("Star Wars", 24), ("Das Boot", 25), ("Stalker", 25)] {
        let mut e = MovieEntry::new(title, "node-1");
        e.frame_rate = rate;
        let dn: Dn = format!("o=movies/cn={title}").parse().unwrap();
        dua.add(dn, e.to_attrs()).unwrap();
    }
    // An archived movie mastered by the other DSA, reached by referral.
    karlsruhe
        .add(
            "o=archive/cn=Metropolis".parse().unwrap(),
            MovieEntry::new("Metropolis", "node-9").to_attrs(),
        )
        .unwrap();
    let got = dua
        .read(&"o=archive/cn=Metropolis".parse().unwrap())
        .unwrap();
    println!(
        "referral chase: found {:?} on karlsruhe",
        got.get(attr::TITLE).and_then(|v| v.as_str()).unwrap()
    );

    let hits = dua
        .search(
            &base,
            Scope::Subtree,
            &Filter::And(vec![
                Filter::eq_str(attr::OBJECT_CLASS, "movie"),
                Filter::Ge(attr::FRAME_RATE.into(), 25),
            ]),
        )
        .unwrap();
    println!(
        "25fps movies: {:?}",
        hits.iter()
            .map(|(dn, _)| dn.to_string())
            .collect::<Vec<_>>()
    );

    dua.modify(
        &"o=movies/cn=Star Wars".parse().unwrap(),
        &[ModOp::Put(attr::FRAME_RATE.into(), asn1::Value::Int(25))],
    )
    .unwrap();
    println!("modified Star Wars to 25fps");

    // --- equipment control ------------------------------------------
    println!("\n-- equipment control --");
    let studio = Eca::new("studio");
    let cam = studio.register(EquipmentClass::Camera, "cam-1");
    let mic = studio.register(EquipmentClass::Microphone, "mic-1");
    studio.register(EquipmentClass::Speaker, "spk-1");

    let mut producer = Eua::new(1);
    producer.add_site(&studio);
    producer.reserve("studio", cam).unwrap();
    producer.reserve("studio", mic).unwrap();
    producer
        .set_param("studio", cam, param::FRAME_RATE, 25)
        .unwrap();
    producer
        .set_param("studio", cam, param::BRIGHTNESS, 70)
        .unwrap();
    producer.activate("studio", cam).unwrap();
    producer.activate("studio", mic).unwrap();
    println!(
        "producer recording with {:?}",
        studio
            .list(None)
            .iter()
            .filter(|d| !matches!(d.state, equipment::DeviceState::Free))
            .map(|d| d.name.clone())
            .collect::<Vec<_>>()
    );

    // A competing user is locked out while the recording runs.
    let mut viewer = Eua::new(2);
    viewer.add_site(&studio);
    match viewer.reserve("studio", cam) {
        Err(e) => println!("viewer blocked as expected: {e}"),
        Ok(()) => unreachable!("camera is held by the producer"),
    }

    producer.release("studio", cam).unwrap();
    producer.release("studio", mic).unwrap();
    viewer.reserve("studio", cam).unwrap();
    println!("camera handed over to the viewer");
}
