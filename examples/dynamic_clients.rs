//! Dynamic client generation (the ref [2] Estelle enhancement).
//!
//! Base Estelle freezes the system-module population at start — the
//! paper (§4.1): "the number of `systemprocess` modules cannot be
//! changed at runtime, so the number of clients is fixed", with a
//! footnote pointing at the enhancement of Bredereke/Gotzhein [2].
//! This example turns that enhancement on and grows a video-on-demand
//! service while it runs: one client exists at start; four more join
//! live, each opening its own control connection and stream.
//!
//! Run with: `cargo run --example dynamic_clients`

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::SimDuration;

fn main() {
    let mut world = World::builder(77).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let first = world.add_client(&server, StackKind::EstellePS, vec![]);

    // The ref [2] switch. Without it, add_client after start() panics
    // with the base-Estelle frozen-population rule.
    world.enable_dynamic_clients();
    world.start();

    let mut entry = MovieEntry::new("Metropolis", "store");
    entry.frame_count = 50;
    world.seed_movie(&server, &entry);

    world.client_op(
        &first,
        McamOp::Associate {
            user: "static-0".into(),
        },
    );
    println!("static client associated (population at start: 1 client)");

    let mut receivers = Vec::new();
    let mut clients = vec![first];
    for i in 1..=4 {
        // A new workstation appears while the system runs.
        let late = world.add_client(&server, StackKind::EstellePS, vec![]);
        let rsp = world.client_op(
            &late,
            McamOp::Associate {
                user: format!("dynamic-{i}"),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
        println!("dynamic client {i} joined the running system and associated");

        let params = match world.client_op(
            &late,
            McamOp::SelectMovie {
                title: "Metropolis".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
            other => panic!("select failed: {other:?}"),
        };
        let rx = world.receiver_for(&late, &params, SimDuration::from_millis(60));
        world.client_op(&late, McamOp::Play { speed_pct: 100 });
        receivers.push(rx);
        clients.push(late);
    }

    world.run_for(SimDuration::from_secs(4));
    for (i, rx) in receivers.iter_mut().enumerate() {
        let frames = rx.poll(world.net.now()).len();
        println!("dynamic client {}: {frames} frames delivered", i + 1);
        assert_eq!(frames, 50);
    }

    let entities = world
        .rt
        .with_machine::<mcam::ServerRoot, _>(server.root, |r| r.entities.clone())
        .expect("server root exists");
    println!(
        "\nserver entities: {} (one per connection; {} of them created dynamically)",
        entities.len(),
        entities.len() - 1
    );
}
