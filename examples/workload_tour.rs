//! A tour of the workload compiler: declare a multi-phase scenario —
//! a diurnal trickle, a Zipf-skewed evening ramp, a channel-surfing
//! VCR storm, and a recording fleet riding alongside — compile it
//! into per-client agent scripts, inspect the schedule, and run it on
//! the World driver.
//!
//! Run with `cargo run --example workload_tour`.

use mcam::{McamOp, StackKind, World};
use netsim::SimDuration;
use workload::{Arrival, Behaviour, Phase, Popularity, TitleSpec, VcrMix, WorkloadSpec};

fn main() {
    // 1. Declare. A spec is plain data: a seed, a title catalogue,
    //    and phases pairing an arrival curve with a popularity model
    //    and a per-viewer behaviour. Nothing here touches the driver.
    let spec = WorkloadSpec::new("evening-at-the-video-server", 1994)
        .title(TitleSpec::new("Metropolis", 60, 1))
        .title(TitleSpec::new("Nosferatu", 90, 2))
        .title(TitleSpec::new("Sunrise", 120, 3))
        // Daytime: a slow diurnal trickle across the catalogue.
        .phase(Phase::new(
            "daytime",
            SimDuration::ZERO,
            Arrival::Diurnal {
                viewers: 6,
                duration: SimDuration::from_secs(8),
                trough_pct: 20,
            },
            Popularity::Zipf { exponent: 1.1 },
            Behaviour::Watch,
        ))
        // Evening: a ramp of viewers skewed onto the head title.
        .phase(Phase::new(
            "evening-ramp",
            SimDuration::from_secs(9),
            Arrival::Ramp {
                viewers: 8,
                duration: SimDuration::from_secs(4),
            },
            Popularity::Zipf { exponent: 1.3 },
            Behaviour::Watch,
        ))
        // Channel surfers: a rewind-heavy VCR storm on one title,
        // scheduled after the ramp so the phases don't contend.
        .phase(Phase::new(
            "surfers",
            SimDuration::from_secs(14),
            Arrival::Flash {
                viewers: 3,
                spacing: SimDuration::from_millis(120),
            },
            Popularity::Single("Sunrise".into()),
            Behaviour::VcrStorm {
                ops: 10,
                mix: VcrMix::rewind_heavy(),
                op_interval: SimDuration::from_millis(400),
                jump_frames: 500,
            },
        ))
        // A recording fleet may overlap anything: it creates fresh
        // titles instead of contending for the catalogue.
        .phase(Phase::new(
            "archivists",
            SimDuration::from_secs(2),
            Arrival::Flash {
                viewers: 2,
                spacing: SimDuration::from_secs(1),
            },
            Popularity::Single("Metropolis".into()),
            Behaviour::Record { frames: 250 },
        ));

    // 2. Compile. Validation is front-loaded (unknown titles,
    //    impossible rates, contending phases are errors here, not
    //    mid-run surprises); lowering is a pure function of
    //    (spec, seed).
    let compiled = spec.compile().expect("spec is well-formed");
    println!(
        "compiled '{}': {} titles, {} agents, {} ops, horizon {}",
        compiled.name,
        compiled.titles.len(),
        compiled.agents.len(),
        compiled.op_count(),
        compiled.horizon()
    );
    for agent in &compiled.agents {
        let seeks = agent
            .ops
            .iter()
            .filter(|op| matches!(op.op, McamOp::Seek { .. }))
            .count();
        println!(
            "  {}-{} starts {} on {:?}: {} ops ({} seeks)",
            agent.phase,
            agent.id,
            agent.start,
            agent.title,
            agent.ops.len(),
            seeks
        );
    }

    // Compiling twice yields the same schedule, op for op — specs
    // are replayable artifacts, not RNG snapshots.
    let again = spec.compile().expect("still well-formed");
    assert_eq!(compiled, again, "compilation must be deterministic");

    // 3. Run on the World driver and read the verdict off the
    //    hash-chained journal.
    let mut world = World::builder(1994).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let report = workload::run(&mut world, &server, &compiled);
    println!(
        "ran: {} agents, {} ops, {} admitted, {} rejected, horizon {}",
        report.agents, report.ops, report.admitted, report.rejected, report.horizon
    );
    assert_eq!(report.agents, compiled.agents.len());
    assert!(report.admitted > 0, "the evening must admit viewers");

    let journal = world.journal();
    journal.verify().expect("hash chain intact");
    println!(
        "journal: {} events, {} admissions, chain verified",
        journal.len(),
        journal.count(journal::kind::STREAM_ADMIT)
    );
}
