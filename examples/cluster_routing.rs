//! Cluster replication: a popular title is placed on K=2 of three
//! server machines, `SelectMovie` routes each viewer to the replica
//! whose admission controller has the most uncommitted disk
//! bandwidth, and only when *every* replica is saturated does a
//! viewer see a 503 — which clears as soon as someone releases.
//!
//! Run with `cargo run --example cluster_routing`.

use directory::MovieEntry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, RebalanceConfig, StackKind, World};
use netsim::{LinkConfig, SimDuration};
use store::{CachePolicy, DiskParams, StoreConfig};

fn main() {
    // Each server: one slow disk whose admission controller fits two
    // ~0.67 Mbit/s streams.
    let store_config = StoreConfig {
        disks: 1,
        block_size: 128 * 1024,
        cache_blocks: 64,
        policy: CachePolicy::Interval,
        disk: DiskParams {
            transfer_bytes_per_sec: 250_000,
            ..DiskParams::default()
        },
        ..StoreConfig::default()
    };
    let per_server = store_config.capacity_bps();

    let mut world = World::builder(42)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(2),
            SimDuration::from_micros(500),
            0.0,
        ))
        .store(store_config)
        .build();
    // This walkthrough is about *routing over a fixed replica set*:
    // park the control plane's load sampling beyond the demo's
    // horizon so the hot title is not rebalanced mid-story (that
    // behaviour has its own demo, `examples/hot_title_rebalance.rs`).
    let routing_only = RebalanceConfig {
        sample_interval: SimDuration::from_secs(3_600),
        ..RebalanceConfig::default()
    };
    let cluster = world.add_cluster(
        ClusterSpec::new("vod", 3, StackKind::EstellePS, Placement::round_robin(2))
            .rebalance(routing_only),
    );
    println!(
        "cluster: {} servers x {:.2} Mbit/s, K=2 replicas per movie",
        cluster.servers.len(),
        per_server as f64 / 1e6,
    );

    let viewers = ["ann", "ben", "col", "dee", "eva"];
    let clients: Vec<_> = viewers
        .iter()
        .enumerate()
        .map(|(i, user)| {
            let server = cluster.servers[i % cluster.servers.len()].clone();
            (
                *user,
                world.add_client(&server, StackKind::EstellePS, vec![]),
            )
        })
        .collect();
    world.start();

    let mut entry = MovieEntry::new("Metropolis", "placeholder");
    entry.frame_count = 8 * 25;
    let replicas = world.publish_replicated(&cluster, &entry);
    println!("published \"Metropolis\" on replicas {replicas:?}");

    for (user, client) in &clients {
        let rsp = world.client_op(
            client,
            McamOp::Associate {
                user: (*user).into(),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }

    // Five viewers want the same hot title; one server alone sustains
    // only two of them.
    let mut admitted = Vec::new();
    for (user, client) in &clients {
        match world.client_op(
            client,
            McamOp::SelectMovie {
                title: "Metropolis".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
                println!(
                    "{user}: admitted as stream {} on node-{}",
                    p.stream_id, p.provider_addr
                );
                admitted.push((*user, client.clone(), p));
            }
            Some(McamPdu::ErrorRsp { code, message }) => {
                println!("{user}: REJECTED ({code}) — {message}");
                assert_eq!(code, mcam::server::ERR_ADMISSION);
            }
            other => panic!("{user}: unexpected select outcome {other:?}"),
        }
    }
    assert_eq!(
        admitted.len(),
        4,
        "K=2 replicas double the single-server capacity of 2"
    );
    let providers: std::collections::BTreeSet<u32> =
        admitted.iter().map(|(_, _, p)| p.provider_addr).collect();
    assert_eq!(providers.len(), 2, "streams spread over both replicas");

    for (location, stats) in cluster.store_stats() {
        println!(
            "  {location}: {} streams, {:.2} of {:.2} Mbit/s committed",
            stats.open_streams,
            stats.committed_bps as f64 / 1e6,
            stats.capacity_bps as f64 / 1e6,
        );
    }

    // Play the first two viewers through the movie end to end.
    for (user, client, params) in admitted.iter().take(2) {
        let mut receiver = world.receiver_for(client, params, SimDuration::from_millis(80));
        let rsp = world.client_op(client, McamOp::Play { speed_pct: 100 });
        assert_eq!(rsp, Some(McamPdu::PlayRsp { ok: true }));
        world.run_for(SimDuration::from_secs(12));
        let frames = receiver.poll(world.net.now());
        println!(
            "{user}: received {} of {} frames from node-{}",
            frames.len(),
            params.movie.frame_count,
            params.provider_addr,
        );
        assert_eq!(frames.len() as u64, params.movie.frame_count);
    }

    // The refused viewer retries once a slot frees up: the router
    // sends them to whichever replica just gained bandwidth.
    let (leaver, leaver_client, leaver_params) = admitted.first().cloned().unwrap();
    let rsp = world.client_op(&leaver_client, McamOp::Deselect);
    assert_eq!(rsp, Some(McamPdu::DeselectMovieRsp));
    println!(
        "{leaver}: deselected, freeing node-{}",
        leaver_params.provider_addr
    );

    let (user, client) = &clients[4];
    match world.client_op(
        client,
        McamOp::SelectMovie {
            title: "Metropolis".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => {
            println!(
                "{user}: re-admitted on node-{} after the release",
                p.provider_addr
            );
            assert_eq!(p.provider_addr, leaver_params.provider_addr);
        }
        other => panic!("{user}: retry after release failed: {other:?}"),
    }
    println!("done: replication + load-aware routing scaled the hot title past one server");
}
