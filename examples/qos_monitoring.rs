//! QoS budgets on running Estelle systems (the §6 extension).
//!
//! The paper's conclusion: "One of the major problems of Estelle in a
//! real-time environment is that QoS parameters cannot be specified …
//! Non-realtime protocols such as MCAM also have QoS requirements,
//! e.g. maximum delay of an interaction." This example attaches such
//! requirements to two systems:
//!
//! 1. the §5.1 presentation+session stack — every hop is measured and
//!    shown to meet a 2 ms interaction budget (the stack consumes
//!    messages as fast as the virtual clock delivers them);
//! 2. an interactive MCAM-style user against a *batching* server that
//!    only wakes every 25 ms — queued requests age visibly, and a
//!    15 ms interaction budget is violated.
//!
//! Run with: `cargo run --example qos_monitoring`

use estelle::qos::QosSpec;
use estelle::sched::{run_sequential, SeqOptions};
use estelle::{
    downcast, impl_interaction, ip, IpIndex, ModuleKind, ModuleLabels, Runtime, StateId,
    StateMachine, Transition,
};
use harness::pstack::{build_ps_env, run_ps_env};
use netsim::SimDuration;

#[derive(Debug)]
struct Request(u32);
impl_interaction!(Request);

const S0: StateId = StateId(0);
const S1: StateId = StateId(1);
const IO: IpIndex = IpIndex(0);

/// Issues one management request every 10 ms, like a user clicking
/// through the generated X interface (§4.2). The Estelle `delay`
/// clause re-arms on a state change, so the machine ping-pongs
/// between two states.
#[derive(Debug)]
struct InteractiveUser {
    issued: u32,
    budget: u32,
}

impl StateMachine for InteractiveUser {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::spontaneous("click", S0, |m: &mut Self, ctx, _| {
                m.issued += 1;
                ctx.output(IO, Request(m.issued));
            })
            .provided(|m, _| m.issued < m.budget)
            .to(S1)
            .delay(SimDuration::from_millis(10)),
            Transition::spontaneous("rearm", S1, |_, _, _| {}).to(S0),
        ]
    }
}

/// A server that serves at most one request per 25 ms, so requests
/// queue up and age while it sleeps.
#[derive(Debug, Default)]
struct BatchingServer {
    served: u32,
    last: u32,
}

impl StateMachine for BatchingServer {
    fn num_ips(&self) -> usize {
        1
    }
    fn initial_state(&self) -> StateId {
        S0
    }
    fn transitions() -> Vec<Transition<Self>> {
        vec![
            Transition::on("serve", S0, IO, |m: &mut Self, _ctx, msg| {
                let req = downcast::<Request>(msg.unwrap()).unwrap();
                m.served += 1;
                m.last = req.0;
            })
            .to(S1)
            .delay(SimDuration::from_millis(25)),
            Transition::spontaneous("rearm", S1, |_, _, _| {}).to(S0),
        ]
    }
}

fn stack_measurement() {
    println!("--- 1. presentation+session stack under a 2ms interaction budget ---\n");
    let connections = 2;
    let data_requests = 50;
    let env = build_ps_env(connections, data_requests, 42);
    let monitor = env
        .rt
        .attach_qos(QosSpec::new().default_max_delay(SimDuration::from_millis(2)));
    let trace = run_ps_env(&env, data_requests);
    let report = monitor.report();
    let consumed: u64 = report.entries.iter().map(|e| e.consumed).sum();
    println!(
        "{} firings, {} interactions measured across {} interaction points",
        trace.records.len(),
        consumed,
        report.entries.len()
    );
    println!(
        "worst interaction delay: {}; within budget: {}\n",
        report.worst_delay(),
        report.all_within_budget()
    );
}

fn batching_server_violations() {
    println!("--- 2. interactive user vs 25ms batching server, 15ms budget ---\n");
    let (rt, _clock) = Runtime::sim();
    let user = rt
        .add_module(
            None,
            "user",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            InteractiveUser {
                issued: 0,
                budget: 20,
            },
        )
        .expect("fresh runtime");
    let server = rt
        .add_module(
            None,
            "server",
            ModuleKind::SystemProcess,
            ModuleLabels::default(),
            BatchingServer::default(),
        )
        .expect("fresh runtime");
    rt.connect(ip(user, IO), ip(server, IO))
        .expect("both ends fresh");

    let monitor = rt.attach_qos(QosSpec::new().max_delay(server, IO, SimDuration::from_millis(15)));
    rt.start().expect("valid spec");
    run_sequential(&rt, &SeqOptions::default());

    let served = rt
        .with_machine::<BatchingServer, _>(server, |s| s.served)
        .unwrap();
    let report = monitor.report();
    let entry = &report.entries[0];
    println!("served {served} requests");
    println!(
        "interaction delay: mean {}, max {} (budget {})",
        entry.mean_delay,
        entry.max_delay,
        SimDuration::from_millis(15)
    );
    println!("violations: {} of {}", entry.violations, entry.consumed);
    for v in report.violations.iter().take(3) {
        println!(
            "  e.g. {} waited {} at t={:?}",
            v.interaction, v.delay, v.at
        );
    }
    assert!(
        !report.all_within_budget(),
        "a 25ms batching interval must violate a 15ms budget"
    );
}

fn main() {
    stack_measurement();
    batching_server_violations();
}
