//! "From a formal description to a working multimedia system" — and
//! back: build the working system, then export the running module tree
//! as Estelle-flavoured text and derive the §4.4 deployment report
//! (which machine builds and starts which executable).
//!
//! Run with `cargo run --example formal_description`.

use estelle::deploy::DeploymentPlan;
use estelle::export::export_spec;
use mcam::{McamOp, StackKind, World};

fn main() {
    let mut world = World::builder(42).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let client_a = world.add_client(&server, StackKind::EstellePS, vec![]);
    let client_b = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    // Before the connection request the stacks do not exist yet.
    println!("--- specification before the connection request ---\n");
    println!("{}", export_spec(&world.rt, "mcam_system"));

    world.client_op(
        &client_a,
        McamOp::Associate {
            user: "spec".into(),
        },
    );
    world.client_op(
        &client_b,
        McamOp::Associate {
            user: "spec".into(),
        },
    );

    println!("--- specification after dynamic stack creation ---\n");
    println!("{}", export_spec(&world.rt, "mcam_system"));

    // §4.1: "In comments, we declare the location (i.e. a machine
    // name) where the module will be placed." §4.4 turns those
    // comments into per-machine builds and a start order.
    println!("--- §4.4 deployment ---\n");
    let plan = DeploymentPlan::new()
        .place(server.root, "ksr1")
        .place(client_a.root, "sun-ws-1")
        .place(client_b.root, "dec-ws-2")
        .launch_from("ksr1");
    let deployment = plan.resolve(&world.rt).expect("all system modules placed");
    println!("{}", deployment.render(&world.rt));
}
