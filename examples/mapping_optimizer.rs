//! Automatic module-to-processor mapping (paper ref [7]).
//!
//! The paper's final lesson: "the mapping of Estelle modules to tasks
//! and threads influences the performance of the runtime
//! implementation to a great extent. An algorithm for an optimal
//! mapping is currently under development." This example runs that
//! algorithm over a real protocol trace:
//!
//! 1. build a presentation+session environment with a *skewed* load —
//!    one busy connection and several light ones;
//! 2. extract the cost model (per-module work, communication matrix);
//! 3. compare the static policies (module-per-thread,
//!    connection-per-processor, layer-per-processor) with the
//!    optimizer's mapping.
//!
//! Run with: `cargo run --example mapping_optimizer`

use estelle::GroupingPolicy;
use harness::pstack::{build_ps_env_mixed, run_ps_env_mixed};
use ksim::{CostModel, Machine, OptimizeOptions, Overheads};

fn main() {
    let requests = [200u32, 25, 25, 25];
    let processors = 2;
    println!("workload: per-connection data requests {requests:?} on {processors} CPUs\n");

    let env = build_ps_env_mixed(&requests, 42);
    let trace = run_ps_env_mixed(&env, &requests);
    let overheads = Overheads::ksr1_like();
    let machine = Machine {
        processors,
        overheads,
    };

    // The cost model the optimizer sees.
    let model = CostModel::from_trace(&trace);
    println!(
        "cost model: {} modules, total work {}",
        model.modules.len(),
        model.total_work()
    );
    let clusters = model.clusters();
    println!("communication clusters (= connections): {}", clusters.len());
    for (i, cluster) in clusters.iter().enumerate() {
        println!(
            "  cluster {i}: {} modules, work {}",
            cluster.len(),
            model.group_work(cluster)
        );
    }
    println!();

    // Static policies vs. the optimizer.
    let baseline = ksim::simulate_sequential(&trace, overheads);
    println!("sequential baseline: {}\n", baseline.makespan);

    let policies: [(&str, GroupingPolicy); 3] = [
        ("module-per-thread", GroupingPolicy::PerModule),
        (
            "connection-per-processor",
            GroupingPolicy::ByConnection {
                units: processors as u32,
            },
        ),
        (
            "layer-per-processor",
            GroupingPolicy::ByLayer {
                units: processors as u32,
            },
        ),
    ];
    for (name, policy) in policies {
        let r = ksim::simulate(&trace, policy, &machine);
        println!(
            "{name:26} makespan {:>12}  speedup {:>5.2}  imbalance {:.2}",
            r.makespan.to_string(),
            ksim::speedup(&baseline, &r),
            r.imbalance(),
        );
    }

    let optimized = ksim::optimize(
        &trace,
        &machine,
        OptimizeOptions {
            units: processors,
            max_rounds: 6,
        },
    );
    println!(
        "{:26} makespan {:>12}  speedup {:>5.2}  imbalance {:.2}",
        "optimizer (ref [7])",
        optimized.report.makespan.to_string(),
        ksim::speedup(&baseline, &optimized.report),
        optimized.report.imbalance(),
    );
    println!(
        "\noptimizer: {} rounds, {} candidate replays",
        optimized.rounds, optimized.evaluations
    );
    println!("chosen assignment (module -> unit):");
    for (m, u) in optimized.mapping.pairs() {
        println!("  {m:?} -> {u:?}");
    }
}
