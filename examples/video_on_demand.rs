//! Video-on-demand: the Fig. 2 configuration — multiple clients pull
//! different movies from one server machine simultaneously, while a
//! lossy CM network degrades streams but never the control protocol.
//!
//! Run with `cargo run --example video_on_demand`.

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::{LinkConfig, SimDuration};

fn main() {
    let mut world = World::builder(1994)
        .stream_link(LinkConfig::lossy(
            SimDuration::from_millis(4),
            SimDuration::from_millis(1),
            0.03,
        ))
        .build();
    let server = world.add_server("vod", StackKind::EstellePS);
    // One client on the generated stack, one on the hand-coded ISODE
    // stack — the paper's conformance-comparison setup.
    let clients = [
        (
            "alice",
            world.add_client(&server, StackKind::EstellePS, vec![]),
        ),
        ("bob", world.add_client(&server, StackKind::Isode, vec![])),
        (
            "carol",
            world.add_client(&server, StackKind::EstellePS, vec![]),
        ),
    ];
    world.start();

    // The catalogue.
    for (title, seconds) in [("Metropolis", 10u64), ("Nosferatu", 8), ("M", 6)] {
        let mut entry = MovieEntry::new(title, "vod-store");
        entry.frame_count = seconds * 25;
        world.seed_movie(&server, &entry);
    }

    let mut sessions = Vec::new();
    for ((user, client), title) in clients.iter().zip(["Metropolis", "Nosferatu", "M"]) {
        let rsp = world.client_op(
            client,
            McamOp::Associate {
                user: (*user).into(),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
        let listing = world.client_op(
            client,
            McamOp::List {
                contains: String::new(),
            },
        );
        if let Some(McamPdu::ListMoviesRsp { titles }) = &listing {
            println!("{user}: catalogue = {titles:?}");
        }
        let params = match world.client_op(
            client,
            McamOp::SelectMovie {
                title: title.into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
            other => panic!("{user} could not select {title}: {other:?}"),
        };
        let receiver = world.receiver_for(client, &params, SimDuration::from_millis(80));
        let rsp = world.client_op(client, McamOp::Play { speed_pct: 100 });
        assert_eq!(rsp, Some(McamPdu::PlayRsp { ok: true }));
        println!("{user}: playing {title} (stream {})", params.stream_id);
        sessions.push((user, client, receiver, params));
    }

    // Let all three streams run out.
    world.run_for(SimDuration::from_secs(12));

    for (user, client, receiver, params) in &mut sessions {
        let frames = receiver.poll(world.net.now());
        let st = &receiver.stats;
        println!(
            "{user}: {} of {} frames ({}% delivered), jitter {:.0} us, {} late",
            frames.len(),
            params.movie.frame_count,
            (st.delivery_ratio() * 100.0).round(),
            st.jitter_us,
            st.late,
        );
        // Control stays perfectly reliable even though streams lose
        // packets (Table 1's dichotomy).
        let rsp = world.client_op(client, McamOp::Deselect);
        assert_eq!(rsp, Some(McamPdu::DeselectMovieRsp));
    }
    println!(
        "all CM streams closed; server still serving {} connections",
        sessions.len()
    );
}
