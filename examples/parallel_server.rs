//! Parallel server: regenerates the paper's §5 measurements on the
//! simulated KSR1 — speedup vs data requests, grouping, and the
//! connection-vs-layer mapping.
//!
//! Run with `cargo run --release --example parallel_server`.

use ksim::Overheads;

fn main() {
    println!("-- E1: sequential vs parallel (2 connections, module-per-thread) --\n");
    let (table, speedups) =
        harness::speedup_experiment(2, &[25, 50, 100, 500], Overheads::osf1_threads());
    println!("{table}");
    println!(
        "paper: 1.4-2.0; measured {:.2}-{:.2}\n",
        speedups.iter().cloned().fold(f64::MAX, f64::min),
        speedups.iter().cloned().fold(0.0_f64, f64::max),
    );

    println!("-- E2: grouping (units = processors) --\n");
    let (table, _) = harness::grouping_experiment(8, 50, &[2, 4, 8]);
    println!("{table}");

    println!("-- E7: connection-per-processor vs layer-per-processor --\n");
    let (table, s_conn, s_layer) = harness::conn_vs_layer_experiment(4, 100);
    println!("{table}");
    println!("connection mapping {s_conn:.2}x vs layer mapping {s_layer:.2}x");
}
