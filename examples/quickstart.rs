//! Quickstart: one client, one server — create a movie, select it,
//! play it, watch the frames arrive.
//!
//! Run with `cargo run --example quickstart`.

use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::SimDuration;

fn main() {
    // The world: a client workstation and a server machine connected
    // by a reliable control pipe plus a jittery CM datagram network.
    let mut world = World::builder(7).build();
    let server = world.add_server("mannheim", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();

    // Associate: the client root creates the MCAM module and the
    // Estelle presentation+session stack on demand, then the
    // AssociateReq rides inside the P-CONNECT user data.
    let rsp = world.client_op(
        &client,
        McamOp::Associate {
            user: "quickstart".into(),
        },
    );
    println!("associate      -> {rsp:?}");

    let rsp = world.client_op(
        &client,
        McamOp::CreateMovie {
            title: "Big Buck KSR".into(),
            format: "XMovie-24".into(),
            frame_rate: 25,
            frame_count: 125, // five seconds
        },
    );
    println!("create movie   -> {rsp:?}");

    let params = match world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "Big Buck KSR".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("select failed: {other:?}"),
    };
    println!(
        "select movie   -> stream {} from node-{} ({} frames @ {} fps)",
        params.stream_id, params.provider_addr, params.movie.frame_count, params.movie.frame_rate
    );

    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(50));
    let rsp = world.client_op(&client, McamOp::Play { speed_pct: 100 });
    println!("play           -> {rsp:?}");

    world.run_for(SimDuration::from_secs(6));
    let frames = receiver.poll(world.net.now());
    println!(
        "stream done    -> {} frames played, {} lost, jitter {:.0} us, mean transit {:.1} ms",
        frames.len(),
        receiver.stats.lost,
        receiver.stats.jitter_us,
        receiver.stats.mean_transit_us / 1000.0
    );
    assert_eq!(frames.len(), 125);

    let rsp = world.client_op(&client, McamOp::Release);
    println!("release        -> {rsp:?}");
}
