//! F3 — Fig. 3, mapping MCAM to Estelle modules: the client root
//! creates application and MCAM modules dynamically; the lower stack
//! is either generated presentation+session+wire modules or a single
//! external-body ISODE interface module.

use mcam::{ClientRoot, McamOp, McamPdu, StackKind, World};

fn module_names(world: &World, parent: estelle::ModuleId) -> Vec<(String, estelle::ModuleKind)> {
    world
        .rt
        .children_of(parent)
        .into_iter()
        .map(|c| {
            let m = world.rt.module_meta(c).unwrap();
            (m.name, m.kind)
        })
        .collect()
}

// keep the import list honest

#[test]
fn estelle_ps_stack_mapping() {
    let mut world = World::builder(3).build();
    let server = world.add_server("map", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    // Before the connection request: only the application exists.
    let before = module_names(&world, client.root);
    assert_eq!(before.len(), 1);
    assert!(before[0].0.starts_with("app-"));

    world.client_op(&client, McamOp::Associate { user: "map".into() });

    // After: app + mca + pres + sess + wire, all process modules under
    // the system-process root.
    let after = module_names(&world, client.root);
    let names: Vec<&str> = after.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["app-0", "mca-0", "pres-0", "sess-0", "wire-0"]);
    assert!(after
        .iter()
        .all(|(_, k)| *k == estelle::ModuleKind::Process));
    let root_meta = world.rt.module_meta(client.root).unwrap();
    assert_eq!(root_meta.kind, estelle::ModuleKind::SystemProcess);

    // Layer labels drive the grouping policies.
    let layers: Vec<Option<u16>> = world
        .rt
        .children_of(client.root)
        .into_iter()
        .map(|c| world.rt.module_meta(c).unwrap().labels.layer)
        .collect();
    assert_eq!(layers, vec![Some(0), Some(0), Some(1), Some(2), Some(3)]);
}

#[test]
fn isode_stack_mapping_uses_single_interface_module() {
    let mut world = World::builder(4).build();
    let server = world.add_server("map", StackKind::Isode);
    let client = world.add_client(&server, StackKind::Isode, vec![]);
    world.start();
    world.client_op(&client, McamOp::Associate { user: "map".into() });
    let after = module_names(&world, client.root);
    let names: Vec<&str> = after.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        vec!["app-0", "mca-0", "isode-0"],
        "MCAM module directly on top of the ISODE presentation interface"
    );
}

#[test]
fn client_root_records_created_modules() {
    let mut world = World::builder(5).build();
    let server = world.add_server("map", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    let rsp = world.client_op(&client, McamOp::Associate { user: "map".into() });
    assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    let (app, mca) = world
        .rt
        .with_machine::<ClientRoot, _>(client.root, |r| (r.app, r.mca))
        .unwrap();
    assert!(app.is_some() && mca.is_some());
    // A second Associate travels as an in-band request and the server
    // rejects it: the association already exists.
    let rsp = world.client_op(
        &client,
        McamOp::Associate {
            user: "again".into(),
        },
    );
    assert_eq!(
        rsp,
        Some(McamPdu::ErrorRsp {
            code: 902,
            message: "already associated".into()
        })
    );
}
