//! VCR trick modes through the full protocol: seek, fast playback,
//! stop-rewind — the paper's "control (playback or record)" service
//! beyond plain play — exercised against both seeded synthetic movies
//! and a movie that went through the `Record` write path (whose
//! frames stream back off the striped store's recorded blocks).

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::SimDuration;

fn setup(seed: u64, title: &str, frames: u64) -> (World, mcam::ClientHandle, mcam::StreamParams) {
    let mut world = World::builder(seed).build();
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(&client, McamOp::Associate { user: "vcr".into() });
    let mut entry = MovieEntry::new(title, "x");
    entry.frame_count = frames;
    world.seed_movie(&server, &entry);
    let params = select(&world, &client, title);
    (world, client, params)
}

/// Like [`setup`], but the movie is *recorded* through the write path
/// first (camera capture → striped store blocks → directory
/// finalization) instead of seeded, so every trick-mode read below
/// runs against store-backed recorded blocks.
fn setup_recorded(
    seed: u64,
    title: &str,
    frames: u64,
) -> (World, mcam::ClientHandle, mcam::StreamParams) {
    let mut world = World::builder(seed).build();
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(&client, McamOp::Associate { user: "vcr".into() });
    let rsp = world.client_op(
        &client,
        McamOp::Record {
            title: title.into(),
            frames,
        },
    );
    assert_eq!(rsp, Some(McamPdu::RecordRsp { ok: true }), "record failed");
    // The selected stream must read the recorded block map, not a
    // fresh synthetic stripe.
    let store = &server.services.store;
    assert!(store.stats().blocks_recorded > 0, "record used the store");
    let params = select(&world, &client, title);
    (world, client, params)
}

fn select(world: &World, client: &mcam::ClientHandle, title: &str) -> mcam::StreamParams {
    match world.client_op(
        client,
        McamOp::SelectMovie {
            title: title.into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    }
}

#[test]
fn seek_skips_to_the_requested_frame() {
    let (world, client, params) = setup(61, "Seekable", 100);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    assert_eq!(
        world.client_op(&client, McamOp::Seek { frame: 60 }),
        Some(McamPdu::SeekRsp { ok: true })
    );
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(5));
    let played = rx.poll(world.net.now());
    assert_eq!(
        played.len(),
        40,
        "only frames 60..100 remain after the seek"
    );
    // Media timestamps start at the seek target, not zero.
    let first_ts = played.first().unwrap().timestamp_us;
    assert_eq!(first_ts, 60 * 40_000, "40ms frames: frame 60 is at 2.4s");
}

#[test]
fn double_speed_halves_the_wall_time() {
    let (world, client, params) = setup(62, "Fast", 100);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 200 });
    // 100 frames at 50 fps = 2s (plus delivery tails).
    world.run_for(SimDuration::from_millis(2600));
    let played = rx.poll(world.net.now());
    assert_eq!(played.len(), 100, "double speed finishes the movie in ~2s");
}

#[test]
fn quarter_speed_is_clamped_and_slow() {
    let (world, client, params) = setup(63, "Slow", 100);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 25 });
    // At 25% speed (6.25 fps), 2 seconds yield ~12 frames.
    world.run_for(SimDuration::from_secs(2));
    let played = rx.poll(world.net.now());
    assert!(
        (8..=20).contains(&played.len()),
        "quarter speed plays ~12 frames in 2s, got {}",
        played.len()
    );
}

#[test]
fn stop_rewinds_to_the_beginning() {
    let (world, client, params) = setup(64, "Rewind", 50);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(
        world.client_op(&client, McamOp::Stop),
        Some(McamPdu::StopRsp)
    );
    let first_run = rx.poll(world.net.now()).len();
    assert!(
        first_run >= 20,
        "about a second of frames before the stop: {first_run}"
    );
    assert!(first_run < 50, "the stop interrupted playback");
    // Play again: the movie restarts from frame 0 and plays to the
    // end. A frame or two from the first run may still be in flight
    // at the stop and drain into this poll.
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(4));
    let second_run = rx.poll(world.net.now());
    assert!(
        (50..=55).contains(&second_run.len()),
        "full movie after the rewind (plus stragglers): {}",
        second_run.len()
    );
    // The rewind is visible as a frame-0 timestamp appearing again.
    assert!(
        second_run.iter().any(|f| f.timestamp_us == 0),
        "restart must replay frame 0"
    );
    // And the end of the movie is reached.
    assert!(second_run.iter().any(|f| f.timestamp_us == 49 * 40_000));
}

#[test]
fn seek_works_on_a_recorded_movie() {
    let (world, client, params) = setup_recorded(71, "HomeSeek", 100);
    assert_eq!(
        params.movie.frame_count, 100,
        "entry finalized at 100 frames"
    );
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    assert_eq!(
        world.client_op(&client, McamOp::Seek { frame: 60 }),
        Some(McamPdu::SeekRsp { ok: true })
    );
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(5));
    let played = rx.poll(world.net.now());
    assert_eq!(
        played.len(),
        40,
        "only frames 60..100 of the recording remain after the seek"
    );
    assert_eq!(played.first().unwrap().timestamp_us, 60 * 40_000);
}

#[test]
fn fast_forward_works_on_a_recorded_movie() {
    let (world, client, params) = setup_recorded(72, "HomeFast", 100);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 200 });
    world.run_for(SimDuration::from_millis(2600));
    let played = rx.poll(world.net.now());
    assert_eq!(
        played.len(),
        100,
        "double speed finishes the recorded movie in ~2s"
    );
}

#[test]
fn pause_and_resume_work_on_a_recorded_movie() {
    let (world, client, params) = setup_recorded(73, "HomePause", 75);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(
        world.client_op(&client, McamOp::Pause),
        Some(McamPdu::PauseRsp)
    );
    let before_pause = rx.poll(world.net.now()).len();
    assert!(
        (20..50).contains(&before_pause),
        "about a second of recorded frames before the pause: {before_pause}"
    );
    // Paused: nothing beyond the frames already in flight.
    world.run_for(SimDuration::from_secs(1));
    let during_pause = rx.poll(world.net.now()).len();
    assert!(during_pause <= 2, "pause stops the stream ({during_pause})");
    // Resume: the rest of the recording arrives.
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(4));
    let tail = rx.poll(world.net.now());
    assert!(
        before_pause + during_pause + tail.len() >= 75,
        "the whole recording plays across the pause ({before_pause} + {during_pause} + {})",
        tail.len()
    );
    assert!(tail.iter().any(|f| f.timestamp_us == 74 * 40_000));
}

#[test]
fn stop_rewinds_a_recorded_movie() {
    let (world, client, params) = setup_recorded(74, "HomeRewind", 50);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(
        world.client_op(&client, McamOp::Stop),
        Some(McamPdu::StopRsp)
    );
    rx.poll(world.net.now());
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(4));
    let second_run = rx.poll(world.net.now());
    assert!(
        second_run.iter().any(|f| f.timestamp_us == 0),
        "restart must replay the recording's frame 0"
    );
    assert!(second_run.iter().any(|f| f.timestamp_us == 49 * 40_000));
}
