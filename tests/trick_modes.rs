//! VCR trick modes through the full protocol: seek, fast playback,
//! stop-rewind — the paper's "control (playback or record)" service
//! beyond plain play.

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::SimDuration;

fn setup(seed: u64, title: &str, frames: u64) -> (World, mcam::ClientHandle, mcam::StreamParams) {
    let mut world = World::new(seed);
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(&client, McamOp::Associate { user: "vcr".into() });
    let mut entry = MovieEntry::new(title, "x");
    entry.frame_count = frames;
    world.seed_movie(&server, &entry);
    let params = match world.client_op(
        &client,
        McamOp::SelectMovie {
            title: title.into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    (world, client, params)
}

#[test]
fn seek_skips_to_the_requested_frame() {
    let (world, client, params) = setup(61, "Seekable", 100);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    assert_eq!(
        world.client_op(&client, McamOp::Seek { frame: 60 }),
        Some(McamPdu::SeekRsp { ok: true })
    );
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(5));
    let played = rx.poll(world.net.now());
    assert_eq!(
        played.len(),
        40,
        "only frames 60..100 remain after the seek"
    );
    // Media timestamps start at the seek target, not zero.
    let first_ts = played.first().unwrap().timestamp_us;
    assert_eq!(first_ts, 60 * 40_000, "40ms frames: frame 60 is at 2.4s");
}

#[test]
fn double_speed_halves_the_wall_time() {
    let (world, client, params) = setup(62, "Fast", 100);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 200 });
    // 100 frames at 50 fps = 2s (plus delivery tails).
    world.run_for(SimDuration::from_millis(2600));
    let played = rx.poll(world.net.now());
    assert_eq!(played.len(), 100, "double speed finishes the movie in ~2s");
}

#[test]
fn quarter_speed_is_clamped_and_slow() {
    let (world, client, params) = setup(63, "Slow", 100);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 25 });
    // At 25% speed (6.25 fps), 2 seconds yield ~12 frames.
    world.run_for(SimDuration::from_secs(2));
    let played = rx.poll(world.net.now());
    assert!(
        (8..=20).contains(&played.len()),
        "quarter speed plays ~12 frames in 2s, got {}",
        played.len()
    );
}

#[test]
fn stop_rewinds_to_the_beginning() {
    let (world, client, params) = setup(64, "Rewind", 50);
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(
        world.client_op(&client, McamOp::Stop),
        Some(McamPdu::StopRsp)
    );
    let first_run = rx.poll(world.net.now()).len();
    assert!(
        first_run >= 20,
        "about a second of frames before the stop: {first_run}"
    );
    assert!(first_run < 50, "the stop interrupted playback");
    // Play again: the movie restarts from frame 0 and plays to the
    // end. A frame or two from the first run may still be in flight
    // at the stop and drain into this poll.
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(4));
    let second_run = rx.poll(world.net.now());
    assert!(
        (50..=55).contains(&second_run.len()),
        "full movie after the rewind (plus stragglers): {}",
        second_run.len()
    );
    // The rewind is visible as a frame-0 timestamp appearing again.
    assert!(
        second_run.iter().any(|f| f.timestamp_us == 0),
        "restart must replay frame 0"
    );
    // And the end of the movie is reached.
    assert!(second_run.iter().any(|f| f.timestamp_us == 49 * 40_000));
}
