//! Failure injection: bursty stream loss, directory faults through the
//! protocol, and equipment contention.

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::{DelayModel, LinkConfig, LossModel, SimDuration};

#[test]
fn bursty_gilbert_elliott_loss_on_the_stream() {
    let cfg = LinkConfig {
        delay: DelayModel::Jittered {
            mean: SimDuration::from_millis(3),
            jitter: SimDuration::from_millis(1),
        },
        loss: LossModel::GilbertElliott {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 0.8,
        },
        bandwidth_bps: None,
        fifo: false,
    };
    let mut world = World::builder(97).stream_link(cfg).build();
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(
        &client,
        McamOp::Associate {
            user: "burst".into(),
        },
    );
    let mut entry = MovieEntry::new("Bursty", "x");
    entry.frame_count = 250;
    world.seed_movie(&server, &entry);
    let params = match world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "Bursty".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(80));
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(12));
    let played = receiver.poll(world.net.now());
    assert!(receiver.stats.lost > 0, "bursts must cost frames");
    assert!(
        played.len() > 150,
        "stream survives bursts: {}",
        played.len()
    );
    // Control protocol still works afterwards.
    assert_eq!(
        world.client_op(&client, McamOp::Stop),
        Some(McamPdu::StopRsp)
    );
}

#[test]
fn directory_faults_surface_as_protocol_errors_not_hangs() {
    let mut world = World::builder(98).build();
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(
        &client,
        McamOp::Associate {
            user: "fault".into(),
        },
    );
    // Delete a movie that does not exist.
    assert_eq!(
        world.client_op(
            &client,
            McamOp::DeleteMovie {
                title: "Ghost".into()
            }
        ),
        Some(McamPdu::DeleteMovieRsp { ok: false })
    );
    // Modify a movie that does not exist.
    assert_eq!(
        world.client_op(
            &client,
            McamOp::Modify {
                title: "Ghost".into(),
                puts: vec![]
            }
        ),
        Some(McamPdu::ModifyAttrsRsp { ok: false })
    );
    // Select a movie whose directory entry is corrupt (schema error).
    let dn: directory::Dn = "o=movies/cn=Broken".parse().unwrap();
    let mut attrs = MovieEntry::new("Broken", "x").to_attrs();
    attrs.remove(directory::attr::FRAME_RATE);
    server.services.dua.add(dn, attrs).unwrap();
    assert_eq!(
        world.client_op(
            &client,
            McamOp::SelectMovie {
                title: "Broken".into()
            }
        ),
        Some(McamPdu::SelectMovieRsp { params: None })
    );
    // The association is still healthy.
    assert!(matches!(
        world.client_op(
            &client,
            McamOp::List {
                contains: String::new()
            }
        ),
        Some(McamPdu::ListMoviesRsp { .. })
    ));
}

#[test]
fn equipment_contention_fails_record_cleanly() {
    let mut world = World::builder(99).build();
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(&client, McamOp::Associate { user: "rec".into() });
    // A rival user (different client id) grabs the site's only camera
    // out-of-band.
    let site = server.services.site.clone();
    let cams = server
        .services
        .eua
        .list(&site, Some(equipment::EquipmentClass::Camera))
        .unwrap();
    let mut rival = equipment::Eua::new(42);
    rival.add_site(&server.services.eca);
    rival.reserve(&site, cams[0].id).expect("rival reservation");
    // Now the protocol-level record cannot acquire a camera.
    assert_eq!(
        world.client_op(
            &client,
            McamOp::Record {
                title: "Blocked".into(),
                frames: 10
            }
        ),
        Some(McamPdu::RecordRsp { ok: false })
    );
    // Release and retry succeeds.
    rival.release(&site, cams[0].id).unwrap();
    assert_eq!(
        world.client_op(
            &client,
            McamOp::Record {
                title: "Unblocked".into(),
                frames: 10
            }
        ),
        Some(McamPdu::RecordRsp { ok: true })
    );
}
