//! F1 — Fig. 1, the MCAM functional model: each MCAM instance consists
//! of the four agents (MCA, DUA, SUA, EUA); the directory, equipment
//! and stream-provider levels sit behind them.

use mcam::{McamOp, McamPdu, ServerMca, StackKind, World};
use netsim::SimTime;

#[test]
fn server_entity_has_the_four_agents() {
    let mut world = World::builder(1).build();
    let server = world.add_server("fm", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    let rsp = world.client_op(&client, McamOp::Associate { user: "f1".into() });
    assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));

    // The server root spawned one entity; its MCA has exactly the
    // three sibling agents of Fig. 3 as children.
    let entities = world
        .rt
        .with_machine::<mcam::ServerRoot, _>(server.root, |r| r.entities.clone())
        .unwrap();
    assert_eq!(entities.len(), 1);
    let mca = entities[0];
    let children = world.rt.children_of(mca);
    let names: Vec<String> = children
        .iter()
        .map(|&c| world.rt.module_meta(c).unwrap().name)
        .collect();
    assert_eq!(names, vec!["dua", "sua", "eua"]);
    for c in &children {
        let meta = world.rt.module_meta(*c).unwrap();
        assert_eq!(meta.kind, estelle::ModuleKind::Process);
        assert_eq!(meta.parent, Some(mca));
    }
    // The MCA itself runs the protocol (it processed the association).
    let user = world
        .rt
        .with_machine::<ServerMca, _>(mca, |m| m.user.clone())
        .unwrap();
    assert_eq!(user, Some("f1".to_string()));
}

#[test]
fn directory_and_equipment_reachable_through_agents() {
    let mut world = World::builder(2).build();
    let server = world.add_server("fm", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(&client, McamOp::Associate { user: "f1".into() });

    // Directory level via DUA.
    let rsp = world.client_op(
        &client,
        McamOp::CreateMovie {
            title: "ViaDua".into(),
            format: "XMovie-24".into(),
            frame_rate: 25,
            frame_count: 10,
        },
    );
    assert_eq!(rsp, Some(McamPdu::CreateMovieRsp { ok: true }));
    // Visible directly in the DSA behind the agent.
    let hits = server
        .services
        .dua
        .search(
            &server.services.base,
            directory::Scope::Subtree,
            &directory::Filter::eq_str(directory::attr::TITLE, "ViaDua"),
        )
        .unwrap();
    assert_eq!(hits.len(), 1);

    // Equipment level via EUA (record acquires the camera).
    let rsp = world.client_op(
        &client,
        McamOp::Record {
            title: "Rec".into(),
            frames: 10,
        },
    );
    assert_eq!(rsp, Some(McamPdu::RecordRsp { ok: true }));

    // Stream level via SUA.
    let rsp = world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "ViaDua".into(),
        },
    );
    assert!(matches!(
        rsp,
        Some(McamPdu::SelectMovieRsp { params: Some(_) })
    ));
    assert_eq!(server.services.sps.stream_count(), 1);
    world.run_until_quiet(SimTime::MAX);
}
