//! Stress and fault-injection scenarios beyond `failure_injection.rs`:
//! heavy packet reordering on the CM stream, association churn,
//! many-client load, pause/resume under loss, X.500 referral
//! failures, and a combined bursty-loss + server-crash gauntlet.

use directory::{Attrs, DirError, Dn, Dsa, Dua, Filter, MovieEntry, Scope};
use mcam::agents::source_for_entry;
use mcam::{ClusterSpec, McamOp, McamPdu, Placement, StackKind, World};
use netsim::{DelayModel, LinkConfig, LossModel, NetAddr, SimDuration};

/// A violently reordering (non-FIFO, high-jitter) but lossless link:
/// the playout buffer must restore frame order.
#[test]
fn heavy_reorder_stream_plays_in_order() {
    let cfg = LinkConfig {
        delay: DelayModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(70),
        },
        loss: LossModel::bernoulli(0.0),
        bandwidth_bps: None,
        fifo: false,
    };
    let mut world = World::builder(31).stream_link(cfg).build();
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(
        &client,
        McamOp::Associate {
            user: "reorder".into(),
        },
    );
    let mut entry = MovieEntry::new("Shuffled", "x");
    entry.frame_count = 120;
    world.seed_movie(&server, &entry);
    let params = match world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "Shuffled".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    // Playout delay larger than the worst-case network delay: nothing
    // should be late, and order must be restored.
    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(120));
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(10));
    let played = receiver.poll(world.net.now());
    assert_eq!(played.len(), 120, "lossless link delivers every frame");
    let seqs: Vec<u32> = played.iter().map(|f| f.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "playout buffer must undo network reordering");
    assert_eq!(receiver.stats.late, 0, "playout delay absorbs the jitter");
    assert!(
        receiver.stats.jitter_us > 0.0,
        "jitter was actually present"
    );
}

/// Release the association and associate again on the same client:
/// the dynamically created stack modules are torn down and rebuilt.
#[test]
fn association_churn_rebuilds_the_stack() {
    let mut world = World::builder(32).build();
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    for round in 0..3 {
        assert_eq!(
            world.client_op(
                &client,
                McamOp::Associate {
                    user: format!("round-{round}")
                }
            ),
            Some(McamPdu::AssociateRsp { accepted: true }),
            "associate round {round}"
        );
        // Do some work on the fresh association.
        assert!(matches!(
            world.client_op(
                &client,
                McamOp::List {
                    contains: String::new()
                }
            ),
            Some(McamPdu::ListMoviesRsp { .. })
        ));
        assert_eq!(
            world.client_op(&client, McamOp::Release),
            Some(McamPdu::ReleaseRsp),
            "release round {round}"
        );
    }
}

/// Ten clients with mixed stack kinds all transact concurrently.
#[test]
fn ten_clients_mixed_stacks() {
    let mut world = World::builder(33).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let mut clients = Vec::new();
    for i in 0..10 {
        let stack = if i % 2 == 0 {
            StackKind::EstellePS
        } else {
            StackKind::Isode
        };
        clients.push(world.add_client(&server, stack, vec![]));
    }
    world.start();
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(
            world.client_op(
                c,
                McamOp::Associate {
                    user: format!("u{i}")
                }
            ),
            Some(McamPdu::AssociateRsp { accepted: true })
        );
    }
    // Each client creates its own movie...
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(
            world.client_op(
                c,
                McamOp::CreateMovie {
                    title: format!("Movie-{i}"),
                    format: "XMovie-24".into(),
                    frame_rate: 25,
                    frame_count: 10,
                },
            ),
            Some(McamPdu::CreateMovieRsp { ok: true })
        );
    }
    // ... and sees everyone else's through the shared directory.
    for c in &clients {
        match world.client_op(
            c,
            McamOp::List {
                contains: "Movie-".into(),
            },
        ) {
            Some(McamPdu::ListMoviesRsp { titles }) => assert_eq!(titles.len(), 10),
            other => panic!("{other:?}"),
        }
    }
    let entities = world
        .rt
        .with_machine::<mcam::ServerRoot, _>(server.root, |r| r.entities.clone())
        .unwrap();
    assert_eq!(
        entities.len(),
        10,
        "one server entity per client connection"
    );
}

/// Pause stops frame flow, resume continues it, under mild loss.
#[test]
fn pause_resume_under_loss() {
    let cfg = LinkConfig::lossy(
        SimDuration::from_millis(2),
        SimDuration::from_micros(300),
        0.02,
    );
    let mut world = World::builder(34).stream_link(cfg).build();
    let server = world.add_server("s", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(&client, McamOp::Associate { user: "vcr".into() });
    let mut entry = MovieEntry::new("Pausable", "x");
    entry.frame_count = 500;
    world.seed_movie(&server, &entry);
    let params = match world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "Pausable".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    let mut receiver = world.receiver_for(&client, &params, SimDuration::from_millis(60));
    world.client_op(&client, McamOp::Play { speed_pct: 100 });
    world.run_for(SimDuration::from_secs(2));
    assert_eq!(
        world.client_op(&client, McamOp::Pause),
        Some(McamPdu::PauseRsp)
    );
    let before_pause = receiver.poll(world.net.now()).len();
    assert!(before_pause > 0, "some frames played before the pause");
    // While paused, (almost) nothing new arrives — allow frames
    // already in flight/playout buffer to drain.
    world.run_for(SimDuration::from_secs(2));
    let during_pause = receiver.poll(world.net.now()).len();
    assert!(
        during_pause <= 10,
        "paused stream must not keep flowing: {during_pause} frames"
    );
    // Resume and finish.
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(30));
    let after_resume = receiver.poll(world.net.now()).len();
    assert!(after_resume > 100, "stream resumed: {after_resume} frames");
    assert_eq!(
        world.client_op(&client, McamOp::Stop),
        Some(McamPdu::StopRsp)
    );
}

/// The combined gauntlet: Gilbert–Elliott bursty loss on the CM
/// network, a referral fan-out that re-homes every client's control
/// association, and then one server crash mid-stream. Every in-flight
/// stream on the dead machine fails over through the referral
/// follower (the surviving-stream fraction is 100%), and no receiver
/// ever sees a frame twice — bursty loss plus failover may drop
/// frames, but must never duplicate them.
#[test]
fn bursty_loss_crash_and_referral_fanout() {
    let cfg = LinkConfig {
        delay: DelayModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(8),
        },
        loss: LossModel::GilbertElliott {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 0.8,
        },
        bandwidth_bps: None,
        fifo: true,
    };
    let mut world = World::builder(37).stream_link(cfg).build();
    let cluster = world.add_cluster(ClusterSpec::new(
        "vod",
        4,
        StackKind::EstellePS,
        Placement::round_robin(2),
    ));
    let a = cluster.servers[0].services.sps.location();
    let b = cluster.servers[1].services.sps.location();
    let clients: Vec<_> = (0..8)
        .map(|_| world.add_client(&cluster.servers[0], StackKind::EstellePS, vec![]))
        .collect();
    world.start();

    // Referral fan-out: every client dials A and is referred to B, so
    // each one caches a live candidate list — the failover's fallback.
    // Inflating the other members' connection counts keeps B looking
    // under-connected, so it serves all eight instead of referring
    // them onward.
    for server in &cluster.servers {
        let location = server.services.sps.location();
        if location != b {
            for _ in 0..10 {
                cluster.control.connected(&location);
            }
        }
    }
    cluster.control.pin(&a, &b);
    for (i, client) in clients.iter().enumerate() {
        assert_eq!(
            world.client_op(
                client,
                McamOp::Associate {
                    user: format!("viewer-{i}")
                }
            ),
            Some(McamPdu::AssociateRsp { accepted: true })
        );
        assert_eq!(world.client_control_location(client), b);
    }
    cluster.control.unpin(&a);
    // Deflate the synthetic counts: failover re-dials should see real
    // load.
    for server in &cluster.servers {
        let location = server.services.sps.location();
        if location != b {
            for _ in 0..10 {
                cluster.control.disconnected(&location);
            }
        }
    }

    let mut entry = MovieEntry::new("Stress", "pending");
    entry.frame_count = 2_000;
    let replicas = world.publish_replicated(&cluster, &entry);
    assert!(replicas.contains(&b), "B holds a replica: {replicas:?}");

    // Filler load on every replica except B steers all eight streams
    // onto B — the machine that is about to die.
    for location in replicas.iter().filter(|l| **l != b) {
        let provider = cluster.peers.get(location).expect("replica registered");
        for i in 0..9u32 {
            let mut filler = MovieEntry::new(format!("Busy-{location}-{i}"), "pending");
            filler.frame_count = 5_000;
            provider
                .open(source_for_entry(&filler), NetAddr(800 + i), world.net.now())
                .expect("filler admitted");
        }
    }
    let mut receivers = Vec::new();
    for client in &clients {
        let params = match world.client_op(
            client,
            McamOp::SelectMovie {
                title: "Stress".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
            other => panic!("select failed: {other:?}"),
        };
        assert_eq!(
            format!("node-{}", params.provider_addr),
            b,
            "the stream landed on the doomed replica"
        );
        receivers.push(world.receiver_for(client, &params, SimDuration::from_millis(80)));
        assert_eq!(
            world.client_op(client, McamOp::Play { speed_pct: 100 }),
            Some(McamPdu::PlayRsp { ok: true })
        );
    }
    world.run_for(SimDuration::from_secs(2));

    // One server crash under eight live streams and bursty loss.
    let in_flight = cluster.servers[1].services.sps.stream_count();
    assert_eq!(in_flight, 8, "every stream was on the doomed machine");
    let killed = world.crash_server(&cluster.servers[1]);
    assert_eq!(killed, 8);
    world.run_for(SimDuration::from_secs(5));

    // Surviving-stream fraction: every in-flight stream failed over.
    let survived = world.journal().count(journal::kind::STREAM_FAILED_OVER) as usize;
    assert_eq!(
        survived, in_flight,
        "all {in_flight} in-flight streams survived the crash"
    );
    for client in &clients {
        assert_ne!(
            world.client_control_location(client),
            b,
            "no client is still homed on the dead machine"
        );
    }

    // No duplicate frame delivery: bursty loss and the failover may
    // cost frames, but a receiver must never play one seq twice.
    for (i, receiver) in receivers.iter_mut().enumerate() {
        let played = receiver.poll(world.net.now());
        assert!(!played.is_empty(), "viewer {i} played nothing");
        let mut seqs: Vec<u32> = played.iter().map(|f| f.seq).collect();
        let before = seqs.len();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), before, "viewer {i} saw a duplicate frame");
    }
    world.journal().verify().expect("chain intact");
}

/// X.500 referral chains: following works, a referral to an unknown
/// DSA fails cleanly, and referral loops are detected.
#[test]
fn referral_chains_failures_and_loops() {
    let base: Dn = "o=movies".parse().unwrap();
    let europe = base.child(directory::Rdn::new("ou", "europe"));

    // home masters o=movies but refers ou=europe to "eu-dsa".
    let home = Dsa::new("home");
    home.add(base.clone(), Attrs::new()).unwrap();
    home.add_referral(europe.clone(), "eu-dsa");
    let eu = Dsa::new("eu-dsa");
    eu.add(europe.clone(), Attrs::new()).unwrap();
    let entry_dn = europe.child(directory::Rdn::new("cn", "Metropolis"));
    eu.add(
        entry_dn.clone(),
        MovieEntry::new("Metropolis", "eu-store").to_attrs(),
    )
    .unwrap();

    // A DUA knowing only `home` hits the referral and fails with
    // UnknownDsa (the referenced DSA is unreachable).
    let dua_partial = Dua::new(&home);
    assert_eq!(
        dua_partial.read(&entry_dn),
        Err(DirError::UnknownDsa("eu-dsa".into()))
    );

    // Adding the EU DSA lets the same operation succeed through the
    // referral.
    let mut dua_full = Dua::new(&home);
    dua_full.add_dsa(&eu);
    let attrs = dua_full.read(&entry_dn).expect("referral followed");
    let entry = MovieEntry::from_attrs(&attrs).unwrap();
    assert_eq!(entry.title, "Metropolis");
    // Search through the referral too.
    let hits = dua_full
        .search(
            &europe,
            Scope::Subtree,
            &Filter::eq_str(directory::attr::TITLE, "Metropolis"),
        )
        .unwrap();
    assert_eq!(hits.len(), 1);

    // Referral loop: two DSAs referring the same subtree at each
    // other must be detected, not spin.
    let a = Dsa::new("a");
    let b = Dsa::new("b");
    let looped = base.child(directory::Rdn::new("ou", "loop"));
    a.add_referral(looped.clone(), "b");
    b.add_referral(looped.clone(), "a");
    let mut dua_loop = Dua::new(&a);
    dua_loop.add_dsa(&b);
    assert_eq!(
        dua_loop.read(&looped.child(directory::Rdn::new("cn", "X"))),
        Err(DirError::ReferralLoop)
    );
}
