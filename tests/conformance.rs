//! Conformance: the paper runs MCAM on two different protocol stacks
//! "thereby allowing us to test conformance". Because our generated
//! and hand-coded stacks are wire-compatible, a client on one stack
//! can interoperate with a server entity on the other — the strongest
//! conformance statement available.

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::SimDuration;

fn full_session(client_stack: StackKind, server_stack: StackKind) {
    let mut world = World::builder(123).build();
    let server = world.add_server("conf", server_stack);
    let client = world.add_client(&server, client_stack, vec![]);
    world.start();

    assert_eq!(
        world.client_op(
            &client,
            McamOp::Associate {
                user: "conformance".into()
            }
        ),
        Some(McamPdu::AssociateRsp { accepted: true }),
        "{client_stack:?} client vs {server_stack:?} server: associate"
    );
    assert_eq!(
        world.client_op(
            &client,
            McamOp::CreateMovie {
                title: "Conf".into(),
                format: "XMovie-24".into(),
                frame_rate: 25,
                frame_count: 50,
            }
        ),
        Some(McamPdu::CreateMovieRsp { ok: true })
    );
    let mut extra = MovieEntry::new("Seeded", "x");
    extra.frame_count = 25;
    world.seed_movie(&server, &extra);
    match world.client_op(
        &client,
        McamOp::List {
            contains: String::new(),
        },
    ) {
        Some(McamPdu::ListMoviesRsp { mut titles }) => {
            titles.sort();
            assert_eq!(titles, vec!["Conf".to_string(), "Seeded".to_string()]);
        }
        other => panic!("{other:?}"),
    }
    let params = match world.client_op(
        &client,
        McamOp::SelectMovie {
            title: "Conf".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("{other:?}"),
    };
    let mut rx = world.receiver_for(&client, &params, SimDuration::from_millis(50));
    assert_eq!(
        world.client_op(&client, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(3));
    assert_eq!(rx.poll(world.net.now()).len(), 50);
    assert_eq!(
        world.client_op(&client, McamOp::Release),
        Some(McamPdu::ReleaseRsp)
    );
}

#[test]
fn estelle_client_estelle_server() {
    full_session(StackKind::EstellePS, StackKind::EstellePS);
}

#[test]
fn isode_client_isode_server() {
    full_session(StackKind::Isode, StackKind::Isode);
}

#[test]
fn estelle_client_isode_server() {
    full_session(StackKind::EstellePS, StackKind::Isode);
}

#[test]
fn isode_client_estelle_server() {
    full_session(StackKind::Isode, StackKind::EstellePS);
}
