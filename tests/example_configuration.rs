//! F2 — Fig. 2, the example configuration: multiple MCAM clients on
//! different systems control CM streams sent by MCAM server entities
//! which all run simultaneously on the (simulated) multiprocessor.

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::SimDuration;

#[test]
fn two_clients_three_server_entities() {
    let mut world = World::builder(8).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    // Client #1 uses two connections (the paper: "each client can open
    // several connections to the server"), client #2 one — three
    // server entities total.
    let c1a = world.add_client(&server, StackKind::EstellePS, vec![]);
    let c1b = world.add_client(&server, StackKind::EstellePS, vec![]);
    let c2 = world.add_client(&server, StackKind::Isode, vec![]);
    world.start();
    for c in [&c1a, &c1b, &c2] {
        let rsp = world.client_op(
            c,
            McamOp::Associate {
                user: "fig2".into(),
            },
        );
        assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));
    }
    // Three server entities now run side by side under the server root.
    let entities = world
        .rt
        .with_machine::<mcam::ServerRoot, _>(server.root, |r| r.entities.clone())
        .unwrap();
    assert_eq!(entities.len(), 3);

    // All three control connections drive CM streams concurrently.
    let mut entry = MovieEntry::new("Fig2", "store");
    entry.frame_count = 75;
    world.seed_movie(&server, &entry);
    let mut receivers = Vec::new();
    for c in [&c1a, &c1b, &c2] {
        let params = match world.client_op(
            c,
            McamOp::SelectMovie {
                title: "Fig2".into(),
            },
        ) {
            Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
            other => panic!("{other:?}"),
        };
        let r = world.receiver_for(c, &params, SimDuration::from_millis(60));
        assert_eq!(
            world.client_op(c, McamOp::Play { speed_pct: 100 }),
            Some(McamPdu::PlayRsp { ok: true })
        );
        receivers.push(r);
    }
    assert_eq!(server.services.sps.stream_count(), 3);
    world.run_for(SimDuration::from_secs(5));
    for r in &mut receivers {
        assert_eq!(r.poll(world.net.now()).len(), 75);
    }
}

#[test]
fn per_connection_labels_support_grouping() {
    // The connection labels Fig. 2's parallel execution depends on.
    let mut world = World::builder(9).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let c0 = world.add_client(&server, StackKind::EstellePS, vec![]);
    let c1 = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();
    world.client_op(&c0, McamOp::Associate { user: "a".into() });
    world.client_op(&c1, McamOp::Associate { user: "b".into() });
    let entities = world
        .rt
        .with_machine::<mcam::ServerRoot, _>(server.root, |r| r.entities.clone())
        .unwrap();
    let conns: Vec<Option<u16>> = entities
        .iter()
        .map(|&e| world.rt.module_meta(e).unwrap().labels.conn)
        .collect();
    assert_eq!(conns, vec![Some(0), Some(1)]);
}
