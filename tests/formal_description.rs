//! The exported formal description of a running MCAM world matches the
//! paper's architecture (Figs. 1–3).

use estelle::export::export_spec;
use mcam::{McamOp, McamPdu, StackKind, World};

#[test]
fn exported_spec_shows_the_paper_architecture() {
    let mut world = World::builder(77).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let client = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.start();

    let before = export_spec(&world.rt, "mcam_system");
    assert!(before.contains("module server-ksr1 systemprocess;"));
    assert!(before.contains("module client-0 systemprocess;"));
    assert!(before.contains("module app-0 process;"));
    assert!(
        !before.contains("module mca-0"),
        "no MCA before the connect request"
    );

    let rsp = world.client_op(
        &client,
        McamOp::Associate {
            user: "spec".into(),
        },
    );
    assert_eq!(rsp, Some(McamPdu::AssociateRsp { accepted: true }));

    let after = export_spec(&world.rt, "mcam_system");
    // Client side: app + mca + generated stack.
    for module in [
        "mca-0 process",
        "pres-0 process",
        "sess-0 process",
        "wire-0 process",
    ] {
        assert!(
            after.contains(&format!("module {module};")),
            "missing {module}\n{after}"
        );
    }
    // Server side: the spawned entity with the Fig. 3 agents.
    for module in [
        "server-mca-0 process",
        "dua process",
        "sua process",
        "eua process",
    ] {
        assert!(
            after.contains(&format!("module {module};")),
            "missing {module}\n{after}"
        );
    }
    // Channels are rendered.
    assert!(after.contains("channel to"));
    // Transitions carry their clauses.
    assert!(after.contains("when ip"));
}
