//! The ref [2] extension at the MCAM level: new client workstations
//! join a *running* system.
//!
//! Paper §4.1: "the number of `systemprocess` modules cannot be
//! changed at runtime, so the number of clients is fixed. … This
//! disadvantage is compensated by the flat structure of the
//! specification. [footnote:] An Estelle enhancement enabling dynamic
//! generation of clients is described in [2]." This test exercises
//! that enhancement end-to-end.

use directory::MovieEntry;
use mcam::{McamOp, McamPdu, StackKind, World};
use netsim::SimDuration;

#[test]
fn clients_join_a_running_system() {
    let mut world = World::builder(21).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    let first = world.add_client(&server, StackKind::EstellePS, vec![]);
    world.enable_dynamic_clients();
    world.start();

    // The static client works as usual.
    assert_eq!(
        world.client_op(
            &first,
            McamOp::Associate {
                user: "static".into()
            }
        ),
        Some(McamPdu::AssociateRsp { accepted: true })
    );

    // A brand-new client workstation appears while the system runs —
    // impossible in base Estelle.
    let late = world.add_client(&server, StackKind::EstellePS, vec![]);
    assert_eq!(
        world.client_op(
            &late,
            McamOp::Associate {
                user: "late".into()
            }
        ),
        Some(McamPdu::AssociateRsp { accepted: true })
    );

    // The server spawned one entity per connection, including the
    // dynamic one.
    let entities = world
        .rt
        .with_machine::<mcam::ServerRoot, _>(server.root, |r| r.entities.clone())
        .unwrap();
    assert_eq!(entities.len(), 2);

    // The dynamic client is a full citizen: directory and stream
    // operations work.
    let mut entry = MovieEntry::new("LateShow", "store");
    entry.frame_count = 30;
    world.seed_movie(&server, &entry);
    let params = match world.client_op(
        &late,
        McamOp::SelectMovie {
            title: "LateShow".into(),
        },
    ) {
        Some(McamPdu::SelectMovieRsp { params: Some(p) }) => p,
        other => panic!("select failed: {other:?}"),
    };
    let mut receiver = world.receiver_for(&late, &params, SimDuration::from_millis(60));
    assert_eq!(
        world.client_op(&late, McamOp::Play { speed_pct: 100 }),
        Some(McamPdu::PlayRsp { ok: true })
    );
    world.run_for(SimDuration::from_secs(3));
    assert_eq!(receiver.poll(world.net.now()).len(), 30);
}

#[test]
fn without_extension_late_clients_panic() {
    let result = std::panic::catch_unwind(|| {
        let mut world = World::builder(22).build();
        let server = world.add_server("ksr1", StackKind::EstellePS);
        world.start();
        // Base Estelle: the system population is frozen.
        world.add_client(&server, StackKind::EstellePS, vec![]);
    });
    assert!(
        result.is_err(),
        "base Estelle must reject post-start clients"
    );
}

#[test]
fn many_dynamic_clients_scale() {
    let mut world = World::builder(23).build();
    let server = world.add_server("ksr1", StackKind::EstellePS);
    world.enable_dynamic_clients();
    world.start();
    let mut clients = Vec::new();
    for i in 0..5 {
        let c = world.add_client(&server, StackKind::EstellePS, vec![]);
        assert_eq!(
            world.client_op(
                &c,
                McamOp::Associate {
                    user: format!("dyn-{i}")
                }
            ),
            Some(McamPdu::AssociateRsp { accepted: true })
        );
        clients.push(c);
    }
    let entities = world
        .rt
        .with_machine::<mcam::ServerRoot, _>(server.root, |r| r.entities.clone())
        .unwrap();
    assert_eq!(
        entities.len(),
        5,
        "one server entity per dynamic connection"
    );
}
