//! Umbrella crate for the MCAM reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use
//! a single dependency root:
//!
//! - control plane: [`mcam`] (agents, PDUs, world), [`estelle`],
//!   [`asn1`], [`presentation`], [`session`], [`transport`], [`isode`];
//! - CM-stream plane: [`mtp`] (stream protocol) and [`store`] (striped
//!   block store, buffer cache, prefetch, disk-bandwidth admission
//!   control feeding the stream provider);
//! - services: [`directory`], [`equipment`];
//! - observability: [`journal`] (hash-chained event journal);
//! - substrate and evaluation: [`netsim`], [`ksim`], [`harness`].
pub use asn1;
pub use directory;
pub use equipment;
pub use estelle;
pub use harness;
pub use isode;
pub use journal;
pub use ksim;
pub use mcam;
pub use mtp;
pub use netsim;
pub use presentation;
pub use session;
pub use store;
pub use transport;
