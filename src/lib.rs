//! Umbrella crate for the MCAM reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use
//! a single dependency root.
pub use asn1;
pub use directory;
pub use equipment;
pub use estelle;
pub use harness;
pub use isode;
pub use ksim;
pub use mcam;
pub use mtp;
pub use netsim;
pub use presentation;
pub use session;
pub use transport;
